//! The microbatch execution engine (§6.1–§6.2).
//!
//! Each trigger executes one **epoch** through the paper's protocol:
//!
//! 1. the master snapshots every source's latest offsets, caps them by
//!    the (adaptive) batch size, and writes the epoch's offset ranges
//!    durably to the WAL *before* execution (§6.1 step 1);
//! 2. the incremental plan runs over exactly that offset range;
//! 3. the sink receives the epoch's output (append / update / complete
//!    per the output mode) and the commit is recorded in the WAL
//!    (§6.1 step 3);
//! 4. operator state is checkpointed to the state store, tagged with
//!    the epoch (§6.1 step 2 — after the commit, so every checkpoint
//!    epoch is a committed epoch).
//!
//! **Recovery** (§6.1 step 4): restore the newest state checkpoint at
//! or below the last committed epoch, re-execute any newer committed
//! epochs with output disabled (the WAL has their exact offsets; the
//! sources are replayable), then re-run the epochs that were in flight
//! at the failure, relying on sink idempotence.
//!
//! **Adaptive batching** (§7.3): when the backlog exceeds the normal
//! batch size, epochs temporarily grow by `catchup_multiplier` so the
//! query catches up quickly, then return to small, low-latency epochs.
//!
//! **Manual rollback** (§7.2): [`MicroBatchExecution::rollback_to`]
//! truncates the WAL, the state checkpoints and (where supported) the
//! sink to an epoch chosen by the operator, then recovers from there.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ss_bus::json::row_to_json;
use ss_bus::{
    DeadLetterQueue, DeadLetterRecord, EpochOutput, Sink, SinkMetrics, Source, SourceMetrics,
};
use ss_common::eventlog::{
    EVENT_ADMISSION_LIMITED, EVENT_FAILOVER, EVENT_PROGRESS, EVENT_QUARANTINE, EVENT_RESTART,
    EVENT_SPILL, EVENT_START, EVENT_TERMINATE, EVENT_WATCHDOG,
};
use ss_common::isolate::panic_message;
use ss_common::profile::{
    PHASE_ADMISSION, PHASE_EXECUTE, PHASE_FINALIZE, PHASE_SINK_COMMIT, PHASE_SOURCE_READ,
    PHASE_STATE_COMMIT, PHASE_WAL,
};
use ss_common::clock::{system_clock, ClockRef};
use ss_common::time::now_us;
use ss_common::{
    failure_fingerprint, Counter, Deadline, EpochProfile, EpochProfiler, ErrorPolicy, EventLog,
    FaultRegistry, Histogram, MetricsRegistry, PartitionOffsets, RecordBatch, Result, RetryPolicy,
    SchemaRef, SsError, TraceLog,
};
use ss_exec::executor::Catalog;
use ss_plan::{operator_signatures, plan_fingerprint, LogicalPlan, OperatorSignature, OutputMode};
use ss_state::{CheckpointBackend, MemoryBackend, StateStore};
use ss_wal::{
    EpochCommit, EpochOffsets, HaRole, Manifest, OffsetRange, WriteAheadLog, MANIFEST_VERSION,
};

use crate::ha::HaConfig;

use crate::admission::{apportion, PidRateController, RateControllerConfig};
use crate::incremental::{incrementalize, EpochContext, IncNode, OpStat, OpStatsCollector};
use crate::metrics::{OpDuration, ProgressHistory, QueryProgress, StreamingQueryListener};
use crate::parallel::{repartition_family, state_families, ParallelExec, ParallelRunStats};
use crate::upgrade::{self, StateMigration};
use crate::watermark::WatermarkTracker;

pub use ss_state::MemoryBudget;

/// A processing-time clock, injectable for deterministic tests.
///
/// Historically this was a bare `Arc<dyn Fn() -> i64>` private to the
/// engine; it is now the workspace-wide [`ss_common::clock::Clock`]
/// trait, so one injected clock drives processing-time stamps, retry
/// backoff, watchdog deadlines and fault stalls coherently (see
/// [`ss_common::clock::SimClock`] for fully virtual time and
/// [`ss_common::clock::StepClock`] for stepping/frozen test clocks).
pub type Clock = ClockRef;

/// Quarantined `(partition, offset)` pairs per source — the shape
/// recorded in an epoch's WAL commit so replay can strip poison rows
/// without re-probing.
type QuarantinedOffsets = BTreeMap<String, Vec<(u32, u64)>>;

/// Engine-level fail points, fired between the steps of the epoch
/// protocol. The layers below expose their own (see
/// `ss_wal::failpoints`, `ss_state::store::failpoints`,
/// `ss_state::backend::failpoints`, `ss_bus::source::failpoints`); all
/// fire through the [`FaultRegistry`] in [`MicroBatchConfig::faults`].
pub mod failpoints {
    /// Crash after the offset log write, before execution.
    pub const AFTER_OFFSET_WRITE: &str = "microbatch.after_offset_write";
    /// Crash after the sink accepted the epoch, before the commit log
    /// write.
    pub const AFTER_SINK_WRITE: &str = "microbatch.after_sink_write";
    /// Crash after the commit log write, before the state checkpoint.
    pub const AFTER_COMMIT_WRITE: &str = "microbatch.after_commit_write";
    /// Before reading an epoch's range from a source (fires regardless
    /// of the source implementation; retried under the engine policy).
    pub const SOURCE_READ: &str = "microbatch.source.read";
    /// Before handing an epoch's output to the sink (retried under the
    /// engine policy; sinks are idempotent per epoch).
    pub const SINK_COMMIT: &str = "microbatch.sink.commit";
    /// Before (re)writing the checkpoint manifest (retried under the
    /// engine policy; the write is atomic, so a failure leaves the
    /// previous manifest in place).
    pub const MANIFEST_WRITE: &str = "microbatch.manifest.write";
}

/// Engine tuning knobs.
#[derive(Clone)]
pub struct MicroBatchConfig {
    /// Target records per epoch across all sources (`None` =
    /// unbounded: every trigger drains the full backlog).
    pub max_records_per_trigger: Option<u64>,
    /// Grow epochs while backlogged (§7.3 adaptive batching).
    pub adaptive_batching: bool,
    /// Maximum growth factor during catch-up.
    pub catchup_multiplier: u64,
    /// Checkpoint operator state every N committed epochs.
    pub checkpoint_interval: u64,
    /// Progress records to retain (§7.4).
    pub progress_history: usize,
    /// Fail-point registry shared with the WAL, state store and (when
    /// wired by the caller) sources/backends. Empty by default.
    pub faults: FaultRegistry,
    /// Retry policy for transient failures on the durability paths
    /// (source read, sink commit, WAL append, checkpoint write).
    pub retry: RetryPolicy,
    /// Processing-time clock. Also drives retry backoff, the epoch
    /// watchdog, per-task deadlines and injected fault stalls, so a
    /// virtual clock ([`ss_common::clock::SimClock`]) makes the whole
    /// engine's sense of time simulated.
    pub clock: Clock,
    /// Cooperative interrupt for retry backoff: while a durability
    /// retry (source read, sink commit, WAL append, checkpoint write)
    /// is sleeping out its backoff, raising this flag aborts the sleep
    /// within one poll interval ([`ss_common::retry::BACKOFF_POLL`])
    /// and fails the attempt with its transient error. `stop()` on a
    /// background query raises it, so stopping never waits out a long
    /// backoff. Clones of this config share the flag.
    pub interrupt: Arc<std::sync::atomic::AtomicBool>,
    /// PID-based admission control (`None` = disabled): each epoch's
    /// row budget is steered toward the measured processing rate, with
    /// scheduling delay drained via the integral term. Composes with
    /// `max_records_per_trigger` (the hard cap still applies) and with
    /// WAL recovery (budgets only shape *new* epochs; logged offsets
    /// replay exactly).
    pub rate_controller: Option<RateControllerConfig>,
    /// Memory budget for the state store: soft limit spills cold
    /// operators to the checkpoint backend, hard limit fails the epoch
    /// with `ResourceExhausted` instead of OOMing.
    pub state_budget: MemoryBudget,
    /// Checkpoint retention (`None` = keep everything): after each
    /// checkpoint, purge state-checkpoint generations and compact the
    /// WAL so at least the last N epochs stay individually rollback-able
    /// (the actual horizon snaps down to a full-snapshot boundary).
    pub min_epochs_to_retain: Option<u64>,
    /// Worker threads for data-parallel epoch execution. `1` (the
    /// default) runs the serial engine unchanged. `> 1` compiles the
    /// plan into partitioned map/shuffle/reduce stages on a worker
    /// pool when the plan shape supports it (falling back to serial
    /// when it does not). Output is byte-identical either way.
    /// Defaults to `SS_PARALLELISM` when set.
    pub parallelism: usize,
    /// Reduce partitions (= state shards) for parallel execution.
    /// `0` (the default) follows `parallelism`. The checkpoint
    /// manifest records this count; restarting with a different one
    /// repartitions restored state by shuffle hash.
    pub shuffle_partitions: usize,
    /// What to do with records that deterministically fail evaluation
    /// once isolation mode is active: fail the query (the default),
    /// quarantine them to the dead-letter queue, or drop them.
    /// Quarantined offsets are recorded in the epoch's commit record,
    /// so crash/replay reproduces the committed output byte for byte.
    pub error_policy: ErrorPolicy,
    /// Epoch watchdog: a hard wall-clock deadline per epoch. A wedged
    /// epoch (stuck source, hung task, runaway operator) fails
    /// restartably with [`SsError::Timeout`] instead of hanging the
    /// query forever. Defaults to `SS_EPOCH_DEADLINE_MS` when set.
    pub epoch_deadline: Option<Duration>,
    /// Soft per-task deadline for parallel execution: overrunning
    /// tasks are counted (`ss_task_deadline_exceeded_total`) and
    /// traced as stragglers, but keep running.
    pub task_soft_deadline: Option<Duration>,
    /// Hard per-task deadline for parallel execution: the pool
    /// abandons the stuck worker, replenishes itself and fails the
    /// stage with a transient [`SsError::Timeout`].
    pub task_hard_deadline: Option<Duration>,
    /// Dead-letter queue for quarantined records. `None` (the default)
    /// gives the engine a private queue that dies with it; pass a
    /// shared handle to model a durable DLQ topic that survives
    /// process restarts (the per-epoch commit is insert-replace, so
    /// re-running an in-flight epoch after a crash rewrites the same
    /// letters instead of duplicating them).
    pub dlq: Option<Arc<DeadLetterQueue>>,
    /// High availability (`None` = disabled): a leadership lease with
    /// fencing epochs, plus (optionally) a handle to the replicated
    /// checkpoint backend for replication-lag introspection. When set,
    /// the engine acquires the lease at startup, renews it at phase
    /// boundaries alongside the watchdog, stamps every WAL commit and
    /// manifest with the held fencing epoch, and fences sink/DLQ
    /// commits explicitly. Compose the checkpoint `backend` out of
    /// `ss_wal::FencedBackend` over `ss_state::ReplicatedBackend` to
    /// fence and mirror the WAL/state/manifest writes too.
    pub ha: Option<HaConfig>,
}

impl Default for MicroBatchConfig {
    fn default() -> Self {
        MicroBatchConfig {
            max_records_per_trigger: None,
            adaptive_batching: true,
            catchup_multiplier: 8,
            checkpoint_interval: 1,
            progress_history: 128,
            faults: FaultRegistry::new(),
            retry: RetryPolicy::default(),
            clock: system_clock(),
            interrupt: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            rate_controller: None,
            state_budget: MemoryBudget::default(),
            min_epochs_to_retain: None,
            parallelism: std::env::var("SS_PARALLELISM")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1),
            shuffle_partitions: 0,
            error_policy: ErrorPolicy::default(),
            epoch_deadline: std::env::var("SS_EPOCH_DEADLINE_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
            task_soft_deadline: None,
            task_hard_deadline: None,
            dlq: None,
            ha: None,
        }
    }
}

/// Run `op` under `policy`, recording retry activity in the query's
/// metric registry (`ss_retry_attempts_total` counts re-attempts,
/// `ss_retries_exhausted_total` counts calls that failed transiently
/// after using up the policy, `ss_retry_interrupted_total` counts
/// backoffs cut short by the engine's interrupt flag). Backoff sleeps
/// run on `clock` and abort within one poll interval once `interrupt`
/// is raised (`stop()` on a background query raises it).
pub(crate) fn retried<T>(
    policy: &RetryPolicy,
    clock: &ClockRef,
    interrupt: &Arc<std::sync::atomic::AtomicBool>,
    registry: &MetricsRegistry,
    op: &str,
    f: impl FnMut() -> Result<T>,
) -> Result<T> {
    let interrupted = || interrupt.load(std::sync::atomic::Ordering::SeqCst);
    let out = ss_common::retry::retry_with(policy, clock.as_ref(), &interrupted, f);
    if out.retries > 0 {
        registry
            .counter("ss_retry_attempts_total", &[("op", op)])
            .add(u64::from(out.retries));
    }
    if out.exhausted {
        registry
            .counter("ss_retries_exhausted_total", &[("op", op)])
            .inc();
    }
    if out.interrupted {
        registry
            .counter("ss_retry_interrupted_total", &[("op", op)])
            .inc();
    }
    out.result
}

/// The result of one trigger firing.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Ran is the overwhelmingly common case
pub enum EpochRun {
    /// No new data and no pending timeouts.
    Idle,
    /// An epoch executed; progress attached.
    Ran(QueryProgress),
}

/// What one call to `execute_epoch_offsets` produced (internal).
struct EpochExecution {
    out_rows: u64,
    ops: Vec<OpStat>,
    sink_commit_us: i64,
    /// Tasks the parallel executor ran this epoch (0 on the serial
    /// path).
    tasks_launched: u64,
    /// Slowest task's wall-clock duration (µs; 0 on the serial path).
    max_task_duration_us: u64,
    /// Poison records diverted (or dropped) by isolation mode.
    quarantined: u64,
}

/// A running (or recoverable) microbatch query.
pub struct MicroBatchExecution {
    name: String,
    root: IncNode,
    output_schema: SchemaRef,
    sources: HashMap<String, Arc<dyn Source>>,
    statics: Arc<dyn Catalog + Send + Sync>,
    sink: Arc<dyn Sink>,
    output_mode: OutputMode,
    update_key_cols: Vec<usize>,
    wal: WriteAheadLog,
    store: StateStore,
    /// The checkpoint backend, kept for the manifest (which lives at
    /// the backend root, outside the `wal/` and `state/` prefixes) and
    /// for rebuilding the engine on `restart_from_checkpoint`.
    backend: Arc<dyn CheckpointBackend>,
    /// Canonical signatures of this plan's stateful operators, recorded
    /// in every manifest write.
    signatures: Vec<OperatorSignature>,
    /// Canonical whole-plan fingerprint (informational).
    plan_fingerprint: String,
    /// State migrations owed to the checkpoint this engine resumed
    /// from, applied after every state restore. Empty when the plan is
    /// unchanged.
    migrations: Vec<StateMigration>,
    /// `ss_checkpoint_purged_total`: blobs/records removed by retention
    /// GC.
    purged_total: Counter,
    tracker: WatermarkTracker,
    /// Last epoch with offsets logged.
    epoch: u64,
    /// End offsets of the last defined epoch, per source.
    positions: HashMap<String, PartitionOffsets>,
    config: MicroBatchConfig,
    progress: ProgressHistory,
    /// The query's metric registry (§7.4): operator, state, WAL, source
    /// and sink series all register here.
    registry: MetricsRegistry,
    /// Epoch-scoped trace spans, dumpable as chrome://tracing JSON.
    trace: TraceLog,
    listeners: Vec<Arc<dyn StreamingQueryListener>>,
    source_metrics: HashMap<String, SourceMetrics>,
    sink_metrics: SinkMetrics,
    epoch_duration_us: Histogram,
    terminated: bool,
    /// Supervisor restarts survived so far (surfaced in progress).
    restarts: u64,
    /// PID admission controller (when configured).
    rate_controller: Option<PidRateController>,
    /// Duration of the previous non-idle epoch, for the scheduling
    /// delay of the next one (how late it starts vs. the trigger
    /// interval in the sequential trigger loop).
    last_epoch_duration_us: i64,
    /// Data-parallel epoch executor: present when
    /// `config.parallelism > 1` *and* the plan compiled into
    /// partitioned stages; `None` runs the serial path (byte-identical
    /// output either way).
    parallel: Option<ParallelExec>,
    /// Bounded history of per-epoch phase-tree profiles, served by the
    /// introspection server's `/query/<name>/profile` endpoint.
    profiler: EpochProfiler,
    /// Structured lifecycle event log (start / progress / restart /
    /// spill / admission-limited / terminate), optionally mirrored to
    /// the JSONL file named by `SS_EVENT_LOG`.
    events: EventLog,
    /// `ss_e2e_latency_us`: sink-commit wall time minus record ingest
    /// time, observed once each for the epoch's oldest and newest
    /// input record.
    e2e_latency_us: Histogram,
    /// The optimized logical plan, kept to build fresh single-row
    /// probe executors while isolation mode is active.
    optimized_plan: Arc<LogicalPlan>,
    /// Sticky isolation flag: set when a failure is classified as
    /// deterministic (by the supervisor's fingerprint tracker or a
    /// record-failure-shaped epoch error under an isolating policy).
    /// While set, every epoch probes its rows individually and strips
    /// the offenders. Survives in-place restarts by design.
    isolation: bool,
    /// The epoch watchdog; armed per epoch with
    /// [`MicroBatchConfig::epoch_deadline`] and shared with the fault
    /// registry so injected hangs break when it expires.
    watchdog: Deadline,
    /// Dead-letter queue: quarantined records with failure metadata,
    /// committed idempotently per epoch.
    dlq: Arc<DeadLetterQueue>,
    /// `ss_quarantined_records_total`.
    quarantined_total: Counter,
    /// `ss_deterministic_failures_total`.
    deterministic_failures: Counter,
    /// The last in-flight epoch recovery re-ran with output enabled:
    /// `(epoch, input_rows, execution)`. Consumed by the isolation
    /// retry path to synthesize the epoch's progress record.
    last_inflight: Option<(u64, u64, EpochExecution)>,
    /// True for a warm standby: the engine tails the checkpoint
    /// read-only via [`MicroBatchExecution::standby_catch_up`] and
    /// refuses to run epochs until [`MicroBatchExecution::promote`].
    standby: bool,
    /// Whether the standby already restored a state checkpoint (the
    /// restore happens once; later catch-up ticks replay the WAL).
    standby_restored: bool,
}

impl MicroBatchExecution {
    /// Build the engine for an **analyzed and validated** plan, then
    /// recover from any existing WAL/state in `backend`. When
    /// [`MicroBatchConfig::ha`] is set, the startup sequence also
    /// sweeps stale lease debris and **acquires the leadership lease**
    /// before recovery touches anything durable.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        plan: &Arc<LogicalPlan>,
        sources: HashMap<String, Arc<dyn Source>>,
        statics: Arc<dyn Catalog + Send + Sync>,
        sink: Arc<dyn Sink>,
        output_mode: OutputMode,
        backend: Arc<dyn CheckpointBackend>,
        config: MicroBatchConfig,
    ) -> Result<MicroBatchExecution> {
        Self::build(
            name, plan, sources, statics, sink, output_mode, backend, config, false,
        )
    }

    /// Build a **warm standby** over the same (replicated) checkpoint:
    /// everything is set up like [`MicroBatchExecution::new`] except
    /// that the engine neither acquires the lease nor runs recovery —
    /// it stays read-only, tailing committed epochs via
    /// [`standby_catch_up`](Self::standby_catch_up) so its state is
    /// pre-loaded, and takes over within a bounded number of epochs via
    /// [`promote`](Self::promote) once the leader's lease lapses.
    /// Requires [`MicroBatchConfig::ha`].
    #[allow(clippy::too_many_arguments)]
    pub fn new_standby(
        name: impl Into<String>,
        plan: &Arc<LogicalPlan>,
        sources: HashMap<String, Arc<dyn Source>>,
        statics: Arc<dyn Catalog + Send + Sync>,
        sink: Arc<dyn Sink>,
        output_mode: OutputMode,
        backend: Arc<dyn CheckpointBackend>,
        config: MicroBatchConfig,
    ) -> Result<MicroBatchExecution> {
        if config.ha.is_none() {
            return Err(SsError::Plan(
                "a standby query needs MicroBatchConfig::ha (a lease to watch)".into(),
            ));
        }
        Self::build(
            name, plan, sources, statics, sink, output_mode, backend, config, true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: impl Into<String>,
        plan: &Arc<LogicalPlan>,
        sources: HashMap<String, Arc<dyn Source>>,
        statics: Arc<dyn Catalog + Send + Sync>,
        sink: Arc<dyn Sink>,
        output_mode: OutputMode,
        backend: Arc<dyn CheckpointBackend>,
        config: MicroBatchConfig,
        standby: bool,
    ) -> Result<MicroBatchExecution> {
        let analyzed = ss_plan::analyze(plan)?;
        ss_plan::validate_streaming(&analyzed, output_mode)?;
        let optimized = ss_plan::optimize(&analyzed)?;
        // Every streaming scan must have a bound source.
        for scan in optimized.streaming_scans() {
            if !sources.contains_key(&scan) {
                return Err(SsError::Plan(format!(
                    "no source bound for streaming scan `{scan}`"
                )));
            }
        }
        let mut counter = 0;
        let root = incrementalize(&optimized, &mut counter)?;
        let output_schema = root.schema();
        let update_key_cols = root.update_key_columns(&output_schema);
        let tracker = WatermarkTracker::new(&optimized.watermarks());
        // Upgrade safety: classify this plan against the checkpoint's
        // manifest *before* recovery touches anything durable. An
        // incompatible edit (changed grouping keys, window, join type)
        // fails here, leaving the checkpoint intact for the old query
        // or a rollback; a checkpoint without a manifest is the legacy
        // v0 layout and resumes unchecked, exactly as older builds did.
        let signatures = operator_signatures(&optimized)?;
        let plan_fp = plan_fingerprint(&optimized);
        let migrations = match Manifest::load(&backend)? {
            Some(m) if m.engine != "microbatch" => {
                return Err(SsError::IncompatibleUpgrade(format!(
                    "checkpoint was written by the `{}` engine; its state layout is \
                     not readable by the microbatch engine",
                    m.engine
                )));
            }
            Some(m) => upgrade::check_compatibility(&m.operators, &signatures)?,
            None => Vec::new(),
        };
        // The registry is created before the WAL/state store so even
        // recovery replays are captured in the metrics.
        let registry = MetricsRegistry::new();
        let trace = TraceLog::new();
        let mut wal = WriteAheadLog::new(backend.clone());
        wal.attach_metrics(&registry);
        wal.set_faults(config.faults.clone());
        let mut store = StateStore::new(backend.clone());
        store.attach_metrics(&registry);
        store.set_faults(config.faults.clone());
        store.set_budget(config.state_budget);
        registry.describe(
            "ss_retry_attempts_total",
            "Transient-failure re-attempts on the engine's durability paths.",
        );
        registry.describe(
            "ss_retries_exhausted_total",
            "Calls that still failed transiently after the retry policy ran out.",
        );
        let source_metrics: HashMap<String, SourceMetrics> = sources
            .keys()
            .map(|name| (name.clone(), SourceMetrics::new(&registry, name)))
            .collect();
        let sink_metrics = SinkMetrics::new(&registry, sink.name());
        registry.describe("ss_epoch_duration_us", "Wall-clock duration of each epoch.");
        registry.describe("ss_operator_rows_total", "Rows emitted per incremental operator.");
        registry.describe(
            "ss_operator_eval_us",
            "Inclusive per-operator evaluation time per epoch.",
        );
        registry.describe(
            "ss_scheduling_delay_us",
            "How late each epoch started versus the trigger interval.",
        );
        registry.describe(
            "ss_admitted_rows_total",
            "Rows admitted into epochs by the admission controller.",
        );
        registry.describe(
            "ss_admission_rate_limit",
            "Current admission rate limit (rows/second; -1 when uncapped).",
        );
        registry.describe(
            "ss_bus_shed_records",
            "Records shed by bounded bus topics feeding this query.",
        );
        registry.describe(
            "ss_checkpoint_purged_total",
            "Checkpoint blobs and WAL records removed by retention GC.",
        );
        registry.describe(
            "ss_phase_duration_us",
            "Wall time the epoch profiler attributes to each top-level phase.",
        );
        registry.describe(
            "ss_e2e_latency_us",
            "End-to-end event latency: sink-commit time minus source ingest time.",
        );
        registry.describe(
            "ss_trace_dropped_total",
            "Trace events dropped because the bounded trace buffer wrapped.",
        );
        registry.describe(
            "ss_quarantined_records_total",
            "Poison records diverted to the dead-letter queue (or dropped) \
             instead of failing the epoch.",
        );
        registry.describe(
            "ss_deterministic_failures_total",
            "Failures classified deterministic by fingerprint repetition.",
        );
        trace.attach_drop_counter(registry.counter("ss_trace_dropped_total", &[]));
        let purged_total = registry.counter("ss_checkpoint_purged_total", &[]);
        let epoch_duration_us = registry.histogram("ss_epoch_duration_us", &[]);
        let e2e_latency_us = registry.histogram("ss_e2e_latency_us", &[]);
        let events = EventLog::new();
        if let Ok(path) = std::env::var("SS_EVENT_LOG") {
            if !path.is_empty() {
                // Best-effort: an unwritable path disables the file
                // mirror rather than failing the query (the in-memory
                // buffer still works).
                let _ = events.attach_file(std::path::Path::new(&path));
            }
        }
        let progress = ProgressHistory::new(config.progress_history);
        let rate_controller = config.rate_controller.map(PidRateController::new);
        let parallel = if config.parallelism > 1 {
            let partitions = if config.shuffle_partitions == 0 {
                config.parallelism
            } else {
                config.shuffle_partitions
            };
            ParallelExec::try_build(
                &root,
                config.parallelism,
                partitions,
                &registry,
                &trace,
                config.faults.clone(),
                config.retry,
                config.clock.clone(),
                config.interrupt.clone(),
                config.task_soft_deadline,
                config.task_hard_deadline,
            )
        } else {
            None
        };
        // The watchdog is shared with the fault registry so injected
        // hangs release (as transient timeouts) when it expires. Both
        // run on the engine clock, so a simulated clock expires them
        // (and stalls through them) virtually.
        let watchdog = Deadline::with_clock(config.clock.clone());
        config.faults.set_clock(config.clock.clone());
        let dlq = config.dlq.clone().unwrap_or_default();
        config.faults.attach_deadline(&watchdog);
        if let Some(ha) = &config.ha {
            ha.lease.set_faults(config.faults.clone());
            ha.lease.attach_metrics(&registry);
            if let Some(r) = &ha.replication {
                r.attach_metrics(&registry);
            }
        }
        let quarantined_total = registry.counter("ss_quarantined_records_total", &[]);
        let deterministic_failures = registry.counter("ss_deterministic_failures_total", &[]);
        let mut engine = MicroBatchExecution {
            name: name.into(),
            root,
            output_schema,
            sources,
            statics,
            sink,
            output_mode,
            update_key_cols,
            wal,
            store,
            backend,
            signatures,
            plan_fingerprint: plan_fp,
            migrations,
            purged_total,
            tracker,
            epoch: 0,
            positions: HashMap::new(),
            config,
            progress,
            registry,
            trace,
            listeners: Vec::new(),
            source_metrics,
            sink_metrics,
            epoch_duration_us,
            terminated: false,
            restarts: 0,
            rate_controller,
            last_epoch_duration_us: 0,
            parallel,
            profiler: EpochProfiler::default(),
            events,
            e2e_latency_us,
            optimized_plan: optimized,
            isolation: false,
            watchdog,
            dlq,
            quarantined_total,
            deterministic_failures,
            last_inflight: None,
            standby,
            standby_restored: false,
        };
        if standby {
            // A standby never writes: no sweep, no lease acquisition,
            // no recovery (recovery repairs/truncates durable logs).
            engine.events.emit(
                &engine.name,
                EVENT_START,
                &[("engine", "microbatch"), ("role", "standby")],
            );
            return Ok(engine);
        }
        if let Some(ha) = engine.config.ha.clone() {
            // Startup hygiene first (orphaned `ha/` keys, torn lease),
            // then take leadership — recovery below writes through the
            // fenced backend, so the lease must be held before it runs.
            ha.lease.startup_sweep()?;
            ha.lease.try_acquire()?;
        }
        engine.recover()?;
        engine.events.emit(
            &engine.name,
            EVENT_START,
            &[
                ("engine", "microbatch"),
                ("epoch", &engine.epoch.to_string()),
            ],
        );
        Ok(engine)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine's retry-backoff interrupt flag
    /// ([`MicroBatchConfig::interrupt`]): raise it to make an in-flight
    /// durability retry give up within one backoff poll interval.
    /// `StreamingQuery::stop` raises it so stopping never waits out a
    /// long backoff.
    pub fn interrupt_handle(&self) -> Arc<std::sync::atomic::AtomicBool> {
        self.config.interrupt.clone()
    }

    /// The clock this engine observes time through
    /// ([`MicroBatchConfig::clock`]).
    pub fn clock(&self) -> ClockRef {
        self.config.clock.clone()
    }

    /// The schema of rows delivered to the sink.
    pub fn output_schema(&self) -> &SchemaRef {
        &self.output_schema
    }

    /// Last epoch whose offsets are logged.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The event-time watermark currently in force.
    pub fn watermark_us(&self) -> i64 {
        self.tracker.current()
    }

    /// Progress history (§7.4).
    pub fn progress(&self) -> &ProgressHistory {
        &self.progress
    }

    /// Total keys across stateful operators.
    pub fn state_rows(&self) -> u64 {
        self.store.total_keys() as u64
    }

    /// The query's metric registry (§7.4). `render()` it for the
    /// Prometheus text exposition, `snapshot()` it for programmatic
    /// access.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The epoch trace-span log; dump with
    /// [`TraceLog::to_chrome_json`] and load in `chrome://tracing`.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The epoch profiler: bounded history of per-epoch phase-tree
    /// wall-time breakdowns with task-skew and shuffle attribution.
    pub fn profiler(&self) -> &EpochProfiler {
        &self.profiler
    }

    /// The structured lifecycle event log (JSONL-renderable).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Register a listener; it receives `on_progress` after every
    /// non-idle epoch and `on_terminated` when the query stops.
    pub fn add_listener(&mut self, listener: Arc<dyn StreamingQueryListener>) {
        self.listeners.push(listener);
    }

    /// Fire `on_terminated` on every listener, once. Called by the
    /// query handle when the query stops or fails.
    pub fn notify_terminated(&mut self, error: Option<&str>) {
        if self.terminated {
            return;
        }
        self.terminated = true;
        self.trace.instant(
            "terminated",
            &[("error", error.unwrap_or("none"))],
        );
        self.events.emit(
            &self.name,
            EVENT_TERMINATE,
            &[("error", error.unwrap_or("none"))],
        );
        for l in &self.listeners {
            l.on_terminated(&self.name, error);
        }
    }

    // ------------------------------------------------------------------
    // The epoch protocol
    // ------------------------------------------------------------------

    /// Execute one trigger (§6.1). Returns [`EpochRun::Idle`] when
    /// there is nothing to do.
    ///
    /// The epoch runs under the watchdog deadline
    /// ([`MicroBatchConfig::epoch_deadline`]): a wedged epoch fails
    /// restartably with [`SsError::Timeout`]. On a record-shaped
    /// failure under an isolating [`ErrorPolicy`], the engine flips
    /// into isolation mode and re-runs the epoch once with per-record
    /// probing, quarantining the offenders instead of failing.
    pub fn run_epoch(&mut self) -> Result<EpochRun> {
        if self.standby {
            return Err(SsError::Execution(format!(
                "query `{}` is a warm standby; promote it before running epochs",
                self.name
            )));
        }
        self.last_inflight = None;
        self.watchdog.arm(self.config.epoch_deadline);
        let result = self.run_epoch_inner();
        let expired = self.watchdog.expired();
        self.watchdog.disarm();
        let err = match result {
            Ok(run) => return Ok(run),
            Err(err) => err,
        };
        // Release workers parked on injected hangs: the epoch already
        // failed, nobody will collect their results.
        self.config.faults.cancel_hangs();
        if expired {
            self.trace.instant("watchdog", &[("error", &err.to_string())]);
            self.events.emit(
                &self.name,
                EVENT_WATCHDOG,
                &[
                    ("epoch", &self.epoch.to_string()),
                    ("error", &err.to_string()),
                ],
            );
        }
        if self.config.error_policy.isolates() && !self.isolation && is_record_failure(&err) {
            // First record-shaped failure under an isolating policy:
            // enter isolation and re-run the epoch with probing. The
            // failed epoch's offsets are already in the WAL, so
            // recovery re-runs it in-flight — now stripping poison.
            self.enter_isolation(&err);
            self.reset_and_recover()?;
            if let Some((epoch, in_rows, exec)) = self.last_inflight.take() {
                let progress = self.synthesize_progress(epoch, in_rows, exec);
                self.progress.push(progress.clone());
                self.events.emit(
                    &self.name,
                    EVENT_PROGRESS,
                    &[
                        ("epoch", &epoch.to_string()),
                        ("rows_in", &progress.num_input_rows.to_string()),
                        ("rows_out", &progress.num_output_rows.to_string()),
                        ("quarantined", &progress.quarantined_records.to_string()),
                    ],
                );
                for l in &self.listeners {
                    l.on_progress(&progress);
                }
                return Ok(EpochRun::Ran(progress));
            }
            // The failure predated the offset write; nothing ran.
            return Ok(EpochRun::Idle);
        }
        Err(err)
    }

    fn run_epoch_inner(&mut self) -> Result<EpochRun> {
        let started = self.config.clock.wall_us();
        // Wall-clock phase attribution runs on the monotonic clock, so
        // profiles stay meaningful even under a frozen test clock.
        let epoch_wall = Instant::now();
        // In the sequential trigger loop, this epoch starts late by
        // however much the previous one overran the trigger interval.
        let interval_us = self
            .rate_controller
            .as_ref()
            .map(|rc| rc.config().batch_interval_us as i64)
            .unwrap_or(0);
        let scheduling_delay_us = if interval_us > 0 {
            (self.last_epoch_duration_us - interval_us).max(0) as u64
        } else {
            0
        };

        // Step 1 (admission): measure each source's backlog, derive the
        // epoch's total row budget — the batch cap (with adaptive
        // catch-up) further bounded by the PID rate controller — and
        // apportion it across sources proportionally to backlog.
        let mut latests: std::collections::BTreeMap<String, PartitionOffsets> =
            std::collections::BTreeMap::new();
        let mut starts: std::collections::BTreeMap<String, PartitionOffsets> =
            std::collections::BTreeMap::new();
        let mut backlogs: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        for (name, source) in &self.sources {
            let latest = source.latest_offsets()?;
            let earliest = source.earliest_offsets()?;
            let pos = self
                .positions
                .entry(name.clone())
                .or_insert_with(|| latest.keys().map(|&p| (p, 0)).collect());
            // A bounded topic with a DropOldest policy may have shed
            // records this query never read. Skip forward to the
            // retention horizon: the data is gone by declared policy,
            // and the clamped position is what gets logged to the WAL,
            // so recovery replays a range that still exists.
            for (&p, &e) in &earliest {
                let slot = pos.entry(p).or_insert(0);
                if *slot < e {
                    *slot = e;
                }
            }
            let start = pos.clone();
            let backlog: u64 = latest
                .iter()
                .map(|(p, e)| e.saturating_sub(*start.get(p).unwrap_or(&0)))
                .sum();
            latests.insert(name.clone(), latest);
            starts.insert(name.clone(), start);
            backlogs.insert(name.clone(), backlog);
        }
        let total_backlog: u64 = backlogs.values().sum();
        let mut admit = self.effective_cap(total_backlog);
        let mut rate_limit = None;
        if let Some(rc) = &self.rate_controller {
            if let (Some(rate), Some(budget)) = (rc.rate(), rc.budget_rows()) {
                admit = admit.min(budget);
                rate_limit = Some(rate);
            }
        }
        let shares = apportion(admit, &backlogs);

        let mut ranges: std::collections::BTreeMap<String, OffsetRange> =
            std::collections::BTreeMap::new();
        let mut new_records: u64 = 0;
        let mut backlog_after: u64 = 0;
        for (name, start) in starts {
            let latest = &latests[&name];
            let backlog = backlogs[&name];
            let take = shares.get(&name).copied().unwrap_or(0);
            let mut end = PartitionOffsets::new();
            if take >= backlog {
                // Uncapped: take everything available.
                end = latest.clone();
            } else {
                // Spread the source's share across partitions, giving
                // each of the remaining partitions a proportional cut.
                let mut remaining = take;
                let n_parts = latest.len() as u64;
                for (i, (&p, &lat)) in latest.iter().enumerate() {
                    let s = *start.get(&p).unwrap_or(&0);
                    let avail = lat.saturating_sub(s);
                    let parts_left = n_parts - i as u64;
                    let share = remaining.div_ceil(parts_left);
                    let n = avail.min(share).min(remaining);
                    end.insert(p, s + n);
                    remaining -= n;
                }
            }
            let range = OffsetRange {
                start,
                end: end.clone(),
            };
            new_records += range.num_records();
            let source_backlog = backlog.saturating_sub(range.num_records());
            backlog_after += source_backlog;
            if let Some(m) = self.source_metrics.get(&name) {
                m.backlog.set(source_backlog as i64);
            }
            ranges.insert(name, range);
        }

        let pt = self.config.clock.wall_us();
        if new_records == 0 && !self.root.has_pending_timeouts(&mut self.store, pt) {
            // Caught up: the next epoch starts on time.
            self.last_epoch_duration_us = 0;
            return Ok(EpochRun::Idle);
        }

        self.registry
            .histogram("ss_scheduling_delay_us", &[])
            .observe(scheduling_delay_us);
        self.registry
            .counter("ss_admitted_rows_total", &[])
            .add(new_records);
        self.registry
            .gauge("ss_admission_rate_limit", &[])
            .set(rate_limit.map_or(-1, |r| r as i64));
        if rate_limit.is_some() && admit < total_backlog {
            // The controller is actively holding rows back.
            self.trace.instant(
                "overload",
                &[
                    ("phase", "admission-limited"),
                    ("admitted", &new_records.to_string()),
                    ("backlog", &total_backlog.to_string()),
                ],
            );
            self.events.emit(
                &self.name,
                EVENT_ADMISSION_LIMITED,
                &[
                    ("admitted", &new_records.to_string()),
                    ("backlog", &total_backlog.to_string()),
                ],
            );
        }

        let epoch = self.epoch + 1;
        let mut profile = EpochProfile::new(epoch);
        // Everything since the trigger fired was backlog accounting and
        // budget apportionment.
        profile.record(PHASE_ADMISSION, None, epoch_wall.elapsed().as_micros() as u64);
        let epoch_label = epoch.to_string();
        let epoch_span = self
            .trace
            .span("epoch", &[("epoch", epoch_label.as_str())]);
        let offsets = EpochOffsets {
            epoch,
            sources: ranges,
            watermark_us: self.tracker.current(),
            defined_at_us: started,
        };
        {
            let _span = self.trace.span("write-offsets", &[]);
            let t_wal = Instant::now();
            retried(&self.config.retry, &self.config.clock, &self.config.interrupt, &self.registry, "wal_offsets_append", || {
                self.wal.write_offsets(&offsets)
            })?;
            profile.record(PHASE_WAL, None, t_wal.elapsed().as_micros() as u64);
        }
        self.epoch = epoch;
        for (name, r) in &offsets.sources {
            self.positions.insert(name.clone(), r.end.clone());
        }
        self.config.faults.fire(failpoints::AFTER_OFFSET_WRITE)?;

        // Steps 2–3: execute and commit.
        let exec = self.execute_epoch_offsets(&offsets, true, &mut profile)?;
        drop(epoch_span);

        let t_finalize = Instant::now();
        let finished = self.config.clock.wall_us();
        // Clamp: with a coarse (or frozen test) clock an epoch can
        // complete in 0 µs, and the rows/s division must stay finite.
        let duration = (finished - started).max(1);
        self.epoch_duration_us.observe(duration as u64);
        self.last_epoch_duration_us = duration;
        // Feed the controller this epoch's observations; the rate it
        // produces shapes the *next* epoch's admission budget.
        if let Some(rc) = &mut self.rate_controller {
            rc.update(finished, new_records, duration as u64, scheduling_delay_us);
            self.registry
                .gauge("ss_admission_rate_limit", &[])
                .set(rc.rate().map_or(-1, |r| r as i64));
        }
        let shed_records = self.shed_records_total();
        self.registry
            .gauge("ss_bus_shed_records", &[])
            .set(shed_records as i64);
        let watermark_lag_us = match self.tracker.current() {
            i64::MIN => None,
            wm => self.tracker.max_observed().map(|m| (m - wm).max(0)),
        };
        // The controller update, shedding accounting and watermark
        // arithmetic above are the epoch's tail; attribute it so the
        // top-level phases sum to (almost all of) the measured total.
        profile.record(PHASE_FINALIZE, None, t_finalize.elapsed().as_micros() as u64);
        profile.total_us = epoch_wall.elapsed().as_micros() as u64;
        for p in &profile.phases {
            if p.parent.is_none() {
                self.registry
                    .histogram("ss_phase_duration_us", &[("phase", &p.name)])
                    .observe(p.duration_us);
            }
        }
        self.profiler.push(profile.clone());
        let progress = QueryProgress {
            epoch,
            num_input_rows: new_records,
            num_output_rows: exec.out_rows,
            batch_duration_us: duration,
            input_rows_per_second: new_records as f64 / (duration as f64 / 1e6),
            watermark_us: self.tracker.current(),
            watermark_lag_us,
            state_rows: self.state_rows(),
            backlog_rows: backlog_after,
            operator_durations: exec
                .ops
                .iter()
                .map(|s| OpDuration {
                    op: s.op.clone(),
                    rows_out: s.rows_out,
                    duration_us: s.duration_us,
                })
                .collect(),
            sink_commit_us: exec.sink_commit_us,
            restarts: self.restarts,
            scheduling_delay_us,
            admitted_rows: new_records,
            rate_limit: self.rate_controller.as_ref().and_then(|rc| rc.rate()),
            state_bytes: self.store.memory_bytes() as u64,
            spilled_bytes: self.store.spilled_bytes(),
            shed_records,
            tasks_launched: exec.tasks_launched,
            max_task_duration_us: exec.max_task_duration_us,
            quarantined_records: exec.quarantined,
            profile: Some(profile),
            ha_role: self.ha_role().map(|r| r.as_str().to_string()),
        };
        self.progress.push(progress.clone());
        self.events.emit(
            &self.name,
            EVENT_PROGRESS,
            &[
                ("epoch", &epoch.to_string()),
                ("rows_in", &new_records.to_string()),
                ("rows_out", &progress.num_output_rows.to_string()),
                ("duration_us", &duration.to_string()),
            ],
        );
        for l in &self.listeners {
            l.on_progress(&progress);
        }
        Ok(EpochRun::Ran(progress))
    }

    /// Drain all currently-available input: run epochs until idle.
    /// This is also what the run-once trigger uses (§7.3).
    pub fn process_available(&mut self) -> Result<u64> {
        let mut epochs = 0;
        while let EpochRun::Ran(_) = self.run_epoch()? {
            epochs += 1;
        }
        Ok(epochs)
    }

    /// The epoch's row budget from the static cap: `max_records_per_
    /// trigger` across all sources, grown by the catch-up multiplier
    /// while backlogged (§7.3).
    fn effective_cap(&self, backlog: u64) -> u64 {
        match self.config.max_records_per_trigger {
            None => backlog,
            Some(cap) => {
                if self.config.adaptive_batching && backlog > cap {
                    backlog.min(cap.saturating_mul(self.config.catchup_multiplier))
                } else {
                    backlog.min(cap)
                }
            }
        }
    }

    /// Records shed so far by bounded bus topics feeding this query's
    /// sources (0 for sources not bound to a bus topic).
    fn shed_records_total(&self) -> u64 {
        self.sources
            .values()
            .filter_map(|s| s.bus_binding())
            .filter_map(|(bus, topic)| bus.shed_records(&topic).ok())
            .sum()
    }

    /// End offsets of the last defined epoch, per source — what a
    /// consumer tracking this query's progress (e.g. a retention
    /// trimmer) should consider consumed.
    pub fn positions(&self) -> &HashMap<String, PartitionOffsets> {
        &self.positions
    }

    /// Execute the epoch described by `offsets`; commit output when
    /// `with_output` (recovery replays with output disabled). Returns
    /// the epoch's output row count, per-operator stats and sink
    /// commit time; phase wall times accumulate into `profile`
    /// (recovery replays pass a throwaway).
    fn execute_epoch_offsets(
        &mut self,
        offsets: &EpochOffsets,
        with_output: bool,
        profile: &mut EpochProfile,
    ) -> Result<EpochExecution> {
        let trace = self.trace.clone();
        let retry_policy = self.config.retry;
        let clock = self.config.clock.clone();
        let interrupt = self.config.interrupt.clone();
        let faults = self.config.faults.clone();
        let registry = self.registry.clone();
        // Read exactly the logged ranges (replayable sources), with
        // the plan's scan projections pushed into the read (§5.3).
        let projections = self.root.scan_projections();
        let mut inputs: HashMap<String, RecordBatch> = HashMap::new();
        // Ingest-time bounds across the epoch's input records, for the
        // end-to-end latency observed at sink commit.
        let mut ingest_min = i64::MAX;
        let mut ingest_max = i64::MIN;
        {
            let _span = trace.span("read-sources", &[]);
            let t_sources = Instant::now();
            for (name, range) in &offsets.sources {
                let source = self.sources.get(name).ok_or_else(|| {
                    SsError::Plan(format!("no source bound for `{name}` during execution"))
                })?;
                let projection = projections.get(name).cloned().flatten();
                let t_read = Instant::now();
                let batch = retried(&retry_policy, &clock, &interrupt, &registry, "source_read", || {
                    faults.fire(failpoints::SOURCE_READ)?;
                    source.read_all_projected(range, projection.as_deref())
                })?;
                if let Some((lo, hi)) = source.ingest_bounds(range)? {
                    ingest_min = ingest_min.min(lo);
                    ingest_max = ingest_max.max(hi);
                }
                if let Some(m) = self.source_metrics.get(name) {
                    m.rows_read.add(batch.num_rows() as u64);
                    m.read_us.observe(t_read.elapsed().as_micros() as u64);
                }
                inputs.insert(name.clone(), batch);
            }
            profile.record(PHASE_SOURCE_READ, None, t_sources.elapsed().as_micros() as u64);
        }
        self.heartbeat("source-read")?;

        // Poison-record isolation. Live epochs in isolation mode probe
        // every input row alone through a scratch copy of the plan and
        // strip the offenders before real execution; the stripped
        // offsets go into the epoch's commit record. Recovery replays
        // (`!with_output`) never re-probe: they strip exactly the
        // offsets the commit recorded, so the replayed output is byte
        // for byte the committed output at any parallelism.
        let mut quarantined: QuarantinedOffsets = BTreeMap::new();
        let mut letters: Vec<DeadLetterRecord> = Vec::new();
        if !with_output {
            if let Some(commit) = self.wal.read_commit(offsets.epoch)? {
                if !commit.quarantined.is_empty() {
                    // Evidence the query was already isolating poison:
                    // resume in isolation mode so new epochs keep
                    // probing instead of re-failing.
                    self.isolation = true;
                    quarantined = commit.quarantined;
                }
            }
        } else if self.isolation && self.config.error_policy.isolates() {
            let _span = trace.span("quarantine-probe", &[]);
            (quarantined, letters) = self.probe_poison_rows(offsets, &inputs)?;
            if let ErrorPolicy::Quarantine { max_per_epoch } = self.config.error_policy {
                let n: u64 = quarantined.values().map(|v| v.len() as u64).sum();
                if n > max_per_epoch {
                    return Err(SsError::Execution(format!(
                        "quarantine limit exceeded: {n} poison records in epoch {} \
                         (max_per_epoch is {max_per_epoch})",
                        offsets.epoch
                    )));
                }
            }
        }
        if !quarantined.is_empty() {
            strip_quarantined(&mut inputs, offsets, &quarantined)?;
        }
        self.heartbeat("quarantine-probe")?;

        // The logged watermark is authoritative (recovery reproduces
        // the original epoch's output exactly).
        self.tracker.set_current(offsets.watermark_us);
        let pt = self.config.clock.wall_us();
        let mut ops = OpStatsCollector::new();
        let exec_started = trace.now_us();
        let t_exec = Instant::now();
        let (out, task_stats) = {
            let _span = trace.span("execute", &[]);
            // Panics inside operators (UDFs, injected faults) fail the
            // epoch restartably instead of killing the query thread;
            // the restart path clears any half-updated in-memory state.
            let outcome = catch_unwind(AssertUnwindSafe(
                || -> Result<(RecordBatch, Option<ParallelRunStats>)> {
                let mut ctx = EpochContext {
                    epoch: offsets.epoch,
                    inputs: &mut inputs,
                    statics: self.statics.as_ref(),
                    store: &mut self.store,
                    watermark_us: offsets.watermark_us,
                    processing_time_us: pt,
                    output_mode: self.output_mode,
                    tracker: &mut self.tracker,
                    ops: &mut ops,
                    faults: &faults,
                };
                match self.parallel.as_mut() {
                    Some(p) => {
                        let (batch, stats) = p.execute_epoch(&mut ctx)?;
                        Ok((batch, Some(stats)))
                    }
                    None => Ok((self.root.execute_epoch(&mut ctx)?, None)),
                }
            },
            ));
            match outcome {
                Ok(result) => result?,
                Err(payload) => {
                    return Err(SsError::Execution(format!(
                        "panic during epoch execution: {}",
                        panic_message(payload.as_ref())
                    )))
                }
            }
        };
        self.heartbeat("execute")?;
        // Surface overload failures before anything becomes durable: a
        // spill reload that failed mid-execution (the operator saw
        // empty state) or an epoch that blew the hard memory limit.
        self.store.check_health()?;
        self.store.check_hard_limit()?;
        let ops = ops.take();
        for s in &ops {
            self.registry
                .counter("ss_operator_rows_total", &[("op", &s.op)])
                .add(s.rows_out);
            self.registry
                .histogram("ss_operator_eval_us", &[("op", &s.op)])
                .observe(s.duration_us);
            trace.complete(
                &format!("op:{}", s.op),
                exec_started + s.started_rel_us,
                s.duration_us,
                &[("rows_out", &s.rows_out.to_string())],
            );
        }
        // The execute phase covers the plan run plus its bookkeeping
        // (health checks, operator metric export).
        profile.record(PHASE_EXECUTE, None, t_exec.elapsed().as_micros() as u64);
        if let Some(run) = &task_stats {
            for (name, us) in &run.phases {
                profile.record(name, Some(PHASE_EXECUTE), *us);
            }
            profile.tasks = run.scatter.skew();
            profile.shuffle = run.shuffle.clone();
        }
        let out_rows = out.num_rows() as u64;

        let mut sink_commit_us = 0i64;
        if with_output {
            let output = match self.output_mode {
                OutputMode::Append => EpochOutput::Append(out),
                OutputMode::Update => EpochOutput::Update {
                    batch: out,
                    key_cols: self.update_key_cols.clone(),
                },
                OutputMode::Complete => EpochOutput::Complete(out),
            };
            let t_commit = Instant::now();
            {
                let _span = trace.span("sink-commit", &[]);
                // Sinks commit idempotently per epoch, so a retry after
                // a partial delivery rewrites the same output in place.
                // The sink lives outside the checkpoint backend, so the
                // fencing check is explicit here: a zombie leader is
                // rejected before any output becomes visible.
                retried(&retry_policy, &clock, &interrupt, &registry, "sink_commit", || {
                    if let Some(ha) = &self.config.ha {
                        ha.lease.check_fenced("sink-commit")?;
                    }
                    faults.fire(failpoints::SINK_COMMIT)?;
                    self.sink.commit_epoch(offsets.epoch, &output)
                })?;
            }
            sink_commit_us = t_commit.elapsed().as_micros() as i64;
            profile.record(PHASE_SINK_COMMIT, None, sink_commit_us as u64);
            self.sink_metrics
                .observe_commit(out_rows, sink_commit_us as u64);
            // End-to-end latency: the epoch's output just became
            // visible, so every input record's journey ends here.
            // Measured on the real clock — ingest stamps come from the
            // bus's wall clock, not the engine's injectable one.
            if ingest_min <= ingest_max {
                let commit_at = now_us();
                let lat_min = (commit_at - ingest_max).max(0) as u64;
                let lat_max = (commit_at - ingest_min).max(0) as u64;
                self.e2e_latency_us.observe(lat_min);
                self.e2e_latency_us.observe(lat_max);
                profile.e2e_latency_us = Some((lat_min, lat_max));
            }
            faults.fire(failpoints::AFTER_SINK_WRITE)?;
            let n_quarantined: u64 = quarantined.values().map(|v| v.len() as u64).sum();
            if n_quarantined > 0 {
                // Divert the offenders to the dead-letter queue (with
                // failure metadata) before the commit record makes the
                // quarantine durable. The DLQ commit is idempotent per
                // epoch, so a crash/replay rewrites the same records in
                // place — exactly-once dead letters. `Drop` keeps the
                // offsets (for replay determinism) but no letters.
                if matches!(self.config.error_policy, ErrorPolicy::Quarantine { .. }) {
                    let dlq = self.dlq.clone();
                    let epoch = offsets.epoch;
                    let to_commit = letters.clone();
                    let ha = self.config.ha.as_ref();
                    retried(&retry_policy, &clock, &interrupt, &registry, "dlq_write", || {
                        if let Some(ha) = ha {
                            ha.lease.check_fenced("dlq-commit")?;
                        }
                        faults.fire(ss_bus::dlq::failpoints::DLQ_WRITE)?;
                        dlq.commit_epoch(epoch, to_commit.clone());
                        Ok(())
                    })?;
                }
                self.quarantined_total.add(n_quarantined);
                self.events.emit(
                    &self.name,
                    EVENT_QUARANTINE,
                    &[
                        ("epoch", &offsets.epoch.to_string()),
                        ("records", &n_quarantined.to_string()),
                        (
                            "action",
                            if matches!(self.config.error_policy, ErrorPolicy::Drop) {
                                "dropped"
                            } else {
                                "quarantined"
                            },
                        ),
                    ],
                );
            }
            let commit = EpochCommit {
                epoch: offsets.epoch,
                rows_written: out_rows,
                committed_at_us: self.config.clock.wall_us(),
                quarantined: quarantined.clone(),
                fencing_epoch: self.held_fencing_epoch(),
            };
            let t_wal = Instant::now();
            retried(&retry_policy, &clock, &interrupt, &registry, "wal_commits_append", || {
                self.wal.write_commit(&commit)
            })?;
            profile.record(PHASE_WAL, None, t_wal.elapsed().as_micros() as u64);
            faults.fire(failpoints::AFTER_COMMIT_WRITE)?;
        }

        // Watermark advances at the epoch boundary (§4.3.1).
        self.tracker.advance();

        // Step 4: checkpoint state (tagged with the epoch). Only for
        // committed epochs, so checkpoints never run ahead of the
        // commit log.
        if with_output && offsets.epoch.is_multiple_of(self.config.checkpoint_interval) {
            let _span = trace.span("checkpoint", &[]);
            let t_state = Instant::now();
            self.tracker.save(&mut self.store);
            let store = &mut self.store;
            retried(&retry_policy, &clock, &interrupt, &registry, "checkpoint_write", || {
                store.checkpoint(offsets.epoch)
            })?;
            // Right after a checkpoint every operator is clean, so the
            // soft memory limit can spill the cold ones.
            let report = self.store.enforce_budget()?;
            if report.ops_spilled > 0 {
                trace.instant(
                    "overload",
                    &[
                        ("phase", "state-spill"),
                        ("ops_spilled", &report.ops_spilled.to_string()),
                        ("memory_bytes", &report.memory_bytes.to_string()),
                        ("spilled_bytes", &report.spilled_bytes.to_string()),
                    ],
                );
                self.events.emit(
                    &self.name,
                    EVENT_SPILL,
                    &[
                        ("epoch", &offsets.epoch.to_string()),
                        ("ops_spilled", &report.ops_spilled.to_string()),
                        ("spilled_bytes", &report.spilled_bytes.to_string()),
                    ],
                );
            }
            // The manifest rides along with the checkpoint — it must
            // only ever describe a state layout that exists on disk, so
            // it is never written ahead of the first checkpoint of the
            // current plan.
            retried(&retry_policy, &clock, &interrupt, &registry, "manifest_write", || {
                faults.fire(failpoints::MANIFEST_WRITE)?;
                self.write_manifest(false)
            })?;
            self.maybe_gc(offsets.epoch)?;
            profile.record(PHASE_STATE_COMMIT, None, t_state.elapsed().as_micros() as u64);
        }
        Ok(EpochExecution {
            out_rows,
            ops,
            sink_commit_us,
            tasks_launched: task_stats.as_ref().map_or(0, |s| s.scatter.tasks),
            max_task_duration_us: task_stats
                .as_ref()
                .map_or(0, |s| s.scatter.max_task_duration_us),
            quarantined: quarantined.values().map(|v| v.len() as u64).sum(),
        })
    }

    /// Probe each input row alone through a fresh scratch copy of the
    /// plan (in-memory state, scratch tracker, **no** fault injection:
    /// the probe detects failures carried by the data itself, not
    /// injected chaos) and collect the rows that deterministically
    /// fail, as `(partition, offset)` pairs per source plus their
    /// dead-letter records.
    fn probe_poison_rows(
        &self,
        offsets: &EpochOffsets,
        inputs: &HashMap<String, RecordBatch>,
    ) -> Result<(QuarantinedOffsets, Vec<DeadLetterRecord>)> {
        let pt = self.config.clock.wall_us();
        let probe_faults = FaultRegistry::new();
        let mut quarantined: QuarantinedOffsets = BTreeMap::new();
        let mut letters = Vec::new();
        for (source, range) in &offsets.sources {
            let Some(batch) = inputs.get(source) else {
                continue;
            };
            if batch.num_rows() == 0 {
                continue;
            }
            // Row index ↔ (partition, offset): sources concatenate
            // partitions in ascending order, offsets in range order.
            let rows = row_offsets(range);
            for i in 0..batch.num_rows() {
                let single = batch.slice(i, 1)?;
                let mut probe_inputs: HashMap<String, RecordBatch> = HashMap::new();
                probe_inputs.insert(source.clone(), single);
                let mut counter = 0;
                let mut probe = incrementalize(&self.optimized_plan, &mut counter)?;
                let mut store = StateStore::new(Arc::new(MemoryBackend::new()));
                let mut tracker = WatermarkTracker::new(&self.tracker.clone_config());
                let mut probe_ops = OpStatsCollector::new();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = EpochContext {
                        epoch: offsets.epoch,
                        inputs: &mut probe_inputs,
                        statics: self.statics.as_ref(),
                        store: &mut store,
                        watermark_us: offsets.watermark_us,
                        processing_time_us: pt,
                        output_mode: self.output_mode,
                        tracker: &mut tracker,
                        ops: &mut probe_ops,
                        faults: &probe_faults,
                    };
                    probe.execute_epoch(&mut ctx)
                }));
                let error = match outcome {
                    Ok(Ok(_)) => None,
                    Ok(Err(e)) => Some(e),
                    Err(payload) => Some(SsError::Execution(format!(
                        "panic during record probe: {}",
                        panic_message(payload.as_ref())
                    ))),
                };
                if let Some(e) = error {
                    let (partition, offset) = rows.get(i).copied().unwrap_or((0, i as u64));
                    let msg = e.to_string();
                    quarantined
                        .entry(source.clone())
                        .or_default()
                        .push((partition, offset));
                    letters.push(DeadLetterRecord {
                        epoch: offsets.epoch,
                        source: source.clone(),
                        partition,
                        offset,
                        fingerprint: failure_fingerprint(e.category(), &msg, offsets.epoch),
                        error: msg,
                        row_json: row_to_json(batch.schema(), &batch.row(i))
                            .unwrap_or_else(|_| "null".into()),
                    });
                }
            }
        }
        Ok((quarantined, letters))
    }

    // ------------------------------------------------------------------
    // Checkpoint manifest & retention
    // ------------------------------------------------------------------

    /// Build the manifest describing the checkpoint as of the last
    /// defined epoch.
    fn manifest(&self, sealed: bool) -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            query_name: self.name.clone(),
            engine: "microbatch".into(),
            last_epoch: self.epoch,
            sources: self
                .positions
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            watermark_us: self.tracker.current(),
            sealed,
            plan_fingerprint: self.plan_fingerprint.clone(),
            operators: self.signatures.clone(),
            state_partitions: Some(
                self.parallel.as_ref().map_or(1, |p| p.partitions() as u32),
            ),
            fencing_epoch: self.held_fencing_epoch(),
        }
    }

    /// Atomically (re)write the manifest. Deliberately **not** called at
    /// startup: until the first checkpoint of the current plan lands,
    /// the manifest must keep describing the previous plan's layout, or
    /// a crash-before-checkpoint would leave un-migrated state behind a
    /// manifest that claims the new layout.
    fn write_manifest(&self, sealed: bool) -> Result<()> {
        self.manifest(sealed).write(&self.backend)
    }

    /// Seal the manifest after a graceful drain: every defined epoch is
    /// committed and no in-flight work remains. Called by
    /// `StreamingQuery::stop_graceful`.
    pub fn seal_manifest(&mut self) -> Result<()> {
        if self.epoch == 0 {
            // Nothing was ever committed; an empty checkpoint needs no
            // manifest (and writing one would pin the plan's signatures
            // onto a directory that holds no state).
            return Ok(());
        }
        let registry = self.registry.clone();
        let faults = self.config.faults.clone();
        retried(&self.config.retry, &self.config.clock, &self.config.interrupt, &registry, "manifest_write", || {
            faults.fire(failpoints::MANIFEST_WRITE)?;
            self.write_manifest(true)
        })
    }

    /// Canonical signatures of this plan's stateful operators.
    pub fn operator_signatures(&self) -> &[OperatorSignature] {
        &self.signatures
    }

    /// Build a fresh engine over the **same checkpoint, sources and
    /// sink** but a new (edited) plan. The compatibility check and any
    /// state migrations run inside [`MicroBatchExecution::new`]; an
    /// incompatible edit errors before anything durable is touched.
    /// Used by `StreamingQuery::restart_from_checkpoint`.
    pub fn rebuild_from_checkpoint(
        &self,
        new_plan: &Arc<LogicalPlan>,
    ) -> Result<MicroBatchExecution> {
        MicroBatchExecution::new(
            self.name.clone(),
            new_plan,
            self.sources.clone(),
            self.statics.clone(),
            self.sink.clone(),
            self.output_mode,
            self.backend.clone(),
            self.config.clone(),
        )
    }

    /// Retention GC after a checkpoint at `epoch`: purge state
    /// generations below the horizon (snapped down to a full-snapshot
    /// boundary so every retained epoch stays restorable) and compact
    /// the WAL up to the new restore floor.
    fn maybe_gc(&mut self, epoch: u64) -> Result<()> {
        let Some(retain) = self.config.min_epochs_to_retain else {
            return Ok(());
        };
        let horizon = epoch.saturating_sub(retain);
        if horizon == 0 {
            return Ok(());
        }
        let mut purged = self.store.purge_before(horizon)?;
        if purged > 0 {
            if let Some(base) = self.store.earliest_full_epoch()? {
                purged += self.wal.compact_before(base)?;
            }
        }
        if purged > 0 {
            self.purged_total.add(purged as u64);
            self.trace.instant(
                "checkpoint-gc",
                &[
                    ("purged", &purged.to_string()),
                    ("horizon", &horizon.to_string()),
                ],
            );
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Recovery and rollback
    // ------------------------------------------------------------------

    /// §6.1 step 4: bring state and sink back to a consistent point
    /// after a restart.
    ///
    /// Hardened against bad durable data: the WAL is scanned first
    /// ([`WriteAheadLog::verify_and_repair`] — torn records past the
    /// last commit become uncommitted work, corruption inside committed
    /// history fails loudly), and state restore falls back to older
    /// checkpoints when the newest is unreadable
    /// ([`StateStore::restore_best`] — the WAL replays the gap).
    fn recover(&mut self) -> Result<()> {
        match self.recover_inner() {
            Err(err)
                if self.config.error_policy.isolates()
                    && !self.isolation
                    && is_record_failure(&err) =>
            {
                // An in-flight epoch re-ran into a deterministic record
                // failure: flip isolation on and recover again — the
                // probe strips the offenders this time. The sticky flag
                // bounds this to a single retry.
                self.enter_isolation(&err);
                self.reset_and_recover()
            }
            other => other,
        }
    }

    fn recover_inner(&mut self) -> Result<()> {
        let repair = self.wal.verify_and_repair()?;
        if !repair.is_clean() {
            self.trace.instant(
                "wal-repair",
                &[
                    ("dropped_offsets", &format!("{:?}", repair.dropped_offsets)),
                    ("dropped_commits", &format!("{:?}", repair.dropped_commits)),
                ],
            );
        }
        let rp = self.wal.recovery_point()?;
        let Some(last_committed) = rp.last_committed else {
            // Nothing committed: any state checkpoint is stale (they
            // are only written for committed epochs).
            self.store.truncate_after(0)?;
            // Re-run any epoch that was in flight.
            for e in rp.uncommitted_epochs {
                let offsets = self.wal.read_offsets(e)?.ok_or_else(|| {
                    SsError::Internal(format!("offset log lists epoch {e} but read failed"))
                })?;
                self.apply_positions(&offsets);
                self.epoch = e;
                let in_rows: u64 = offsets.sources.values().map(|r| r.num_records()).sum();
                let exec = self.execute_epoch_offsets(&offsets, true, &mut EpochProfile::new(e))?;
                self.last_inflight = Some((e, in_rows, exec));
            }
            return Ok(());
        };

        // Checkpoints newer than the commit line describe state the
        // engine is about to recompute (e.g. the commit record was a
        // torn tail); a delta written against them could corrupt a
        // future restore chain, so drop them first.
        self.store.truncate_after(last_committed)?;
        // Restore the newest *restorable* checkpoint ≤ the commit point
        // (corrupt chains are skipped; the WAL replays the difference).
        let chk = self.store.restore_best(Some(last_committed))?;
        let mut replay_from = 1;
        if let Some(c) = chk {
            if !self.migrations.is_empty() {
                // The checkpoint predates the current plan: rewrite each
                // migratable operator's rows to the new layout *before*
                // operators load them. Idempotent — rows already in the
                // new arity are left alone. Migrations address operators
                // by their serial (unsharded) namespace, so collapse any
                // sharded layout first; the repartition below re-shards.
                for (base, suffix) in state_families(&self.root) {
                    repartition_family(&mut self.store, &base, suffix, 1)?;
                }
                upgrade::apply_migrations(&mut self.store, &self.migrations);
                self.trace.instant(
                    "state-migration",
                    &[("operators", &self.migrations.len().to_string())],
                );
            }
            // Re-shard restored stateful-operator families to this
            // run's partition layout (layout-agnostic and idempotent:
            // a checkpoint already in the target layout is untouched,
            // whatever partition count the manifest declares).
            let target = self.parallel.as_ref().map_or(1, |p| p.partitions());
            for (base, suffix) in state_families(&self.root) {
                repartition_family(&mut self.store, &base, suffix, target)?;
            }
            self.root.restore_state(&mut self.store)?;
            self.tracker.load(&self.store)?;
            if let Some(p) = &mut self.parallel {
                p.restore_state(&mut self.store)?;
            }
            replay_from = c + 1;
        }

        // Re-execute committed epochs newer than the checkpoint with
        // output disabled: state is rebuilt, the sink already has
        // their output.
        for e in replay_from..=last_committed {
            let offsets = self.wal.read_offsets(e)?.ok_or_else(|| {
                SsError::Execution(format!(
                    "cannot recover: offset log is missing committed epoch {e}"
                ))
            })?;
            self.apply_positions(&offsets);
            self.epoch = e;
            // Replays profile into a throwaway: the profiler history
            // describes live epochs, not recovery.
            self.execute_epoch_offsets(&offsets, false, &mut EpochProfile::new(e))?;
        }
        if replay_from > last_committed && chk.is_some() {
            // State came wholly from the checkpoint; synchronize the
            // positions from the last committed epoch's offsets.
            if let Some(offsets) = self.wal.read_offsets(last_committed)? {
                self.apply_positions(&offsets);
                self.epoch = last_committed;
            }
        }
        self.epoch = self.epoch.max(last_committed);

        // Re-run the in-flight epochs, output enabled: the sink's
        // idempotence absorbs any partial writes from the crash.
        for e in rp.uncommitted_epochs {
            let offsets = self.wal.read_offsets(e)?.ok_or_else(|| {
                SsError::Internal(format!("offset log lists epoch {e} but read failed"))
            })?;
            self.apply_positions(&offsets);
            self.epoch = e;
            let in_rows: u64 = offsets.sources.values().map(|r| r.num_records()).sum();
            let exec = self.execute_epoch_offsets(&offsets, true, &mut EpochProfile::new(e))?;
            self.last_inflight = Some((e, in_rows, exec));
        }
        Ok(())
    }

    fn apply_positions(&mut self, offsets: &EpochOffsets) {
        for (name, r) in &offsets.sources {
            self.positions.insert(name.clone(), r.end.clone());
        }
    }

    /// Manual rollback (§7.2): truncate the WAL, state checkpoints and
    /// sink output to `epoch`, then recover. Subsequent triggers
    /// recompute everything after `epoch` from the (retained) source
    /// data.
    /// Both validations below run **before** any truncation, so a
    /// refused rollback leaves the checkpoint untouched.
    pub fn rollback_to(&mut self, epoch: u64) -> Result<()> {
        // Retention horizon: if GC compacted the WAL prefix, epochs
        // below the earliest retained full snapshot cannot be rebuilt.
        let epochs = self.wal.offset_epochs()?;
        if let Some(&first) = epochs.first() {
            if first > 1 {
                let floor = self.store.earliest_full_epoch()?.unwrap_or(first);
                if epoch < floor {
                    return Err(SsError::Execution(format!(
                        "cannot roll back to epoch {epoch}: checkpoint retention \
                         horizon is epoch {floor} (earlier checkpoints and WAL \
                         records were purged)"
                    )));
                }
            }
        }
        // Source retention: replaying from `epoch` re-reads every source
        // from its position at that epoch; refuse if a source has
        // already aged that data out.
        let resume: HashMap<String, PartitionOffsets> = if epoch == 0 {
            self.sources.keys().map(|n| (n.clone(), PartitionOffsets::new())).collect()
        } else {
            let offsets = self.wal.read_offsets(epoch)?.ok_or_else(|| {
                SsError::Execution(format!(
                    "cannot roll back to epoch {epoch}: its offset record is missing"
                ))
            })?;
            offsets
                .sources
                .iter()
                .map(|(n, r)| (n.clone(), r.end.clone()))
                .collect()
        };
        for (name, source) in &self.sources {
            let earliest = source.earliest_offsets()?;
            let positions = resume.get(name).cloned().unwrap_or_default();
            for (partition, avail) in &earliest {
                let have = positions.get(partition).copied().unwrap_or(0);
                if *avail > have {
                    return Err(SsError::Execution(format!(
                        "cannot roll back to epoch {epoch}: source `{name}` \
                         partition {partition} has aged out data before offset \
                         {avail} (replay would need offset {have})"
                    )));
                }
            }
        }
        self.wal.truncate_after(epoch)?;
        self.store.truncate_after(epoch)?;
        self.sink.truncate_after(epoch)?;
        self.dlq.truncate_after(epoch);
        self.reset_and_recover()
    }

    /// In-place restart after a failure (used by the query supervisor):
    /// throw away all in-memory execution state and re-run WAL recovery
    /// against the durable logs, exactly as a fresh process would.
    /// Increments the restart counter surfaced in [`QueryProgress`].
    pub fn restart(&mut self) -> Result<()> {
        self.restarts += 1;
        self.trace
            .instant("restart", &[("count", &self.restarts.to_string())]);
        self.events.emit(
            &self.name,
            EVENT_RESTART,
            &[("count", &self.restarts.to_string())],
        );
        self.reset_and_recover()
    }

    /// Supervisor restarts survived so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Phase-boundary liveness check: enforce the epoch watchdog
    /// deadline and, when HA is configured, piggyback a lease renewal
    /// on the same boundary. Renewal I/O errors are swallowed — the
    /// lease simply keeps its remaining TTL and the next boundary
    /// retries — but a discovered usurper ([`SsError::Fenced`]) is
    /// fatal and aborts the epoch immediately.
    fn heartbeat(&self, phase: &str) -> Result<()> {
        self.watchdog.check(phase)?;
        if let Some(ha) = &self.config.ha {
            if let Err(SsError::Fenced(m)) = ha.lease.maybe_renew() {
                return Err(SsError::Fenced(format!("at phase `{phase}`: {m}")));
            }
        }
        Ok(())
    }

    /// The HA configuration, when this query runs under a lease.
    pub fn ha(&self) -> Option<&HaConfig> {
        self.config.ha.as_ref()
    }

    /// This query's high-availability role, `None` without a lease.
    pub fn ha_role(&self) -> Option<HaRole> {
        let role = self.config.ha.as_ref().map(|h| h.lease.role())?;
        // A warm standby reports Standby until promoted (or fenced),
        // whatever its lease manager last observed.
        if self.standby && role != HaRole::Fenced {
            return Some(HaRole::Standby);
        }
        Some(role)
    }

    /// The fencing epoch stamped into durable records, `None` when the
    /// query is not currently the fenced leader.
    fn held_fencing_epoch(&self) -> Option<u64> {
        self.config.ha.as_ref().and_then(|h| h.lease.fencing_epoch())
    }

    /// True for a warm standby that has not yet been promoted.
    pub fn is_standby(&self) -> bool {
        self.standby
    }

    /// One-line JSON snapshot of the HA machinery for the
    /// introspection server's `/query/<name>/ha` endpoint.
    pub fn ha_status_json(&self) -> String {
        use ss_common::trace::escape_json;
        let Some(ha) = &self.config.ha else {
            return "{\"configured\":false}".to_string();
        };
        let lease = &ha.lease;
        let role = self
            .ha_role()
            .map_or("unknown", |r| r.as_str())
            .to_string();
        let fencing = lease
            .fencing_epoch()
            .map_or("null".to_string(), |e| e.to_string());
        let replication = match &ha.replication {
            None => "null".to_string(),
            Some(r) => {
                let mode = match r.mode() {
                    ss_state::ReplicationMode::Sync => "sync".to_string(),
                    ss_state::ReplicationMode::Async { max_lag } => {
                        format!("async(max_lag={max_lag})")
                    }
                };
                format!(
                    "{{\"mode\":\"{}\",\"mirrored_ops\":{},\"replica_errors\":{},\
                     \"replication_lag_us\":{}}}",
                    mode,
                    r.mirrored_ops(),
                    r.replica_errors(),
                    r.last_lag_us()
                )
            }
        };
        format!(
            "{{\"configured\":true,\"role\":\"{}\",\"holder\":\"{}\",\
             \"fencing_epoch\":{},\"fencing_rejections\":{},\"failovers\":{},\
             \"standby\":{},\"epoch\":{},\"replication\":{}}}",
            escape_json(&role),
            escape_json(lease.holder()),
            fencing,
            lease.fencing_rejections(),
            lease.failovers(),
            self.standby,
            self.epoch,
            replication
        )
    }

    /// Tail the (replicated) checkpoint **read-only**: restore the
    /// newest restorable state checkpoint once, then replay every
    /// newly *committed* epoch with output disabled — the sink already
    /// holds their output, so a standby produces no writes at all.
    /// Torn tails and in-flight epochs are deliberately left alone;
    /// repairing them requires the lease and happens in
    /// [`promote`](Self::promote). Returns the number of committed
    /// epochs applied this call.
    ///
    /// The standby must be configured with the same plan and partition
    /// layout as the leader: catch-up performs no state migrations and
    /// no repartitioning (both would write to the shared checkpoint).
    pub fn standby_catch_up(&mut self) -> Result<u64> {
        let rp = self.wal.recovery_point()?;
        let Some(last_committed) = rp.last_committed else {
            return Ok(0);
        };
        if !self.standby_restored {
            if let Some(c) = self.store.restore_best(Some(last_committed))? {
                self.root.restore_state(&mut self.store)?;
                self.tracker.load(&self.store)?;
                if let Some(p) = &mut self.parallel {
                    p.restore_state(&mut self.store)?;
                }
                if let Some(offsets) = self.wal.read_offsets(c)? {
                    self.apply_positions(&offsets);
                }
                self.epoch = c;
            }
            self.standby_restored = true;
        }
        let mut applied = 0;
        for e in (self.epoch + 1)..=last_committed {
            let Some(offsets) = self.wal.read_offsets(e)? else {
                // The leader is mid-write (or left a torn tail):
                // stop here and let the next tick — or promotion's
                // repair — pick it up.
                break;
            };
            // Execute before advancing positions so a failed replay
            // (e.g. a torn commit record the leader left behind)
            // leaves the standby consistent at the previous epoch.
            self.execute_epoch_offsets(&offsets, false, &mut EpochProfile::new(e))?;
            self.apply_positions(&offsets);
            self.epoch = e;
            applied += 1;
        }
        Ok(applied)
    }

    /// Warm takeover: acquire the lease — bumping the fencing epoch,
    /// so every durable write the previous leader still attempts is
    /// rejected with [`SsError::Fenced`] — then repair the WAL tail,
    /// finish the read-only committed catch-up, and re-run any epoch
    /// that was in flight at the failure with output enabled (the
    /// sink's idempotence absorbs the dead leader's partial writes).
    /// Promotion work is bounded by the epochs committed since the
    /// last [`standby_catch_up`](Self::standby_catch_up) tick plus the
    /// in-flight tail. Returns the fencing epoch now held.
    pub fn promote(&mut self) -> Result<u64> {
        let Some(ha) = self.config.ha.clone() else {
            return Err(SsError::Plan(
                "promote: query has no HA configuration (MicroBatchConfig::ha)".into(),
            ));
        };
        let fencing = ha.lease.try_acquire()?;
        self.standby = false;
        // We own the checkpoint now: torn tails the dead leader left
        // behind can be repaired, exactly as leader recovery does.
        let repair = self.wal.verify_and_repair()?;
        if !repair.is_clean() {
            self.trace.instant(
                "wal-repair",
                &[
                    ("dropped_offsets", &format!("{:?}", repair.dropped_offsets)),
                    ("dropped_commits", &format!("{:?}", repair.dropped_commits)),
                ],
            );
        }
        let rp = self.wal.recovery_point()?;
        // Checkpoints past the commit line describe state about to be
        // recomputed (e.g. the commit record was a torn tail we just
        // dropped); writing deltas against them would corrupt a future
        // restore chain.
        self.store.truncate_after(rp.last_committed.unwrap_or(0))?;
        self.standby_catch_up()?;
        for e in rp.uncommitted_epochs {
            let offsets = self.wal.read_offsets(e)?.ok_or_else(|| {
                SsError::Internal(format!("offset log lists epoch {e} but read failed"))
            })?;
            self.apply_positions(&offsets);
            self.epoch = e;
            let in_rows: u64 = offsets.sources.values().map(|r| r.num_records()).sum();
            let exec = self.execute_epoch_offsets(&offsets, true, &mut EpochProfile::new(e))?;
            self.last_inflight = Some((e, in_rows, exec));
        }
        self.events.emit(
            &self.name,
            EVENT_FAILOVER,
            &[
                ("holder", ha.lease.holder()),
                ("fencing_epoch", &fencing.to_string()),
                ("epoch", &self.epoch.to_string()),
            ],
        );
        self.trace.instant(
            "failover",
            &[("fencing_epoch", &fencing.to_string())],
        );
        Ok(fencing)
    }

    /// The dead-letter queue holding quarantined poison records.
    pub fn dlq(&self) -> &Arc<DeadLetterQueue> {
        &self.dlq
    }

    /// True while the engine probes rows individually and quarantines
    /// deterministic failures.
    pub fn isolation_active(&self) -> bool {
        self.isolation
    }

    /// Called by the supervisor when a failure fingerprint repeated
    /// across a restart — i.e. the failure is deterministic and
    /// replaying it again cannot succeed. Counts the classification
    /// and, when the error policy allows, switches the engine into
    /// isolation mode so the next restart quarantines the offending
    /// records instead of replaying the failure forever.
    pub fn note_deterministic(&mut self, fingerprint: u64, message: &str) {
        self.deterministic_failures.inc();
        let fp = format!("{fingerprint:016x}");
        self.events.emit(
            &self.name,
            EVENT_QUARANTINE,
            &[
                ("action", "deterministic-failure"),
                ("fingerprint", &fp),
                ("error", message),
            ],
        );
        if self.config.error_policy.isolates() && !self.isolation {
            self.isolation = true;
            self.trace
                .instant("isolation", &[("fingerprint", fp.as_str())]);
        }
    }

    /// Flip isolation mode on after a record-shaped failure.
    fn enter_isolation(&mut self, err: &SsError) {
        if self.isolation {
            return;
        }
        self.isolation = true;
        let msg = err.to_string();
        self.trace.instant("isolation", &[("error", &msg)]);
        self.events.emit(
            &self.name,
            EVENT_QUARANTINE,
            &[("action", "isolation-on"), ("error", &msg)],
        );
    }

    /// Progress record for an epoch that completed via the isolation
    /// retry path (recovery re-ran it with probing; the usual trigger
    /// bookkeeping was skipped).
    fn synthesize_progress(
        &mut self,
        epoch: u64,
        in_rows: u64,
        exec: EpochExecution,
    ) -> QueryProgress {
        let duration = self.last_epoch_duration_us.max(1);
        let watermark_lag_us = match self.tracker.current() {
            i64::MIN => None,
            wm => self.tracker.max_observed().map(|m| (m - wm).max(0)),
        };
        QueryProgress {
            epoch,
            num_input_rows: in_rows,
            num_output_rows: exec.out_rows,
            batch_duration_us: duration,
            input_rows_per_second: in_rows as f64 / (duration as f64 / 1e6),
            watermark_us: self.tracker.current(),
            watermark_lag_us,
            state_rows: self.state_rows(),
            backlog_rows: 0,
            operator_durations: exec
                .ops
                .iter()
                .map(|s| OpDuration {
                    op: s.op.clone(),
                    rows_out: s.rows_out,
                    duration_us: s.duration_us,
                })
                .collect(),
            sink_commit_us: exec.sink_commit_us,
            restarts: self.restarts,
            scheduling_delay_us: 0,
            admitted_rows: in_rows,
            rate_limit: None,
            state_bytes: self.store.memory_bytes() as u64,
            spilled_bytes: self.store.spilled_bytes(),
            shed_records: self.shed_records_total(),
            tasks_launched: exec.tasks_launched,
            max_task_duration_us: exec.max_task_duration_us,
            quarantined_records: exec.quarantined,
            profile: None,
            ha_role: self.ha_role().map(|r| r.as_str().to_string()),
        }
    }

    fn reset_and_recover(&mut self) -> Result<()> {
        self.store.clear_memory();
        self.tracker = WatermarkTracker::new(&current_watermarks(&self.tracker));
        self.epoch = 0;
        self.positions.clear();
        self.root.restore_state(&mut self.store)?; // clears operators
        if let Some(p) = &mut self.parallel {
            p.restore_state(&mut self.store)?; // clears shards
        }
        self.recover()
    }
}

/// Rebuild the tracker's (column, delay) config; observations are
/// dropped on rollback and recomputed during replay.
fn current_watermarks(t: &WatermarkTracker) -> Vec<(String, i64)> {
    // WatermarkTracker doesn't expose its delays publicly; rebuilding
    // from scratch with the same config requires keeping it around.
    // `clone_config` below provides it.
    t.clone_config()
}

/// True for failures a single record can deterministically cause:
/// evaluation type errors, operator panics (caught and rendered), and
/// the `exec.record.eval` fail point. Everything else (I/O, torn
/// writes, timeouts) stays on the transient restart path.
fn is_record_failure(err: &SsError) -> bool {
    match err {
        SsError::Type(_) => true,
        SsError::Execution(m) => {
            m.contains("panic during") || m.contains(ss_exec::ops::failpoints::RECORD_EVAL)
        }
        _ => false,
    }
}

/// The `(partition, offset)` of each row in a source batch read from
/// `range`, in row order: partitions ascend (sources read them in
/// `BTreeMap` order), offsets ascend within a partition.
fn row_offsets(range: &OffsetRange) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    for (&p, &end) in &range.end {
        let start = range.start.get(&p).copied().unwrap_or(0);
        for o in start..end {
            out.push((p, o));
        }
    }
    out
}

/// Remove the quarantined offsets from each source's epoch batch.
fn strip_quarantined(
    inputs: &mut HashMap<String, RecordBatch>,
    offsets: &EpochOffsets,
    quarantined: &QuarantinedOffsets,
) -> Result<()> {
    for (source, bad) in quarantined {
        let Some(batch) = inputs.get(source) else {
            continue;
        };
        let Some(range) = offsets.sources.get(source) else {
            continue;
        };
        let rows = row_offsets(range);
        let bad: BTreeSet<(u32, u64)> = bad.iter().copied().collect();
        let mask: Vec<bool> = (0..batch.num_rows())
            .map(|i| rows.get(i).is_none_or(|ro| !bad.contains(ro)))
            .collect();
        let filtered = batch.filter(&mask)?;
        inputs.insert(source.clone(), filtered);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_bus::{GeneratorSource, MemorySink};
    use ss_common::{row, DataType, Field, Schema, Value};
    use ss_exec::MemoryCatalog;
    use ss_expr::{col, count_star};
    use ss_plan::LogicalPlanBuilder;
    use ss_state::MemoryBackend;

    fn schema() -> SchemaRef {
        Schema::of(vec![
            Field::new("country", DataType::Utf8),
            Field::new("time", DataType::Timestamp),
        ])
    }

    fn gen_source(partitions: u32) -> Arc<GeneratorSource> {
        Arc::new(GeneratorSource::new(
            "events",
            schema(),
            partitions,
            Arc::new(|p, o| {
                let c = if (p as u64 + o).is_multiple_of(2) { "CA" } else { "US" };
                row![c, Value::Timestamp((o as i64) * 1_000_000)]
            }),
        ))
    }

    fn count_plan() -> Arc<LogicalPlan> {
        LogicalPlanBuilder::scan("events", schema(), true)
            .aggregate(vec![col("country")], vec![count_star()])
            .build()
    }

    /// A config whose registry fires `point` on every hit (matching the
    /// always-on semantics of the old `FailurePoint` enum).
    fn faulty_config(point: &str) -> MicroBatchConfig {
        use ss_common::fault::{FaultMode, FaultTrigger};
        let config = MicroBatchConfig::default();
        config
            .faults
            .configure(point, FaultTrigger::EveryNth { n: 1 }, FaultMode::Error);
        config
    }

    fn engine(
        source: Arc<GeneratorSource>,
        sink: Arc<MemorySink>,
        backend: Arc<dyn CheckpointBackend>,
        config: MicroBatchConfig,
    ) -> MicroBatchExecution {
        let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
        sources.insert("events".into(), source);
        MicroBatchExecution::new(
            "q",
            &count_plan(),
            sources,
            Arc::new(MemoryCatalog::new()),
            sink,
            OutputMode::Complete,
            backend,
            config,
        )
        .unwrap()
    }

    #[test]
    fn epochs_process_new_data_and_idle_otherwise() {
        let src = gen_source(2);
        let sink = MemorySink::new("out");
        let mut eng = engine(
            src.clone(),
            sink.clone(),
            Arc::new(MemoryBackend::new()),
            MicroBatchConfig::default(),
        );
        assert_eq!(eng.run_epoch().unwrap(), EpochRun::Idle);
        src.advance(3); // 3 per partition = 6 records
        match eng.run_epoch().unwrap() {
            EpochRun::Ran(p) => {
                assert_eq!(p.epoch, 1);
                assert_eq!(p.num_input_rows, 6);
            }
            EpochRun::Idle => panic!("expected an epoch"),
        }
        assert_eq!(sink.snapshot(), vec![row!["CA", 3i64], row!["US", 3i64]]);
        assert_eq!(eng.run_epoch().unwrap(), EpochRun::Idle);
    }

    #[test]
    fn batch_cap_and_adaptive_catchup() {
        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let config = MicroBatchConfig {
            max_records_per_trigger: Some(10),
            adaptive_batching: true,
            catchup_multiplier: 4,
            ..Default::default()
        };
        let mut eng = engine(src.clone(), sink, Arc::new(MemoryBackend::new()), config);
        // Small backlog: capped at 10.
        src.advance(5);
        if let EpochRun::Ran(p) = eng.run_epoch().unwrap() {
            assert_eq!(p.num_input_rows, 5);
        } else {
            panic!()
        }
        // Huge backlog: adaptive batching grows the epoch to 40.
        src.advance(100);
        if let EpochRun::Ran(p) = eng.run_epoch().unwrap() {
            assert_eq!(p.num_input_rows, 40);
            assert_eq!(p.backlog_rows, 60);
        } else {
            panic!()
        }
        // Draining processes everything.
        let epochs = eng.process_available().unwrap();
        assert!(epochs >= 2);
        assert_eq!(eng.progress().total_input_rows(), 105);
    }

    #[test]
    fn rate_controller_limits_admission_and_reports() {
        // A stepping clock: every reading advances 100ms, so each epoch
        // appears to take several hundred ms of processing time.
        let clock: Clock = ss_common::clock::StepClock::new(0, 100_000).handle();
        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let config = MicroBatchConfig {
            rate_controller: Some(RateControllerConfig {
                min_rate: 1.0,
                batch_interval_us: 100_000,
                ..RateControllerConfig::default()
            }),
            clock,
            ..Default::default()
        };
        let mut eng = engine(src.clone(), sink, Arc::new(MemoryBackend::new()), config);
        // Epoch 1 seeds the controller (no limit in force yet).
        src.advance(50);
        let p1 = match eng.run_epoch().unwrap() {
            EpochRun::Ran(p) => p,
            EpochRun::Idle => panic!("expected an epoch"),
        };
        // No limit constrained admission yet; the record carries the
        // rate seeded from this epoch (now in force for the next one).
        assert_eq!(p1.admitted_rows, 50);
        assert_eq!(p1.scheduling_delay_us, 0);
        assert!(p1.rate_limit.is_some());
        // Epoch 2: the measured rate (50 rows over ~0.4s of fake time)
        // bounds admission to far less than the fresh 100-row backlog.
        src.advance(100);
        let p2 = match eng.run_epoch().unwrap() {
            EpochRun::Ran(p) => p,
            EpochRun::Idle => panic!("expected an epoch"),
        };
        let limit = p2.rate_limit.expect("controller seeded after one epoch");
        assert!(limit > 0.0);
        assert!(
            p2.admitted_rows < 100,
            "budget must hold rows back, admitted {}",
            p2.admitted_rows
        );
        assert_eq!(p2.backlog_rows, 100 - p2.admitted_rows);
        // The previous epoch overran the 100ms interval, so this one
        // started late.
        assert!(p2.scheduling_delay_us > 0);
        // Capped admission composes with draining: everything is
        // eventually processed exactly once.
        eng.process_available().unwrap();
        assert_eq!(eng.progress().total_input_rows(), 150);
        assert!(eng.metrics().render().contains("ss_admission_rate_limit"));
    }

    #[test]
    fn state_budget_spills_and_results_stay_correct() {
        use ss_common::MetricValue;
        use ss_state::MemoryBudget;

        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let config = MicroBatchConfig {
            // 1-byte soft limit: the aggregation state spills after
            // every checkpoint and transparently reloads next epoch.
            state_budget: MemoryBudget {
                soft_limit_bytes: Some(1),
                hard_limit_bytes: None,
            },
            ..Default::default()
        };
        let mut eng = engine(src.clone(), sink.clone(), Arc::new(MemoryBackend::new()), config);
        src.advance(4);
        eng.run_epoch().unwrap();
        src.advance(2);
        eng.run_epoch().unwrap();
        // Counts accumulated across the spill/reload cycle correctly.
        assert_eq!(sink.snapshot(), vec![row!["CA", 3i64], row!["US", 3i64]]);
        match eng.metrics().value("ss_state_spills_total", &[]) {
            Some(MetricValue::Counter(n)) => assert!(n >= 1, "expected spills, got {n}"),
            other => panic!("missing spill counter: {other:?}"),
        }
        let last = eng.progress().last().unwrap();
        assert!(last.spilled_bytes > 0, "progress must surface spill bytes");
    }

    #[test]
    fn hard_memory_limit_fails_epoch_before_commit() {
        use ss_state::MemoryBudget;

        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let config = MicroBatchConfig {
            state_budget: MemoryBudget {
                soft_limit_bytes: None,
                hard_limit_bytes: Some(16),
            },
            ..Default::default()
        };
        let mut eng = engine(src.clone(), sink.clone(), Arc::new(MemoryBackend::new()), config);
        src.advance(4);
        let err = eng.run_epoch().unwrap_err();
        assert_eq!(err.category(), "resource_exhausted");
        // The epoch aborted before the sink commit: nothing durable.
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn recovery_resumes_from_wal_and_checkpoint() {
        let src = gen_source(1);
        let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        {
            let mut eng = engine(
                src.clone(),
                sink.clone(),
                backend.clone(),
                MicroBatchConfig::default(),
            );
            src.advance(4);
            eng.process_available().unwrap();
        } // "crash": engine dropped
        src.advance(2);
        let mut eng2 = engine(src.clone(), sink.clone(), backend, MicroBatchConfig::default());
        assert_eq!(eng2.current_epoch(), 1);
        eng2.process_available().unwrap();
        // Counts continue from the restored state: 6 records total.
        assert_eq!(sink.snapshot(), vec![row!["CA", 3i64], row!["US", 3i64]]);
    }

    #[test]
    fn crash_between_sink_and_commit_is_exactly_once() {
        let src = gen_source(1);
        let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let config = faulty_config(failpoints::AFTER_SINK_WRITE);
        {
            let mut eng = engine(src.clone(), sink.clone(), backend.clone(), config);
            src.advance(4);
            // The sink got the data, the commit log write "crashed".
            assert!(eng.run_epoch().is_err());
        }
        // Restart without injection: the epoch re-runs; the sink's
        // idempotence leaves exactly one copy.
        let mut eng2 = engine(src.clone(), sink.clone(), backend, MicroBatchConfig::default());
        eng2.process_available().unwrap();
        assert_eq!(sink.snapshot(), vec![row!["CA", 2i64], row!["US", 2i64]]);
    }

    #[test]
    fn crash_after_offset_write_re_runs_same_offsets() {
        let src = gen_source(1);
        let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let config = faulty_config(failpoints::AFTER_OFFSET_WRITE);
        {
            let mut eng = engine(src.clone(), sink.clone(), backend.clone(), config);
            src.advance(4);
            assert!(eng.run_epoch().is_err());
        }
        // More data arrives before the restart; the in-flight epoch
        // must still cover exactly its logged range.
        src.advance(3);
        let mut eng2 = engine(src.clone(), sink.clone(), backend.clone(), MicroBatchConfig::default());
        eng2.process_available().unwrap();
        assert_eq!(sink.snapshot(), vec![row!["CA", 4i64], row!["US", 3i64]]);
        // The WAL shows epoch 1 with the pre-crash range (4 records).
        let wal = WriteAheadLog::new(backend);
        assert_eq!(
            wal.read_offsets(1).unwrap().unwrap().sources["events"].num_records(),
            4
        );
    }

    #[test]
    fn manual_rollback_recomputes_from_prefix() {
        let src = gen_source(1);
        let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let mut eng = engine(
            src.clone(),
            sink.clone(),
            backend,
            MicroBatchConfig::default(),
        );
        src.advance(2);
        eng.run_epoch().unwrap();
        src.advance(2);
        eng.run_epoch().unwrap();
        assert_eq!(eng.current_epoch(), 2);
        assert_eq!(sink.snapshot(), vec![row!["CA", 2i64], row!["US", 2i64]]);
        // Roll back to epoch 1 and reprocess.
        eng.rollback_to(1).unwrap();
        assert_eq!(eng.current_epoch(), 1);
        eng.process_available().unwrap();
        assert_eq!(sink.snapshot(), vec![row!["CA", 2i64], row!["US", 2i64]]);
    }

    #[test]
    fn zero_duration_epoch_keeps_rate_finite() {
        // A frozen clock makes `finished - started == 0`; the engine
        // must clamp the duration so rows/s never divides by zero.
        // Serial path only: parallel gather polls sleep on the clock,
        // which legitimately advances a StepClock past zero.
        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let config = MicroBatchConfig {
            clock: ss_common::clock::StepClock::frozen(42).handle(),
            parallelism: 1,
            ..Default::default()
        };
        let mut eng = engine(src.clone(), sink, Arc::new(MemoryBackend::new()), config);
        src.advance(5);
        match eng.run_epoch().unwrap() {
            EpochRun::Ran(p) => {
                assert_eq!(p.batch_duration_us, 1);
                assert!(p.input_rows_per_second.is_finite());
                assert!(p.input_rows_per_second > 0.0);
                // The summary renders without NaN/inf artifacts.
                assert!(!p.summary().contains("NaN"));
                assert!(!p.summary().contains("inf"));
            }
            EpochRun::Idle => panic!("expected an epoch"),
        }
    }

    #[test]
    fn epoch_produces_metrics_trace_and_listener_callbacks() {
        use parking_lot::Mutex;

        struct Collector {
            progress: Mutex<Vec<QueryProgress>>,
            terminated: Mutex<Vec<(String, Option<String>)>>,
        }
        impl StreamingQueryListener for Collector {
            fn on_progress(&self, p: &QueryProgress) {
                self.progress.lock().push(p.clone());
            }
            fn on_terminated(&self, name: &str, error: Option<&str>) {
                self.terminated
                    .lock()
                    .push((name.to_string(), error.map(str::to_string)));
            }
        }

        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let mut eng = engine(
            src.clone(),
            sink,
            Arc::new(MemoryBackend::new()),
            MicroBatchConfig::default(),
        );
        let collector = Arc::new(Collector {
            progress: Mutex::new(Vec::new()),
            terminated: Mutex::new(Vec::new()),
        });
        eng.add_listener(collector.clone());
        src.advance(4);
        eng.run_epoch().unwrap();
        src.advance(2);
        eng.run_epoch().unwrap();

        // One on_progress per epoch, each with per-operator durations.
        let progress = collector.progress.lock();
        assert_eq!(progress.len(), 2);
        for p in progress.iter() {
            assert!(!p.operator_durations.is_empty());
            assert!(p.operator_durations.iter().any(|d| d.op == "scan:events"));
            assert!(p.sink_commit_us >= 0);
        }
        drop(progress);

        // Registry holds operator, state, WAL, source and sink series.
        let text = eng.metrics().render();
        for series in [
            "ss_operator_rows_total",
            "ss_operator_eval_us",
            "ss_state_puts_total",
            "ss_wal_appends_total",
            "ss_source_rows_total",
            "ss_sink_commits_total",
            "ss_epoch_duration_us",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }

        // The trace has epoch spans and per-operator complete events.
        let events = eng.trace().events();
        assert!(events.iter().any(|e| e.name == "epoch" && e.ph == 'B'));
        assert!(events.iter().any(|e| e.name == "epoch" && e.ph == 'E'));
        assert!(events.iter().any(|e| e.name == "sink-commit"));
        assert!(events
            .iter()
            .any(|e| e.name == "op:scan:events" && e.ph == 'X'));

        // on_terminated fires exactly once, even if notified twice.
        eng.notify_terminated(None);
        eng.notify_terminated(Some("late"));
        let terminated = collector.terminated.lock();
        assert_eq!(terminated.len(), 1);
        assert_eq!(terminated[0], ("q".to_string(), None));
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        use ss_common::fault::{FaultMode, FaultTrigger};
        use ss_common::MetricValue;

        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let config = MicroBatchConfig {
            retry: RetryPolicy::immediate(4),
            ..Default::default()
        };
        let faults = config.faults.clone();
        // One transient sink flake, then success on the retry.
        faults.configure(
            failpoints::SINK_COMMIT,
            FaultTrigger::Once { skip: 0 },
            FaultMode::TransientError,
        );
        let mut eng = engine(src.clone(), sink.clone(), Arc::new(MemoryBackend::new()), config);
        src.advance(4);
        match eng.run_epoch().unwrap() {
            EpochRun::Ran(p) => assert_eq!(p.num_input_rows, 4),
            EpochRun::Idle => panic!("expected an epoch"),
        }
        assert_eq!(sink.snapshot(), vec![row!["CA", 2i64], row!["US", 2i64]]);
        assert_eq!(
            eng.metrics()
                .value("ss_retry_attempts_total", &[("op", "sink_commit")]),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            eng.metrics()
                .value("ss_retries_exhausted_total", &[("op", "sink_commit")]),
            None,
            "retry succeeded, nothing exhausted"
        );
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        use ss_common::fault::{FaultMode, FaultTrigger};
        use ss_common::MetricValue;

        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let config = MicroBatchConfig {
            retry: RetryPolicy::immediate(3),
            ..Default::default()
        };
        let faults = config.faults.clone();
        faults.configure(
            failpoints::SOURCE_READ,
            FaultTrigger::EveryNth { n: 1 },
            FaultMode::TransientError,
        );
        let mut eng = engine(src.clone(), sink, Arc::new(MemoryBackend::new()), config);
        src.advance(2);
        let err = eng.run_epoch().unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        assert_eq!(
            eng.metrics()
                .value("ss_retries_exhausted_total", &[("op", "source_read")]),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(faults.hits(failpoints::SOURCE_READ), 3, "3 attempts");
    }

    #[test]
    fn restart_reruns_recovery_in_place_and_counts() {
        let src = gen_source(1);
        let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let config = faulty_config(failpoints::AFTER_SINK_WRITE);
        let faults = config.faults.clone();
        let mut eng = engine(src.clone(), sink.clone(), backend, config);
        src.advance(4);
        assert!(eng.run_epoch().is_err());
        // Clear the fault and restart the same engine instance — what
        // the supervisor does instead of rebuilding the process.
        faults.clear();
        eng.restart().unwrap();
        assert_eq!(eng.restarts(), 1);
        // Recovery already re-ran the in-flight epoch; fresh data after
        // the restart produces a progress record carrying the counter.
        assert_eq!(sink.snapshot(), vec![row!["CA", 2i64], row!["US", 2i64]]);
        src.advance(2);
        eng.process_available().unwrap();
        assert_eq!(sink.snapshot(), vec![row!["CA", 3i64], row!["US", 3i64]]);
        match eng.progress().last() {
            Some(p) => assert_eq!(p.restarts, 1),
            None => panic!("expected progress after restart"),
        }
    }

    #[test]
    fn corrupt_committed_wal_record_fails_engine_construction() {
        let src = gen_source(1);
        let backend = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        {
            let mut eng = engine(
                src.clone(),
                sink.clone(),
                backend.clone(),
                MicroBatchConfig::default(),
            );
            src.advance(4);
            eng.process_available().unwrap();
            src.advance(2);
            eng.process_available().unwrap();
        }
        // Corrupt the *first* (committed) offsets record on disk.
        let key = "wal/offsets/epoch-00000000000000000001.json";
        backend.write_atomic(key, b"garbage").unwrap();
        let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
        sources.insert("events".into(), src);
        let err = MicroBatchExecution::new(
            "q",
            &count_plan(),
            sources,
            Arc::new(MemoryCatalog::new()),
            sink,
            OutputMode::Complete,
            backend,
            MicroBatchConfig::default(),
        )
        .err()
        .expect("corrupt committed record must fail recovery");
        assert_eq!(err.category(), "corruption");
    }

    #[test]
    fn missing_source_binding_is_rejected() {
        let sink = MemorySink::new("out");
        let r = MicroBatchExecution::new(
            "q",
            &count_plan(),
            HashMap::new(),
            Arc::new(MemoryCatalog::new()),
            sink,
            OutputMode::Complete,
            Arc::new(MemoryBackend::new()),
            MicroBatchConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn invalid_output_mode_rejected_at_start() {
        let src = gen_source(1);
        let sink = MemorySink::new("out");
        let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
        sources.insert("events".into(), src);
        let r = MicroBatchExecution::new(
            "q",
            &count_plan(),
            sources,
            Arc::new(MemoryCatalog::new()),
            sink,
            OutputMode::Append, // count-by-country can't append (§4.2)
            Arc::new(MemoryBackend::new()),
            MicroBatchConfig::default(),
        );
        assert!(r.is_err());
    }
}
