//! Fair multi-tenant scheduling over one shared [`WorkerPool`].
//!
//! A multi-query deployment submits every query's epoch work to one
//! pool. Two policies keep a heavy tenant from starving the rest:
//!
//! * **Deficit round-robin** ([`FairPool`]): each tenant owns a FIFO
//!   of costed jobs; every scheduling round credits each backlogged
//!   tenant `quantum × weight` deficit and dispatches jobs while their
//!   cost fits the accumulated deficit. A tenant whose single job
//!   costs more than one quantum accumulates credit across rounds, so
//!   nothing starves — classic DRR, with dispatch order fully
//!   determined by (registration order, enqueue order), so runs are
//!   byte-identical.
//! * **Admission budgets** ([`AdmissionBudget`]): a token bucket in
//!   row units, refilled per scheduling tick, that the multi-query
//!   driver charges with each epoch's actually-admitted rows. When a
//!   tenant overdraws, its queries skip ticks until the refill clears
//!   the debt — generalizing the single-query PID admission controller
//!   to a per-tenant budget.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::WorkerPool;
use ss_common::Result;

/// One unit of schedulable work: runs on a pool worker, returns the
/// rows it processed (informational; DRR charges the *estimated* cost
/// supplied at enqueue).
pub type FairJob = Box<dyn FnOnce() -> Result<u64> + Send>;

struct QueuedJob {
    cost: u64,
    job: FairJob,
}

struct TenantState {
    weight: u64,
    deficit: u64,
    queue: VecDeque<QueuedJob>,
}

struct FairState {
    tenants: BTreeMap<String, TenantState>,
    /// DRR visit order: registration order, rotated by `cursor` so no
    /// tenant is permanently first.
    rotation: Vec<String>,
    cursor: usize,
}

/// What one scheduling round dispatched, in dispatch order.
#[derive(Debug)]
pub struct RoundReport {
    /// `(tenant, rows)` per job run, in the deterministic DRR order.
    pub ran: Vec<(String, u64)>,
    /// Jobs still queued after the round (their cost exceeded the
    /// accumulated deficit).
    pub deferred: usize,
}

/// Deficit-round-robin dispatcher over a shared worker pool.
pub struct FairPool {
    pool: WorkerPool,
    quantum: u64,
    state: Mutex<FairState>,
}

impl FairPool {
    /// `workers` pool threads; `quantum` is the per-round deficit
    /// credit (in the same cost units jobs are enqueued with).
    pub fn new(workers: usize, quantum: u64) -> FairPool {
        FairPool {
            pool: WorkerPool::new(workers.max(1), None, None),
            quantum: quantum.max(1),
            state: Mutex::new(FairState {
                tenants: BTreeMap::new(),
                rotation: Vec::new(),
                cursor: 0,
            }),
        }
    }

    /// Register a tenant with a relative weight (≥ 1). Idempotent.
    pub fn register_tenant(&self, tenant: &str, weight: u64) {
        let mut st = self.state.lock().unwrap();
        if !st.tenants.contains_key(tenant) {
            st.rotation.push(tenant.to_string());
            st.tenants.insert(
                tenant.to_string(),
                TenantState {
                    weight: weight.max(1),
                    deficit: 0,
                    queue: VecDeque::new(),
                },
            );
        }
    }

    /// Queue one costed job for `tenant` (auto-registers at weight 1).
    pub fn enqueue(&self, tenant: &str, cost: u64, job: FairJob) {
        self.register_tenant(tenant, 1);
        let mut st = self.state.lock().unwrap();
        st.tenants
            .get_mut(tenant)
            .expect("registered above")
            .queue
            .push_back(QueuedJob { cost, job });
    }

    /// Jobs currently queued across all tenants.
    pub fn queued(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Run one DRR round: credit each backlogged tenant one quantum
    /// (scaled by weight), dispatch every job whose cost fits, and run
    /// the dispatched jobs on the shared pool. Results come back in
    /// dispatch order; a failing job fails the round (lowest dispatch
    /// index wins, inherited from [`WorkerPool::scatter`]).
    pub fn run_round(&self) -> Result<RoundReport> {
        let (order, jobs, deferred) = {
            let mut st = self.state.lock().unwrap();
            let mut order: Vec<String> = Vec::new();
            let mut jobs: Vec<FairJob> = Vec::new();
            let n = st.rotation.len();
            let start = if n == 0 { 0 } else { st.cursor % n };
            for i in 0..n {
                let name = st.rotation[(start + i) % n].clone();
                let quantum = self.quantum;
                let t = st.tenants.get_mut(&name).expect("rotation entry");
                if t.queue.is_empty() {
                    // An idle tenant banks nothing: DRR resets credit
                    // so a returning tenant cannot burst past others.
                    t.deficit = 0;
                    continue;
                }
                t.deficit = t.deficit.saturating_add(quantum.saturating_mul(t.weight));
                while let Some(front) = t.queue.front() {
                    if front.cost > t.deficit {
                        break;
                    }
                    let q = t.queue.pop_front().expect("front exists");
                    t.deficit -= q.cost;
                    order.push(name.clone());
                    jobs.push(q.job);
                }
            }
            if n > 0 {
                st.cursor = (start + 1) % n;
            }
            let deferred = st.tenants.values().map(|t| t.queue.len()).sum();
            (order, jobs, deferred)
        };
        if jobs.is_empty() {
            return Ok(RoundReport {
                ran: Vec::new(),
                deferred,
            });
        }
        let tasks: Vec<Box<dyn FnOnce() -> Result<u64> + Send>> = jobs;
        let result = self.pool.scatter("fair-round", tasks)?;
        Ok(RoundReport {
            ran: order.into_iter().zip(result.results).collect(),
            deferred,
        })
    }
}

/// A per-tenant admission budget: a token bucket in row units. The
/// driver calls [`AdmissionBudget::tick`] once per scheduling tick,
/// checks [`AdmissionBudget::admissible`] before running a tenant's
/// epoch, and [`AdmissionBudget::charge`]s the rows the epoch actually
/// admitted afterwards — overdraft is allowed (an epoch's size is only
/// known after it runs) and carries as debt into future ticks.
#[derive(Debug, Clone)]
pub struct AdmissionBudget {
    /// Rows credited per tick.
    refill: u64,
    /// Ceiling on banked credit (burst bound).
    capacity: u64,
    /// Current balance; negative = debt from an overdrafted epoch.
    tokens: i64,
}

impl AdmissionBudget {
    pub fn new(rows_per_tick: u64, burst_capacity: u64) -> AdmissionBudget {
        let capacity = burst_capacity.max(rows_per_tick).max(1);
        AdmissionBudget {
            refill: rows_per_tick,
            capacity,
            tokens: capacity as i64,
        }
    }

    /// Credit one tick's refill, capped at the burst capacity.
    pub fn tick(&mut self) {
        self.tokens = (self.tokens + self.refill as i64).min(self.capacity as i64);
    }

    /// May this tenant run an epoch now? (Positive balance; debt from
    /// a previous overdraft must drain first.)
    pub fn admissible(&self) -> bool {
        self.tokens > 0
    }

    /// Charge rows actually admitted (post-hoc; may overdraw).
    pub fn charge(&mut self, rows: u64) {
        self.tokens -= rows as i64;
    }

    /// Current balance (negative = debt).
    pub fn balance(&self) -> i64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn drr_interleaves_tenants_by_weight() {
        let pool = FairPool::new(2, 10);
        pool.register_tenant("a", 1);
        pool.register_tenant("b", 1);
        // a has lots of cheap jobs, b a few: every round must serve b
        // before a's backlog drains — no starvation.
        for _ in 0..6 {
            pool.enqueue("a", 10, Box::new(|| Ok(1)));
        }
        for _ in 0..3 {
            pool.enqueue("b", 10, Box::new(|| Ok(2)));
        }
        let mut served_b_round = Vec::new();
        for round in 0..6 {
            let report = pool.run_round().unwrap();
            if report.ran.iter().any(|(t, _)| t == "b") {
                served_b_round.push(round);
            }
            if pool.queued() == 0 {
                break;
            }
        }
        // b is served in each of the first three rounds, alongside a.
        assert_eq!(served_b_round, vec![0, 1, 2]);
    }

    #[test]
    fn oversized_job_accumulates_deficit_and_eventually_runs() {
        let pool = FairPool::new(1, 5);
        pool.enqueue("big", 12, Box::new(|| Ok(99)));
        // Rounds 1 and 2 defer (deficit 5, then 10); round 3 runs it.
        assert!(pool.run_round().unwrap().ran.is_empty());
        assert!(pool.run_round().unwrap().ran.is_empty());
        let r3 = pool.run_round().unwrap();
        assert_eq!(r3.ran, vec![("big".to_string(), 99)]);
    }

    #[test]
    fn dispatch_order_is_deterministic() {
        let run = || {
            let pool = FairPool::new(4, 100);
            let counter = Arc::new(AtomicU64::new(0));
            for t in ["t1", "t2", "t3"] {
                for i in 0..4u64 {
                    let c = counter.clone();
                    pool.enqueue(
                        t,
                        1 + i,
                        Box::new(move || {
                            c.fetch_add(1, Ordering::SeqCst);
                            Ok(i)
                        }),
                    );
                }
            }
            let mut order = Vec::new();
            while pool.queued() > 0 {
                order.extend(pool.run_round().unwrap().ran);
            }
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn weights_scale_per_round_throughput() {
        let pool = FairPool::new(2, 10);
        pool.register_tenant("heavy", 3);
        pool.register_tenant("light", 1);
        for _ in 0..10 {
            pool.enqueue("heavy", 10, Box::new(|| Ok(0)));
            pool.enqueue("light", 10, Box::new(|| Ok(0)));
        }
        let r = pool.run_round().unwrap();
        let heavy = r.ran.iter().filter(|(t, _)| t == "heavy").count();
        let light = r.ran.iter().filter(|(t, _)| t == "light").count();
        assert_eq!(heavy, 3);
        assert_eq!(light, 1);
    }

    #[test]
    fn idle_tenants_do_not_bank_credit() {
        let pool = FairPool::new(1, 10);
        pool.register_tenant("idle", 1);
        pool.register_tenant("busy", 1);
        for _ in 0..3 {
            pool.enqueue("busy", 10, Box::new(|| Ok(0)));
            let _ = pool.run_round().unwrap();
        }
        // After idling 3 rounds, a burst from `idle` still only gets
        // one quantum's worth in the next round.
        for _ in 0..5 {
            pool.enqueue("idle", 10, Box::new(|| Ok(0)));
        }
        let r = pool.run_round().unwrap();
        assert_eq!(r.ran.len(), 1);
    }

    #[test]
    fn admission_budget_tick_charge_and_debt() {
        let mut b = AdmissionBudget::new(100, 200);
        assert!(b.admissible());
        b.charge(350); // epoch turned out larger than the balance
        assert!(!b.admissible());
        assert_eq!(b.balance(), -150);
        b.tick();
        assert!(!b.admissible()); // still in debt
        b.tick();
        assert!(b.admissible()); // refills cleared the debt
        assert_eq!(b.balance(), 50);
        // Banked credit is capped at the burst capacity.
        for _ in 0..10 {
            b.tick();
        }
        assert_eq!(b.balance(), 200);
    }
}
