//! # ss-sched — data-parallel task scheduler
//!
//! A fixed-size worker pool that runs an epoch's per-partition tasks in
//! parallel, in the role Spark's task scheduler plays for the paper's
//! engine (§4.2): each microbatch compiles to *stages* of independent
//! tasks, a shuffle exchange moves rows between stages by key, and the
//! results are collected so downstream code observes a deterministic
//! order no matter how the OS interleaved the workers.
//!
//! The pool itself is deliberately small and policy-free:
//!
//! * [`WorkerPool::scatter`] fans a vector of closures out to the
//!   workers and gathers their results **in task-index order** — the
//!   caller's submission order fully determines the observed order, so
//!   merges built on top of it stay byte-identical run to run.
//! * Task panics are caught on the worker, shipped back, and re-raised
//!   on the *calling* thread only after every task has finished, so a
//!   crashing task never leaves the pool holding half an epoch. When
//!   several tasks fail, the lowest-index failure wins — again for
//!   determinism under chaos schedules.
//! * Per-task metrics (`ss_task_duration_us` histogram per stage,
//!   `ss_task_queue_wait_us` gauge) and a trace span per task make the
//!   parallel schedule observable with the same tooling as the rest of
//!   the engine.
//!
//! What runs *inside* the tasks — operator kernels, shuffle bucketing,
//! sharded state updates — lives in `ss-core::parallel`; this crate
//! only promises "run these, give them back in order, lose nothing."

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ss_common::clock::{system_clock, ClockRef};
use ss_common::metrics::MetricsRegistry;
use ss_common::profile::TaskSkew;
use ss_common::trace::TraceLog;
use ss_common::{Result, SsError};

pub mod fair;

pub use fair::{AdmissionBudget, FairPool, RoundReport};

/// Fail points inside worker tasks, used by the chaos suite to crash
/// parallel schedules mid-flight (see `ss_common::fault`).
pub mod failpoints {
    /// Fires at the start of every scheduled task body.
    pub const TASK_RUN: &str = "sched.task.run";
    /// Fires while a map task writes rows into shuffle buckets.
    pub const SHUFFLE_WRITE: &str = "sched.shuffle.write";
    /// Fires at the start of a task body with `FaultMode::Hang` to
    /// simulate a task that never returns (watchdog chaos suite).
    pub const TASK_HANG: &str = "sched.task.hang";
}

/// How often `gather` wakes to check its deadlines while waiting for
/// task reports.
const GATHER_POLL: Duration = Duration::from_millis(2);

/// A unit of work scheduled onto the pool: run on a worker thread,
/// result delivered back through a channel.
type Job = Box<dyn FnOnce() + Send>;

/// Aggregate timing facts from one [`WorkerPool::scatter`] call,
/// surfaced on `QueryProgress` when running parallel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScatterStats {
    /// Number of tasks launched.
    pub tasks: u64,
    /// Wall-clock duration of the slowest task, in microseconds.
    pub max_task_duration_us: u64,
    /// Longest time any task sat queued before a worker picked it up.
    pub max_queue_wait_us: u64,
    /// Raw wall-clock duration of every task, in completion order. The
    /// profiler summarizes these into min/p50/p99/max skew stats.
    pub task_durations_us: Vec<u64>,
}

impl ScatterStats {
    /// Fold another scatter's stats into this one (an epoch runs
    /// several stages; progress reports the epoch-wide totals).
    pub fn absorb(&mut self, other: ScatterStats) {
        self.tasks += other.tasks;
        self.max_task_duration_us = self.max_task_duration_us.max(other.max_task_duration_us);
        self.max_queue_wait_us = self.max_queue_wait_us.max(other.max_queue_wait_us);
        self.task_durations_us.extend(other.task_durations_us);
    }

    /// Per-task skew summary (min/p50/p99/max); `None` when no tasks
    /// ran.
    pub fn skew(&self) -> Option<TaskSkew> {
        TaskSkew::from_durations(&self.task_durations_us)
    }
}

/// Results of a scatter: per-task outputs in task-index order.
#[derive(Debug)]
pub struct ScatterResult<R> {
    pub results: Vec<R>,
    pub stats: ScatterStats,
}

enum TaskOutcome<R> {
    Ok(R),
    Err(SsError),
    Panic(Box<dyn std::any::Any + Send>),
}

struct TaskReport<R> {
    index: usize,
    outcome: TaskOutcome<R>,
    queue_wait_us: u64,
    duration_us: u64,
}

/// The replaceable part of the pool: the job queue and the worker
/// generation currently serving it. Swapped wholesale when a hard
/// deadline abandons a stuck worker.
struct PoolCore {
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// A fixed-size pool of persistent worker threads.
///
/// Workers are spawned once (per query) and fed through a shared queue;
/// dropping the pool closes the queue and joins every worker.
///
/// Deadlines (both off by default, see [`with_deadlines`]):
/// * **soft** — a stage running past it is noted once as a straggler
///   (`ss_task_deadline_exceeded_total{kind="soft"}` + a trace mark)
///   but keeps running;
/// * **hard** — the stage fails with a transient [`SsError::Timeout`].
///   The stuck worker cannot be killed, so it is *abandoned*: the whole
///   worker generation is detached and a fresh one spawned, leaving the
///   pool immediately usable. Idle abandoned workers exit on their own
///   (their queue is gone); the stuck one leaks until whatever wedged
///   it returns.
///
/// [`with_deadlines`]: WorkerPool::with_deadlines
pub struct WorkerPool {
    size: usize,
    core: Mutex<PoolCore>,
    metrics: Option<MetricsRegistry>,
    trace: Option<TraceLog>,
    soft_deadline: Option<Duration>,
    hard_deadline: Option<Duration>,
    /// The clock stage deadlines are measured on. Virtual under
    /// simulation, so a hung stage's hard deadline fires in virtual
    /// time instead of stalling the suite.
    clock: ClockRef,
}

impl WorkerPool {
    /// Spawn `size` worker threads (clamped to at least 1).
    pub fn new(size: usize, metrics: Option<MetricsRegistry>, trace: Option<TraceLog>) -> WorkerPool {
        let size = size.max(1);
        let (tx, workers) = Self::spawn_workers(size);
        if let Some(m) = &metrics {
            m.describe(
                "ss_task_duration_us",
                "Wall-clock duration of scheduled per-partition tasks",
            );
            m.describe(
                "ss_task_queue_wait_us",
                "Longest queue wait of any task in the most recent stage",
            );
            m.describe(
                "ss_task_deadline_exceeded_total",
                "Stages that overran a task deadline, by kind (soft|hard)",
            );
        }
        WorkerPool {
            size,
            core: Mutex::new(PoolCore { queue: Some(tx), workers }),
            metrics,
            trace,
            soft_deadline: None,
            hard_deadline: None,
            clock: system_clock(),
        }
    }

    /// Set the per-stage straggler (`soft`) and abandonment (`hard`)
    /// deadlines; `None` disables either.
    pub fn with_deadlines(
        mut self,
        soft: Option<Duration>,
        hard: Option<Duration>,
    ) -> WorkerPool {
        self.soft_deadline = soft;
        self.hard_deadline = hard;
        self
    }

    /// Measure stage deadlines on `clock` instead of the system clock.
    pub fn with_clock(mut self, clock: ClockRef) -> WorkerPool {
        self.clock = clock;
        self
    }

    fn spawn_workers(size: usize) -> (Sender<Job>, Vec<JoinHandle<()>>) {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("ss-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        (tx, workers)
    }

    /// Abandon the current worker generation (one of them is stuck) and
    /// spawn a fresh one so the pool stays usable. The old handles are
    /// detached, not joined — joining would block on the stuck worker;
    /// the healthy ones exit as soon as they see their queue is gone.
    fn replenish(&self) {
        let mut core = self.core.lock().unwrap_or_else(|p| p.into_inner());
        core.queue = None;
        core.workers.clear();
        let (tx, workers) = Self::spawn_workers(self.size);
        core.queue = Some(tx);
        core.workers = workers;
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `tasks` on the pool and return their results **in task-index
    /// order**, together with timing stats.
    ///
    /// All tasks are always driven to completion before this returns,
    /// even when some fail: a task owns state moved into its closure,
    /// and abandoning in-flight siblings would tear the epoch. Failure
    /// resolution is deterministic — if any task panicked, the panic of
    /// the lowest-index panicking task is re-raised here; otherwise if
    /// any task errored, the lowest-index error is returned.
    pub fn scatter<R: Send + 'static>(
        &self,
        stage: &str,
        tasks: Vec<Box<dyn FnOnce() -> Result<R> + Send>>,
    ) -> Result<ScatterResult<R>> {
        let n = tasks.len();
        if n == 0 {
            return Ok(ScatterResult { results: Vec::new(), stats: ScatterStats::default() });
        }
        let queue = {
            let core = self.core.lock().unwrap_or_else(|p| p.into_inner());
            core.queue.clone().expect("pool is live until dropped")
        };
        let (report_tx, report_rx) = channel::<TaskReport<R>>();
        let hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("ss_task_duration_us", &[("stage", stage)]));
        for (index, task) in tasks.into_iter().enumerate() {
            let report_tx = report_tx.clone();
            let hist = hist.clone();
            let trace = self.trace.clone();
            let stage = stage.to_string();
            let enqueued = Instant::now();
            // Under a virtual clock the task must count as runnable
            // from enqueue to completion, or the simulation would
            // fast-forward past deadlines while the task computes: the
            // pin covers the queue wait, the scope covers execution.
            let clock = self.clock.clone();
            let pin = self.clock.pin();
            let job: Job = Box::new(move || {
                let _scope = clock.enter_scope();
                drop(pin);
                let queue_wait_us = enqueued.elapsed().as_micros() as u64;
                let span = trace.as_ref().map(|t| {
                    t.span(
                        &format!("task:{stage}"),
                        &[("task", index.to_string().as_str())],
                    )
                });
                let started = Instant::now();
                let outcome = match panic::catch_unwind(AssertUnwindSafe(task)) {
                    Ok(Ok(r)) => TaskOutcome::Ok(r),
                    Ok(Err(e)) => TaskOutcome::Err(e),
                    Err(payload) => TaskOutcome::Panic(payload),
                };
                let duration_us = started.elapsed().as_micros() as u64;
                drop(span);
                if let Some(h) = &hist {
                    h.observe(duration_us);
                }
                // The receiver only disappears if the scattering thread
                // itself died; nothing left to report to.
                let _ = report_tx.send(TaskReport { index, outcome, queue_wait_us, duration_us });
            });
            queue
                .send(job)
                .map_err(|_| SsError::Internal("worker pool queue closed".into()))?;
        }
        drop(report_tx);
        self.gather(n, &report_rx, stage)
    }

    fn gather<R>(
        &self,
        n: usize,
        report_rx: &Receiver<TaskReport<R>>,
        stage: &str,
    ) -> Result<ScatterResult<R>> {
        let mut slots: Vec<Option<TaskOutcome<R>>> = (0..n).map(|_| None).collect();
        let mut stats = ScatterStats { tasks: n as u64, ..ScatterStats::default() };
        let started_us = self.clock.monotonic_us();
        let mut soft_noted = false;
        for done in 0..n {
            let report = loop {
                // Under a virtual clock the channel timeout cannot see
                // virtual time, so poll with a clock sleep instead —
                // the sleep is what lets a simulated stage deadline
                // advance and fire.
                let next = if self.clock.is_virtual() {
                    match report_rx.try_recv() {
                        Ok(report) => Some(report),
                        Err(TryRecvError::Disconnected) => {
                            return Err(SsError::Internal(format!(
                                "worker pool lost a task report in stage {stage}"
                            )))
                        }
                        Err(TryRecvError::Empty) => {
                            self.clock.sleep(GATHER_POLL);
                            None
                        }
                    }
                } else {
                    match report_rx.recv_timeout(GATHER_POLL) {
                        Ok(report) => Some(report),
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(SsError::Internal(format!(
                                "worker pool lost a task report in stage {stage}"
                            )))
                        }
                        Err(RecvTimeoutError::Timeout) => None,
                    }
                };
                match next {
                    Some(report) => break report,
                    None => {
                        let elapsed = Duration::from_micros(
                            self.clock.monotonic_us().saturating_sub(started_us),
                        );
                        if !soft_noted
                            && self.soft_deadline.is_some_and(|soft| elapsed >= soft)
                        {
                            soft_noted = true;
                            self.note_deadline(stage, "soft");
                        }
                        if self.hard_deadline.is_some_and(|hard| elapsed >= hard) {
                            self.note_deadline(stage, "hard");
                            self.replenish();
                            return Err(SsError::Timeout(format!(
                                "stage {stage}: {} of {n} task(s) still running after \
                                 hard deadline of {:?}; stuck worker abandoned",
                                n - done,
                                self.hard_deadline.expect("checked above"),
                            )));
                        }
                    }
                }
            };
            stats.max_task_duration_us = stats.max_task_duration_us.max(report.duration_us);
            stats.max_queue_wait_us = stats.max_queue_wait_us.max(report.queue_wait_us);
            stats.task_durations_us.push(report.duration_us);
            slots[report.index] = Some(report.outcome);
        }
        if let Some(m) = &self.metrics {
            m.gauge("ss_task_queue_wait_us", &[("stage", stage)])
                .set(stats.max_queue_wait_us as i64);
        }
        // Every task has finished; resolve failures deterministically.
        let mut first_err: Option<SsError> = None;
        let mut results = Vec::with_capacity(n);
        for slot in slots {
            match slot.expect("every index reported exactly once") {
                TaskOutcome::Panic(payload) => panic::resume_unwind(payload),
                TaskOutcome::Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                TaskOutcome::Ok(r) => results.push(r),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(ScatterResult { results, stats }),
        }
    }

    /// Record a deadline crossing: metric counter plus a zero-duration
    /// trace mark so the schedule shows *when* the straggler was noted.
    fn note_deadline(&self, stage: &str, kind: &str) {
        if let Some(m) = &self.metrics {
            m.counter(
                "ss_task_deadline_exceeded_total",
                &[("stage", stage), ("kind", kind)],
            )
            .inc();
        }
        if let Some(t) = &self.trace {
            drop(t.span(&format!("deadline-{kind}:{stage}"), &[("kind", kind)]));
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => break, // queue closed: pool dropped
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut core = self.core.lock().unwrap_or_else(|p| p.into_inner());
        drop(core.queue.take()); // close the queue so workers exit
        for w in core.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<R: Send + 'static>(
        f: impl FnOnce() -> Result<R> + Send + 'static,
    ) -> Box<dyn FnOnce() -> Result<R> + Send> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_task_index_order() {
        let pool = WorkerPool::new(4, None, None);
        for _ in 0..20 {
            let tasks: Vec<_> = (0..16u64)
                .map(|i| {
                    boxed(move || {
                        // Stagger completion so out-of-order finish is likely.
                        std::thread::sleep(std::time::Duration::from_micros(
                            (16 - i) * 50,
                        ));
                        Ok(i * 10)
                    })
                })
                .collect();
            let out = pool.scatter("test", tasks).unwrap();
            assert_eq!(out.results, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
            assert_eq!(out.stats.tasks, 16);
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let pool = WorkerPool::new(4, None, None);
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                boxed(move || -> Result<()> {
                    if i >= 3 {
                        Err(SsError::Execution(format!("task {i} failed")))
                    } else {
                        Ok(())
                    }
                })
            })
            .collect();
        let err = pool.scatter("test", tasks).unwrap_err();
        assert!(matches!(&err, SsError::Execution(m) if m == "task 3 failed"), "{err:?}");
    }

    #[test]
    fn all_tasks_run_even_when_one_errors() {
        let pool = WorkerPool::new(2, None, None);
        let ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..6)
            .map(|i| {
                let ran = Arc::clone(&ran);
                boxed(move || -> Result<()> {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        Err(SsError::Execution("boom".into()))
                    } else {
                        Ok(())
                    }
                })
            })
            .collect();
        assert!(pool.scatter("test", tasks).is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(2, None, None);
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                boxed(move || -> Result<()> {
                    if i == 2 {
                        panic!("injected task panic");
                    }
                    Ok(())
                })
            })
            .collect();
        let caught =
            panic::catch_unwind(AssertUnwindSafe(|| pool.scatter("test", tasks).map(|_| ())));
        let payload = caught.expect_err("scatter should re-raise the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "injected task panic");
        // Pool must still be usable after a panic.
        let out = pool
            .scatter("test", vec![boxed(|| Ok(7u64))])
            .unwrap();
        assert_eq!(out.results, vec![7]);
    }

    #[test]
    fn empty_scatter_is_a_noop() {
        let pool = WorkerPool::new(2, None, None);
        let out = pool
            .scatter("test", Vec::<Box<dyn FnOnce() -> Result<u64> + Send>>::new())
            .unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats, ScatterStats::default());
    }

    #[test]
    fn metrics_record_task_durations() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(2, Some(registry.clone()), None);
        let tasks: Vec<_> = (0..5).map(|i| boxed(move || Ok(i))).collect();
        pool.scatter("map", tasks).unwrap();
        let hist = registry.histogram("ss_task_duration_us", &[("stage", "map")]);
        assert_eq!(hist.count(), 5);
    }

    #[test]
    fn soft_deadline_notes_straggler_without_failing() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(2, Some(registry.clone()), None)
            .with_deadlines(Some(Duration::from_millis(10)), None);
        let tasks: Vec<_> = (0..2u64)
            .map(|i| {
                boxed(move || {
                    std::thread::sleep(Duration::from_millis(30 * i));
                    Ok(i)
                })
            })
            .collect();
        let out = pool.scatter("slow", tasks).unwrap();
        assert_eq!(out.results, vec![0, 1]);
        let soft = registry.counter(
            "ss_task_deadline_exceeded_total",
            &[("stage", "slow"), ("kind", "soft")],
        );
        assert_eq!(soft.get(), 1, "straggler noted exactly once");
    }

    #[test]
    fn hard_deadline_abandons_stuck_worker_and_replenishes() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(2, Some(registry.clone()), None)
            .with_deadlines(None, Some(Duration::from_millis(50)));
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stuck = Arc::clone(&release);
        let started = Instant::now();
        let tasks: Vec<Box<dyn FnOnce() -> Result<u64> + Send>> = vec![
            boxed(move || {
                // Simulates a wedged task: spins until released at the
                // end of the test (never within the deadline).
                while !stuck.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(1)
            }),
            boxed(|| Ok(2)),
        ];
        let err = pool.scatter("wedge", tasks).unwrap_err();
        assert!(matches!(err, SsError::Timeout(_)), "{err:?}");
        assert!(err.is_transient(), "hard-deadline failures are retryable");
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "must fail near the deadline, not hang"
        );
        let hard = registry.counter(
            "ss_task_deadline_exceeded_total",
            &[("stage", "wedge"), ("kind", "hard")],
        );
        assert_eq!(hard.get(), 1);
        // The pool replenished: immediately usable at full size.
        let out = pool
            .scatter("after", (0..4u64).map(|i| boxed(move || Ok(i))).collect())
            .unwrap();
        assert_eq!(out.results, vec![0, 1, 2, 3]);
        release.store(true, Ordering::SeqCst); // let the stuck thread die
    }

    #[test]
    fn hard_deadline_fires_on_virtual_time() {
        // A 60s hard deadline measured on a SimClock: the wedge is
        // simulated (the task stalls on the virtual clock, as injected
        // Hang faults do), so the deadline passes in milliseconds of
        // wall time and the worker is abandoned without really waiting.
        // Tasks register as simulation participants while they run, so
        // virtual time only moves through their own clock calls.
        let sim = ss_common::clock::SimClock::new(0);
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(2, Some(registry.clone()), None)
            .with_deadlines(Some(Duration::from_secs(10)), Some(Duration::from_secs(60)))
            .with_clock(sim.handle());
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stuck = Arc::clone(&release);
        let task_clock = sim.handle();
        let wall = Instant::now();
        let tasks: Vec<Box<dyn FnOnce() -> Result<u64> + Send>> = vec![boxed(move || {
            while !stuck.load(Ordering::SeqCst) {
                task_clock.sleep(Duration::from_millis(5));
            }
            Ok(1)
        })];
        let err = pool.scatter("virtual-wedge", tasks).unwrap_err();
        assert!(matches!(err, SsError::Timeout(_)), "{err:?}");
        assert!(
            wall.elapsed() < Duration::from_secs(30),
            "a 60s virtual deadline must not take 60s of wall time"
        );
        let soft = registry.counter(
            "ss_task_deadline_exceeded_total",
            &[("stage", "virtual-wedge"), ("kind", "soft")],
        );
        assert_eq!(soft.get(), 1, "the 10s soft deadline fired on the way");
        release.store(true, Ordering::SeqCst);
    }

    #[test]
    fn stats_absorb_takes_max_and_sums_tasks() {
        let mut a = ScatterStats {
            tasks: 2,
            max_task_duration_us: 10,
            max_queue_wait_us: 3,
            task_durations_us: vec![4, 10],
        };
        a.absorb(ScatterStats {
            tasks: 3,
            max_task_duration_us: 7,
            max_queue_wait_us: 9,
            task_durations_us: vec![7, 2, 1],
        });
        assert_eq!(
            a,
            ScatterStats {
                tasks: 5,
                max_task_duration_us: 10,
                max_queue_wait_us: 9,
                task_durations_us: vec![4, 10, 7, 2, 1],
            }
        );
    }

    #[test]
    fn scatter_collects_per_task_durations_for_skew() {
        let pool = WorkerPool::new(4, None, None);
        let tasks: Vec<_> = (0..8u64)
            .map(|i| {
                boxed(move || {
                    std::thread::sleep(std::time::Duration::from_micros(i * 100));
                    Ok(i)
                })
            })
            .collect();
        let out = pool.scatter("test", tasks).unwrap();
        assert_eq!(out.stats.task_durations_us.len(), 8);
        let skew = out.stats.skew().expect("skew stats for 8 tasks");
        assert_eq!(skew.tasks, 8);
        assert!(skew.min_us <= skew.p50_us);
        assert!(skew.p50_us <= skew.p99_us);
        assert!(skew.p99_us <= skew.max_us);
        assert_eq!(skew.max_us, out.stats.max_task_duration_us);
    }
}
