//! Per-query output taps over one shared execution.
//!
//! A sharing group runs ONE [`ss_core::MicroBatchExecution`] whose sink
//! is a [`FanoutSink`]. Each subscribed query owns a **tap**: its real
//! sink plus the stateless suffix ([`ss_plan::SuffixOp`]) its plan
//! carries above the shared stateful prefix. Every epoch the engine
//! commits once into the fan-out, which applies each tap's suffix to
//! the shared output and commits the result to that query's sink —
//! so N queries cost one incremental update plus N cheap, stateless
//! post-processing passes.
//!
//! Taps can be attached and detached while the group runs (a query
//! joining or leaving the share); detachment takes effect at the next
//! epoch boundary. Idempotence is inherited: the fan-out replays a
//! whole epoch into every tap, and every underlying sink is required
//! to be idempotent per epoch already.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ss_bus::{EpochOutput, Sink};
use ss_common::{RecordBatch, Result, SsError};
use ss_exec::MemoryCatalog;
use ss_plan::{LogicalPlan, SuffixOp};

/// The table name a tap's suffix plan scans — bound per epoch to the
/// shared prefix output.
const SHARED_SCAN: &str = "__shared_prefix";

struct Tap {
    query: String,
    suffix: Vec<SuffixOp>,
    sink: Arc<dyn Sink>,
}

/// A [`Sink`] that fans one epoch's output to every subscribed query,
/// applying each query's stateless suffix on the way.
pub struct FanoutSink {
    name: String,
    taps: Mutex<Vec<Tap>>,
    /// Rows delivered across all taps (post-suffix).
    fanned_rows: AtomicU64,
    /// Epochs committed through the fan-out.
    epochs: AtomicU64,
}

impl FanoutSink {
    pub fn new(name: impl Into<String>) -> Arc<FanoutSink> {
        Arc::new(FanoutSink {
            name: name.into(),
            taps: Mutex::new(Vec::new()),
            fanned_rows: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
        })
    }

    /// Attach a query's tap. `suffix` must be empty unless the group
    /// runs in append or complete mode (checked by the engine, not
    /// here).
    pub fn attach(&self, query: impl Into<String>, suffix: Vec<SuffixOp>, sink: Arc<dyn Sink>) {
        self.taps.lock().push(Tap {
            query: query.into(),
            suffix,
            sink,
        });
    }

    /// Detach a query's tap; returns false if it was not attached.
    /// Takes effect at the next epoch boundary — an epoch currently
    /// committing still includes the tap it started with.
    pub fn detach(&self, query: &str) -> bool {
        let mut taps = self.taps.lock();
        let before = taps.len();
        taps.retain(|t| t.query != query);
        taps.len() != before
    }

    /// Names of currently attached queries, in attach order.
    pub fn attached(&self) -> Vec<String> {
        self.taps.lock().iter().map(|t| t.query.clone()).collect()
    }

    /// Epochs committed through this fan-out.
    pub fn epochs_committed(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }
}

/// Apply a stateless suffix to one epoch's shared output by running it
/// as a tiny batch plan over the batch.
pub(crate) fn apply_suffix(batch: &RecordBatch, suffix: &[SuffixOp]) -> Result<RecordBatch> {
    if suffix.is_empty() {
        return Ok(batch.clone());
    }
    let mut plan = Arc::new(LogicalPlan::Scan {
        name: SHARED_SCAN.into(),
        schema: batch.schema().clone(),
        streaming: false,
        projection: None,
    });
    for op in suffix {
        plan = Arc::new(match op {
            SuffixOp::Project(exprs) => LogicalPlan::Project {
                input: plan,
                exprs: exprs.clone(),
            },
            SuffixOp::Filter(predicate) => LogicalPlan::Filter {
                input: plan,
                predicate: predicate.clone(),
            },
        });
    }
    let analyzed = ss_plan::analyze(&plan)?;
    let mut catalog = MemoryCatalog::new();
    catalog.register(SHARED_SCAN, vec![batch.clone()]);
    ss_exec::execute(&analyzed, &catalog)
}

impl Sink for FanoutSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()> {
        let taps = self.taps.lock();
        for tap in taps.iter() {
            if tap.suffix.is_empty() {
                tap.sink.commit_epoch(epoch, output)?;
                self.fanned_rows
                    .fetch_add(output.num_rows() as u64, Ordering::Relaxed);
                continue;
            }
            // A suffix rewrites the row set, which is sound for append
            // output (each epoch's new rows) and complete output (the
            // whole result table) — but not update output, whose
            // upsert keys are positional in the pre-suffix schema (the
            // engine refuses such taps up front).
            let tapped = match output {
                EpochOutput::Append(batch) => {
                    EpochOutput::Append(apply_suffix(batch, &tap.suffix)?)
                }
                EpochOutput::Complete(batch) => {
                    EpochOutput::Complete(apply_suffix(batch, &tap.suffix)?)
                }
                EpochOutput::Update { .. } => {
                    return Err(SsError::Execution(format!(
                        "tap `{}` carries a stateless suffix but the group \
                         emits update output",
                        tap.query
                    )));
                }
            };
            self.fanned_rows
                .fetch_add(tapped.num_rows() as u64, Ordering::Relaxed);
            tap.sink.commit_epoch(epoch, &tapped)?;
        }
        self.epochs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn truncate_after(&self, epoch: u64) -> Result<()> {
        for tap in self.taps.lock().iter() {
            tap.sink.truncate_after(epoch)?;
        }
        Ok(())
    }

    fn rows_written(&self) -> u64 {
        self.fanned_rows.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_bus::MemorySink;
    use ss_common::{row, DataType, Field, Row, Schema};
    use ss_expr::{col, lit};

    fn batch(rows: &[Row]) -> RecordBatch {
        let schema = Schema::of(vec![
            Field::new("country", DataType::Utf8),
            Field::new("cnt", DataType::Int64),
        ]);
        RecordBatch::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn fanout_delivers_to_every_tap_with_suffixes() {
        let fan = FanoutSink::new("fan");
        let all = MemorySink::new("all");
        let ca = MemorySink::new("ca");
        fan.attach("q-all", vec![], all.clone());
        fan.attach(
            "q-ca",
            vec![SuffixOp::Filter(col("country").eq(lit("CA")))],
            ca.clone(),
        );
        let out = EpochOutput::Append(batch(&[row!["CA", 3i64], row!["US", 5i64]]));
        fan.commit_epoch(1, &out).unwrap();
        assert_eq!(all.snapshot().len(), 2);
        assert_eq!(ca.snapshot(), vec![row!["CA", 3i64]]);
        assert_eq!(fan.epochs_committed(), 1);
        assert_eq!(fan.rows_written(), 3);
    }

    #[test]
    fn detach_removes_only_the_named_tap() {
        let fan = FanoutSink::new("fan");
        let a = MemorySink::new("a");
        let b = MemorySink::new("b");
        fan.attach("qa", vec![], a.clone());
        fan.attach("qb", vec![], b.clone());
        assert!(fan.detach("qa"));
        assert!(!fan.detach("qa"));
        fan.commit_epoch(1, &EpochOutput::Append(batch(&[row!["CA", 1i64]])))
            .unwrap();
        assert_eq!(a.snapshot().len(), 0);
        assert_eq!(b.snapshot().len(), 1);
        assert_eq!(fan.attached(), vec!["qb".to_string()]);
    }

    #[test]
    fn suffix_on_update_output_is_an_error_but_complete_is_rewritten() {
        let fan = FanoutSink::new("fan");
        let sink = MemorySink::new("s");
        fan.attach(
            "q",
            vec![SuffixOp::Filter(col("country").eq(lit("CA")))],
            sink.clone(),
        );
        let upd = EpochOutput::Update {
            batch: batch(&[row!["CA", 1i64]]),
            key_cols: vec![0],
        };
        assert!(fan.commit_epoch(1, &upd).is_err());
        let out = EpochOutput::Complete(batch(&[row!["CA", 1i64], row!["US", 2i64]]));
        fan.commit_epoch(1, &out).unwrap();
        assert_eq!(sink.snapshot(), vec![row!["CA", 1i64]]);
    }

    #[test]
    fn suffix_project_reshapes_rows() {
        let b = batch(&[row!["CA", 3i64], row!["US", 5i64]]);
        let projected =
            apply_suffix(&b, &[SuffixOp::Project(vec![col("cnt")])]).unwrap();
        assert_eq!(projected.num_columns(), 1);
        assert_eq!(projected.num_rows(), 2);
    }
}
