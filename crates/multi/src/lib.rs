//! # ss-multi — multi-query execution
//!
//! The paper manages fleets of declarative queries
//! (`StreamingQueryManager`, §4.2); this crate makes a fleet *cheap*.
//! Three sharing layers sit over the single-query engine:
//!
//! 1. **Shared scans** — every sharing group reads its sources through
//!    one [`ss_bus::ScanCache`], so N groups over one topic cost one
//!    bus read per (source, offset-range) per epoch.
//! 2. **Shared operator state** — queries whose *stateful prefix* is
//!    structurally equal (canonical plan fingerprints) attach to one
//!    [`ss_core::MicroBatchExecution`]: one WAL, one state namespace,
//!    one incremental update per epoch, fanned to per-query output
//!    taps ([`FanoutSink`]) that apply each query's stateless
//!    `Project`/`Filter` suffix. Detaching a query snapshots the
//!    group's checkpoint for it (copy-on-detach).
//! 3. **Pooled scheduling** — groups' epochs run on one
//!    [`ss_sched::FairPool`] (deficit round-robin across tenants) with
//!    per-tenant admission budgets; a shared epoch's rows are billed
//!    to its tenants in equal shares.
//!
//! [`SqlService`] is the front end: a long-lived session layer that
//! turns `POST /sql` into a running, sharing query.

pub mod engine;
pub mod fanout;
pub mod service;

pub use engine::{
    DetachReport, MultiQueryConfig, MultiQueryEngine, QuerySpec, SharingStats, TickReport,
};
pub use fanout::FanoutSink;
pub use service::SqlService;
