//! The long-lived SQL service: a session layer over `ss-sql` + the
//! multi-query engine, mounted on the introspection HTTP server as an
//! [`HttpExtension`].
//!
//! | Endpoint | Effect |
//! |---|---|
//! | `POST /sql` | parse/plan/start a named streaming query (body: `{"name", "sql", "tenant"?, "mode"?}`) |
//! | `GET /sql/sessions` | JSON list of live sessions with their sharing group |
//! | `DELETE /query/<name>` | stop one query (copy-on-detach if it shared a group) |
//! | `GET /metrics` | all sessions' metrics, one exposition, `query` + `tenant` labels |
//!
//! This is the paper's "deploy a query with one call" surface: a
//! client POSTs SQL, the service resolves tables against the engine's
//! [`StreamingContext`], splits at the sharing boundary, and the query
//! starts sharing scans/state with structurally-equal peers
//! immediately. The service answers `/metrics` itself (extensions are
//! consulted before built-ins) so the merged exposition carries the
//! per-tenant labels.

use std::collections::HashMap;
use std::sync::Arc;

use ss_bus::MemorySink;
use ss_common::trace::escape_json;
use ss_common::{Result, SchemaRef};
use ss_core::{HttpExtension, HttpRequest};
use ss_plan::OutputMode;

use crate::engine::{MultiQueryEngine, QuerySpec};

/// The SQL session service. Mount with
/// `IntrospectServer::start_with(manager, bind, vec![service])`.
pub struct SqlService {
    engine: Arc<MultiQueryEngine>,
}

impl SqlService {
    pub fn new(engine: Arc<MultiQueryEngine>) -> Arc<SqlService> {
        Arc::new(SqlService { engine })
    }

    /// Parse + submit one SQL query; returns the sink it writes to.
    /// (`POST /sql` calls this; tests can call it directly.)
    pub fn start_sql(
        &self,
        name: &str,
        sql: &str,
        tenant: &str,
        mode: OutputMode,
    ) -> Result<Arc<MemorySink>> {
        let resolver: HashMap<String, (SchemaRef, bool)> = self
            .engine
            .context()
            .catalog_entries()
            .into_iter()
            .map(|(n, s, streaming)| (n, (s, streaming)))
            .collect();
        let plan = ss_sql::parse_query(sql, &resolver)?;
        let sink = MemorySink::new(format!("sql:{name}"));
        self.engine.submit(QuerySpec {
            name: name.to_string(),
            tenant: tenant.to_string(),
            plan,
            output_mode: mode,
            sink: sink.clone(),
        })?;
        Ok(sink)
    }

    fn handle_post_sql(&self, body: &str) -> (u16, &'static str, String) {
        let parsed: std::result::Result<serde_json::Value, _> = serde_json::from_str(body);
        let Ok(v) = parsed else {
            return error_response(400, "request body is not valid JSON");
        };
        let Some(name) = v.get("name").and_then(|n| n.as_str()) else {
            return error_response(400, "missing required field `name`");
        };
        let Some(sql) = v.get("sql").and_then(|s| s.as_str()) else {
            return error_response(400, "missing required field `sql`");
        };
        let tenant = v
            .get("tenant")
            .and_then(|t| t.as_str())
            .unwrap_or("default");
        let mode = match v.get("mode").and_then(|m| m.as_str()).unwrap_or("append") {
            "append" => OutputMode::Append,
            "update" => OutputMode::Update,
            "complete" => OutputMode::Complete,
            other => {
                return error_response(
                    400,
                    &format!("unknown output mode `{other}` (append|update|complete)"),
                )
            }
        };
        match self.start_sql(name, sql, tenant, mode) {
            Ok(_) => (
                200,
                "application/json",
                format!(
                    "{{\"started\":\"{}\",\"tenant\":\"{}\",\"mode\":\"{:?}\"}}",
                    escape_json(name),
                    escape_json(tenant),
                    mode
                ),
            ),
            Err(e) => error_response(400, &e.to_string()),
        }
    }

    fn sessions_body(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for (query, tenant, label, key, epoch, suffix) in self.engine.sessions() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"query\":\"{}\",\"tenant\":\"{}\",\"group\":\"{}\",\
                 \"sharing_key\":\"{}\",\"epoch\":{},\"shares_suffix\":{}}}",
                escape_json(&query),
                escape_json(&tenant),
                escape_json(&label),
                escape_json(&key),
                epoch,
                suffix
            ));
        }
        out.push(']');
        out
    }
}

fn error_response(status: u16, message: &str) -> (u16, &'static str, String) {
    (
        status,
        "application/json",
        format!("{{\"error\":\"{}\"}}", escape_json(message)),
    )
}

impl HttpExtension for SqlService {
    fn handle(&self, req: &HttpRequest) -> Option<(u16, &'static str, String)> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/sql") => Some(self.handle_post_sql(&req.body)),
            ("GET", "/sql/sessions") => {
                Some((200, "application/json", self.sessions_body()))
            }
            ("GET", "/metrics") => Some((
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                self.engine.metrics_exposition(),
            )),
            ("DELETE", path) => {
                let name = path.strip_prefix("/query/")?;
                Some(match self.engine.stop_query(name) {
                    Ok(report) => (
                        200,
                        "application/json",
                        format!(
                            "{{\"stopped\":\"{}\",\"group\":\"{}\",\
                             \"remaining\":{},\"state_copied\":{}}}",
                            escape_json(name),
                            escape_json(&report.group),
                            report.remaining,
                            report.checkpoint_copy.is_some()
                        ),
                    ),
                    Err(e) => error_response(404, &e.to_string()),
                })
            }
            _ => None,
        }
    }
}
