//! The multi-query engine: fingerprint-keyed sharing groups over one
//! scan cache and one fair scheduling pool.
//!
//! [`MultiQueryEngine::submit`] splits each query at its sharing
//! boundary ([`ss_plan::sharing_split`]): the **stateful prefix** keys
//! a *sharing group*, the stateless suffix becomes the query's private
//! output tap. Structurally-equal prefixes (canonical fingerprints, so
//! aliases/commutative order don't matter) land in ONE group running
//! ONE [`MicroBatchExecution`] — one source read, one WAL, one state
//! namespace, one incremental update per epoch — fanned to every
//! member through a [`crate::FanoutSink`].
//!
//! * **Shared scans**: every group's sources are wrapped in
//!   [`ss_bus::SharedScanSource`] over one engine-wide
//!   [`ss_bus::ScanCache`], so even *different* groups over the same
//!   topic cost one bus read per (source, offset-range) per epoch.
//! * **Pooled scheduling**: epochs are dispatched through one
//!   [`ss_sched::FairPool`] with deficit-round-robin fairness across
//!   tenants and per-tenant [`ss_sched::AdmissionBudget`]s; a group's
//!   admitted rows are charged to its subscribing tenants in equal
//!   shares (sharing splits the bill).
//! * **Copy-on-detach**: stopping a member of a still-populated group
//!   snapshots the group's checkpoint namespace into a private backend
//!   returned to the caller, so the departing query can restart
//!   isolated (e.g. after an upgrade away from the shared shape)
//!   without disturbing the survivors.
//!
//! Semantics note: a query attaching to a group that has already run
//! begins at the group's current position — it shares the stream only
//! going forward. Queries submitted before the first tick see exactly
//! what an isolated engine would (byte-identical sink contents).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ss_bus::{ScanCache, ScanCacheStats, SharedScanSource, Sink, Source};
use ss_common::metrics::render_merged_labeled;
use ss_common::{Result, SsError};
use ss_core::{MicroBatchExecution, StreamingContext};
use ss_core::prelude::MicroBatchConfig;
use ss_plan::{sharing_split, LogicalPlan, OutputMode};
use ss_sched::{AdmissionBudget, FairPool};
use ss_state::{CheckpointBackend, MemoryBackend};

use crate::fanout::FanoutSink;

/// Engine-wide knobs.
#[derive(Clone)]
pub struct MultiQueryConfig {
    /// Scan-cache entries retained (FIFO bound).
    pub scan_cache_capacity: usize,
    /// Worker threads in the shared scheduling pool.
    pub workers: usize,
    /// DRR quantum, in rows, credited per tenant per round.
    pub quantum: u64,
    /// Template for each sharing group's engine (parallelism,
    /// checkpoint cadence, clock, ...).
    pub engine: MicroBatchConfig,
}

impl Default for MultiQueryConfig {
    fn default() -> Self {
        MultiQueryConfig {
            scan_cache_capacity: 64,
            workers: 2,
            quantum: 100_000,
            engine: MicroBatchConfig::default(),
        }
    }
}

/// One query to run on the shared engine.
pub struct QuerySpec {
    pub name: String,
    /// Tenant for fairness + admission accounting.
    pub tenant: String,
    pub plan: Arc<LogicalPlan>,
    pub output_mode: OutputMode,
    /// The query's real output sink (fed through its tap).
    pub sink: Arc<dyn Sink>,
}

struct Member {
    name: String,
    tenant: String,
    shares_suffix: bool,
}

struct Group {
    /// Sharing key: prefix fingerprint + output mode.
    key: String,
    /// Short display name (engine/query name inside the group).
    label: String,
    tenant: String,
    engine: Mutex<MicroBatchExecution>,
    fanout: Arc<FanoutSink>,
    backend: Arc<MemoryBackend>,
    members: Mutex<Vec<Member>>,
}

/// What [`MultiQueryEngine::stop_query`] did.
pub struct DetachReport {
    /// Sharing key of the group the query left.
    pub group: String,
    /// Members still attached after the detach.
    pub remaining: usize,
    /// When survivors remain, a private copy of the group's checkpoint
    /// namespace taken at the detach boundary — the departing query's
    /// state, ready for an isolated restart. `None` when the group
    /// dissolved (the last member keeps nothing; the group's engine is
    /// dropped whole).
    pub checkpoint_copy: Option<Arc<MemoryBackend>>,
}

/// One scheduling tick's outcome.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TickReport {
    /// Epochs that ran (at most one per group per tick).
    pub epochs: u64,
    /// Input rows admitted across those epochs.
    pub rows: u64,
    /// Groups skipped because every subscribing tenant was over
    /// budget.
    pub skipped: u64,
}

/// Cumulative sharing counters (bench/CI assertions).
#[derive(Debug, Default, Clone, Copy)]
pub struct SharingStats {
    pub groups: u64,
    pub queries: u64,
    /// Queries that attached to an existing group instead of creating
    /// one (the sharing wins).
    pub attached: u64,
    /// Copy-on-detach snapshots taken.
    pub detach_copies: u64,
    pub scan: ScanCacheStats,
}

pub struct MultiQueryEngine {
    ctx: StreamingContext,
    config: MultiQueryConfig,
    cache: Arc<ScanCache>,
    pool: FairPool,
    budgets: Arc<Mutex<BTreeMap<String, AdmissionBudget>>>,
    groups: Mutex<BTreeMap<String, Arc<Group>>>,
    attached: AtomicU64,
    detach_copies: AtomicU64,
}

impl MultiQueryEngine {
    pub fn new(ctx: StreamingContext, config: MultiQueryConfig) -> MultiQueryEngine {
        MultiQueryEngine {
            cache: ScanCache::new(config.scan_cache_capacity),
            pool: FairPool::new(config.workers, config.quantum.max(1)),
            budgets: Arc::new(Mutex::new(BTreeMap::new())),
            groups: Mutex::new(BTreeMap::new()),
            attached: AtomicU64::new(0),
            detach_copies: AtomicU64::new(0),
            ctx,
            config,
        }
    }

    /// The context queries resolve sources/tables against.
    pub fn context(&self) -> &StreamingContext {
        &self.ctx
    }

    /// Cap `tenant` at `rows_per_tick` admitted rows per scheduling
    /// tick (burst up to `burst`). Tenants without a budget are
    /// unthrottled.
    pub fn set_tenant_budget(&self, tenant: &str, rows_per_tick: u64, burst: u64) {
        self.budgets.lock().insert(
            tenant.to_string(),
            AdmissionBudget::new(rows_per_tick.max(1), burst),
        );
    }

    /// Give `tenant` a DRR weight (default 1).
    pub fn set_tenant_weight(&self, tenant: &str, weight: u64) {
        self.pool.register_tenant(tenant, weight);
    }

    /// Submit a query: join the sharing group for its stateful prefix,
    /// creating the group (and its engine) on first use.
    fn check_name_free(
        groups: &BTreeMap<String, Arc<Group>>,
        name: &str,
    ) -> Result<()> {
        for g in groups.values() {
            if g.members.lock().iter().any(|m| m.name == name) {
                return Err(SsError::Plan(format!(
                    "a query named `{name}` is already running on the multi-query engine"
                )));
            }
        }
        Ok(())
    }

    pub fn submit(&self, spec: QuerySpec) -> Result<()> {
        Self::check_name_free(&self.groups.lock(), &spec.name)?;
        let analyzed = ss_plan::analyze(&spec.plan)?;
        ss_plan::validate_streaming(&analyzed, spec.output_mode)?;
        let optimized = ss_plan::optimize(&analyzed)?;
        // Suffix peeling rewrites the emitted row set, which is sound
        // for append output (each epoch's new rows) and complete output
        // (the whole result table) — it's how queries that differ only
        // in their SELECT-list aliases/projection still share. Update
        // output carries upsert key positions in the pre-suffix schema,
        // so update-mode queries share on the whole plan only.
        let allow_suffix = spec.output_mode != OutputMode::Update;
        let split = sharing_split(&optimized, allow_suffix);
        let group_key = format!("{}|{:?}", split.key, spec.output_mode);

        let mut groups = self.groups.lock();
        Self::check_name_free(&groups, &spec.name)?;
        if let Some(group) = groups.get(&group_key) {
            group.fanout.attach(&spec.name, split.suffix.clone(), spec.sink);
            group.members.lock().push(Member {
                name: spec.name,
                tenant: spec.tenant.clone(),
                shares_suffix: !split.suffix.is_empty(),
            });
            self.pool.register_tenant(&spec.tenant, 1);
            self.attached.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        // First query with this prefix: build the group's engine over
        // cache-wrapped sources.
        let label = format!("shared-{}", &split.key[..split.key.len().min(12)]);
        let scan_names = split.prefix.streaming_scans();
        let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
        let registered: HashMap<String, Arc<dyn Source>> =
            self.ctx.sources_snapshot().into_iter().collect();
        for name in &scan_names {
            let inner = registered.get(name).ok_or_else(|| {
                SsError::Plan(format!("no source registered for scan `{name}`"))
            })?;
            sources.insert(
                name.clone(),
                SharedScanSource::new(inner.clone(), self.cache.clone()) as Arc<dyn Source>,
            );
        }
        let mut statics = ss_exec::MemoryCatalog::new();
        for (name, batches) in self.ctx.statics_snapshot() {
            statics.register(name, batches);
        }
        let fanout = FanoutSink::new(format!("{label}-fanout"));
        fanout.attach(&spec.name, split.suffix.clone(), spec.sink);
        let backend = Arc::new(MemoryBackend::new());
        let engine = MicroBatchExecution::new(
            label.clone(),
            &split.prefix,
            sources,
            Arc::new(statics),
            fanout.clone(),
            spec.output_mode,
            backend.clone(),
            self.config.engine.clone(),
        )?;
        self.pool.register_tenant(&spec.tenant, 1);
        groups.insert(
            group_key.clone(),
            Arc::new(Group {
                key: group_key,
                label,
                tenant: spec.tenant.clone(),
                engine: Mutex::new(engine),
                fanout,
                backend,
                members: Mutex::new(vec![Member {
                    name: spec.name,
                    tenant: spec.tenant,
                    shares_suffix: !split.suffix.is_empty(),
                }]),
            }),
        );
        Ok(())
    }

    /// Stop one query. Surviving co-members keep running; the group's
    /// checkpoint namespace is snapshotted for the departing query
    /// (copy-on-detach). The last member to leave dissolves the group.
    pub fn stop_query(&self, name: &str) -> Result<DetachReport> {
        let mut groups = self.groups.lock();
        let key = groups
            .iter()
            .find(|(_, g)| g.members.lock().iter().any(|m| m.name == name))
            .map(|(k, _)| k.clone())
            .ok_or_else(|| SsError::Plan(format!("no active query `{name}`")))?;
        let group = groups.get(&key).expect("found above").clone();
        // Detach at an epoch boundary: taking the engine lock waits out
        // any epoch currently executing, so the tap never sees a
        // partial epoch and the checkpoint copy is consistent.
        let _engine = group.engine.lock();
        group.fanout.detach(name);
        let mut members = group.members.lock();
        members.retain(|m| m.name != name);
        let remaining = members.len();
        drop(members);
        if remaining == 0 {
            drop(_engine);
            groups.remove(&key);
            return Ok(DetachReport {
                group: key,
                remaining: 0,
                checkpoint_copy: None,
            });
        }
        let copy = Arc::new(MemoryBackend::new());
        for k in group.backend.list("")? {
            if let Some(data) = group.backend.read(&k)? {
                copy.write_atomic(&k, &data)?;
            }
        }
        self.detach_copies.fetch_add(1, Ordering::Relaxed);
        Ok(DetachReport {
            group: key,
            remaining,
            checkpoint_copy: Some(copy),
        })
    }

    /// One scheduling tick: refill every tenant budget, then run at
    /// most one epoch per sharing group through the fair pool. Groups
    /// are enqueued in deterministic key order under their creating
    /// tenant; a group every subscribing tenant of which is over budget
    /// skips the tick (its backlog waits for the refill to clear the
    /// debt). Admitted rows are charged to subscribing tenants in equal
    /// shares.
    pub fn tick(&self) -> Result<TickReport> {
        {
            let mut budgets = self.budgets.lock();
            for b in budgets.values_mut() {
                b.tick();
            }
        }
        let groups: Vec<Arc<Group>> = self.groups.lock().values().cloned().collect();
        let mut skipped = 0u64;
        for group in &groups {
            let tenants: Vec<String> = {
                let members = group.members.lock();
                members.iter().map(|m| m.tenant.clone()).collect()
            };
            if tenants.is_empty() {
                continue;
            }
            let admissible = {
                let budgets = self.budgets.lock();
                tenants
                    .iter()
                    .any(|t| budgets.get(t).map(|b| b.admissible()).unwrap_or(true))
            };
            if !admissible {
                skipped += 1;
                continue;
            }
            let cost = {
                let engine = group.engine.lock();
                backlog_rows(&engine).max(1)
            };
            let g = group.clone();
            let budgets = self.budgets.clone();
            self.pool.enqueue(
                &group.tenant,
                cost,
                Box::new(move || {
                    let mut engine = g.engine.lock();
                    let rows = match engine.run_epoch()? {
                        ss_core::microbatch::EpochRun::Idle => 0,
                        ss_core::microbatch::EpochRun::Ran(p) => p.num_input_rows,
                    };
                    if rows > 0 {
                        // Sharing splits the bill: each subscribing
                        // tenant pays an equal share of the one read.
                        let tenants: Vec<String> = {
                            let members = g.members.lock();
                            members.iter().map(|m| m.tenant.clone()).collect()
                        };
                        let share = rows.div_ceil(tenants.len().max(1) as u64);
                        let mut budgets = budgets.lock();
                        for t in &tenants {
                            if let Some(b) = budgets.get_mut(t) {
                                b.charge(share);
                            }
                        }
                    }
                    Ok(rows)
                }),
            );
        }
        let mut report = TickReport {
            skipped,
            ..TickReport::default()
        };
        while self.pool.queued() > 0 {
            let round = self.pool.run_round()?;
            for (_, rows) in &round.ran {
                if *rows > 0 {
                    report.epochs += 1;
                    report.rows += rows;
                }
            }
        }
        Ok(report)
    }

    /// Tick until every group is idle and nothing is admission-blocked
    /// (budget refills drain any debt). Returns total epochs run.
    pub fn run_until_idle(&self, max_ticks: u64) -> Result<u64> {
        let mut epochs = 0;
        for _ in 0..max_ticks {
            let t = self.tick()?;
            epochs += t.epochs;
            if t.epochs == 0 && t.skipped == 0 {
                return Ok(epochs);
            }
        }
        Err(SsError::Execution(format!(
            "multi-query engine still busy after {max_ticks} ticks"
        )))
    }

    /// Cumulative sharing counters.
    pub fn stats(&self) -> SharingStats {
        let groups = self.groups.lock();
        let queries: u64 = groups
            .values()
            .map(|g| g.members.lock().len() as u64)
            .sum();
        SharingStats {
            groups: groups.len() as u64,
            queries,
            attached: self.attached.load(Ordering::Relaxed),
            detach_copies: self.detach_copies.load(Ordering::Relaxed),
            scan: self.cache.stats(),
        }
    }

    /// Total rows actually read from underlying sources (one read per
    /// shared scan, however many groups fanned from it).
    pub fn source_rows_read(&self) -> u64 {
        self.cache.stats().underlying_rows
    }

    /// Operator state held across all sharing groups, in bytes (from
    /// each group's last progress record).
    pub fn state_bytes(&self) -> u64 {
        self.groups
            .lock()
            .values()
            .map(|g| {
                let engine = g.engine.lock();
                engine.progress().last().map(|p| p.state_bytes).unwrap_or(0)
            })
            .sum()
    }

    /// Active query names, sorted.
    pub fn query_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .groups
            .lock()
            .values()
            .flat_map(|g| g.members.lock().iter().map(|m| m.name.clone()).collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Session rows for the SQL service: `(query, tenant, group label,
    /// group key, epoch, shares_suffix)` sorted by query name.
    pub fn sessions(&self) -> Vec<(String, String, String, String, u64, bool)> {
        let mut out = Vec::new();
        for g in self.groups.lock().values() {
            let epoch = g.engine.lock().current_epoch();
            for m in g.members.lock().iter() {
                out.push((
                    m.name.clone(),
                    m.tenant.clone(),
                    g.label.clone(),
                    g.key.clone(),
                    epoch,
                    m.shares_suffix,
                ));
            }
        }
        out.sort();
        out
    }

    /// All groups' metrics merged into one Prometheus exposition: each
    /// member contributes its group's series under its own `query`
    /// label plus a `tenant` label, with one HELP/TYPE per family.
    pub fn metrics_exposition(&self) -> String {
        let groups: Vec<Arc<Group>> = self.groups.lock().values().cloned().collect();
        let member_lists: Vec<Vec<(String, String)>> = groups
            .iter()
            .map(|g| {
                g.members
                    .lock()
                    .iter()
                    .map(|m| (m.name.clone(), m.tenant.clone()))
                    .collect()
            })
            .collect();
        let engines: Vec<_> = groups.iter().map(|g| g.engine.lock()).collect();
        let mut views = Vec::new();
        for (members, engine) in member_lists.iter().zip(engines.iter()) {
            for (name, tenant) in members {
                views.push((
                    name.as_str(),
                    vec![("tenant", tenant.as_str())],
                    engine.metrics(),
                ));
            }
        }
        views.sort_by(|a, b| a.0.cmp(b.0));
        render_merged_labeled(&views)
    }
}

/// Backlog estimate: rows available beyond the engine's position,
/// summed over its sources.
fn backlog_rows(engine: &MicroBatchExecution) -> u64 {
    engine
        .progress()
        .last()
        .map(|p| p.backlog_rows + p.num_input_rows)
        .unwrap_or(1)
}
