//! Compare a freshly measured `BENCH_parallel.json` against the
//! committed baseline and gate on serial-throughput regressions.
//!
//! CI runs the scaling bench with `SS_BENCH_OUT` pointed at a scratch
//! file, then invokes this binary with the committed baseline and the
//! fresh result. The 1-worker (serial) throughput is the gated number:
//! it is the least scheduler-noise-sensitive point, and a >25% drop
//! there means the engine itself got slower, not that the runner was
//! busy. On a single-core runner the comparison is warn-only — with
//! one hardware thread even the serial point is hostage to co-tenant
//! load.
//!
//! Usage: `bench_compare <baseline.json> <fresh.json>`
//! Exit codes: 0 ok (or warn-only), 1 regression, 2 usage/parse error.

use std::process::exit;

/// Allowed serial slowdown before the gate fails: fresh must be at
/// least 75% of the baseline rate.
const MIN_RATIO: f64 = 0.75;

fn load(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read `{path}`: {e}");
        exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot parse `{path}`: {e}");
        exit(2);
    })
}

/// The 1-worker throughput from a parallel_scaling result document.
fn serial_rate(doc: &serde_json::Value) -> Option<f64> {
    doc.get("results")?.as_array()?.iter().find_map(|point| {
        if point.get("workers")?.as_u64()? != 1 {
            return None;
        }
        point.get("records_per_second")?.as_f64()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    let base = serial_rate(&baseline).unwrap_or_else(|| {
        eprintln!("bench_compare: `{baseline_path}` has no 1-worker result");
        exit(2);
    });
    let now = serial_rate(&fresh).unwrap_or_else(|| {
        eprintln!("bench_compare: `{fresh_path}` has no 1-worker result");
        exit(2);
    });
    let ratio = now / base;
    println!(
        "serial throughput: baseline {base:.0} rec/s, fresh {now:.0} rec/s ({:+.1}%)",
        100.0 * (ratio - 1.0)
    );
    if ratio >= MIN_RATIO {
        println!("ok: within the {:.0}% regression budget", 100.0 * (1.0 - MIN_RATIO));
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores <= 1 {
        println!(
            "WARN: serial throughput regressed {:.1}%, but this is a \
             single-core machine — warn-only",
            100.0 * (1.0 - ratio)
        );
        return;
    }
    eprintln!(
        "FAIL: serial throughput regressed {:.1}% (budget is {:.0}%)",
        100.0 * (1.0 - ratio),
        100.0 * (1.0 - MIN_RATIO)
    );
    exit(1);
}
