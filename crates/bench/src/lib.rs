//! # ss-bench — the evaluation harness (§9)
//!
//! Shared machinery for the figure-regenerating benchmark binaries in
//! `benches/`. Each binary prints the corresponding figure's series as
//! a table; `EXPERIMENTS.md` records paper-reported vs. measured.
//!
//! All engines consume the *same* pre-populated bus topic of
//! deterministically generated Yahoo! benchmark events, and every run
//! returns its result table so the harness can assert the three
//! engines agree before timing anything.

use std::sync::Arc;
use std::time::Instant;

use std::collections::BTreeMap;

use ss_baselines::workload::{BenchCounts, YahooWorkload};
use ss_baselines::{flink_like, kstreams_like};
use ss_bus::{BusSource, MemorySink, MessageBus};
use ss_common::profile::PhaseDuration;
use ss_common::{Result, Row, Value};
use ss_core::prelude::*;
use ss_core::StreamingContext;

/// How many events to preload per partition (override with the
/// `SS_BENCH_RECORDS` environment variable).
pub fn records_per_partition(default: u64) -> u64 {
    std::env::var("SS_BENCH_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A measured throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputRun {
    pub system: String,
    pub records: u64,
    pub seconds: f64,
    pub counts: BenchCounts,
    /// Per-phase wall time summed across the run's epochs (from the
    /// engine's epoch profiler); empty for engines without a profiler.
    pub phases: Vec<PhaseDuration>,
}

impl ThroughputRun {
    pub fn records_per_second(&self) -> f64 {
        self.records as f64 / self.seconds
    }

    /// Fraction of attributed top-level time spent in the shuffle
    /// exchange (`execute`'s shuffle-write + shuffle-read children
    /// over the sum of all top-level phases). `None` without profiles.
    pub fn shuffle_share(&self) -> Option<f64> {
        let top: u64 = self
            .phases
            .iter()
            .filter(|d| d.parent.is_none())
            .map(|d| d.duration_us)
            .sum();
        if top == 0 {
            return None;
        }
        let shuffle: u64 = self
            .phases
            .iter()
            .filter(|d| d.name == "shuffle-write" || d.name == "shuffle-read")
            .map(|d| d.duration_us)
            .sum();
        Some(shuffle as f64 / top as f64)
    }
}

/// Sum the query's retained per-epoch phase durations into one
/// per-(phase, parent) total.
fn phase_totals(query: &ss_core::StreamingQuery) -> Vec<PhaseDuration> {
    let mut totals: BTreeMap<(String, Option<String>), u64> = BTreeMap::new();
    for profile in query.profiles() {
        for d in &profile.phases {
            *totals
                .entry((d.name.clone(), d.parent.clone()))
                .or_insert(0) += d.duration_us;
        }
    }
    totals
        .into_iter()
        .map(|((name, parent), duration_us)| PhaseDuration {
            name,
            parent,
            duration_us,
        })
        .collect()
}

/// Create a bus with the benchmark topic preloaded:
/// `partitions × per_partition` events.
pub fn preload_bus(
    workload: &YahooWorkload,
    partitions: u32,
    per_partition: u64,
) -> Result<Arc<MessageBus>> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("ad-events", partitions)?;
    for p in 0..partitions {
        // Append in chunks to bound peak memory.
        let mut start = 0u64;
        while start < per_partition {
            let end = (start + 65_536).min(per_partition);
            bus.append_at(
                "ad-events",
                p,
                0,
                (start..end).map(|o| workload.event(p, o)),
            )?;
            start = end;
        }
    }
    Ok(bus)
}

/// Build the Yahoo! benchmark query as a Structured Streaming
/// DataFrame over a preloaded bus, returning `(query, sink)`.
pub fn build_ss_yahoo_query(
    workload: &YahooWorkload,
    bus: Arc<MessageBus>,
) -> Result<(ss_core::StreamingQuery, Arc<MemorySink>)> {
    build_ss_yahoo_query_at(workload, bus, 1)
}

/// [`build_ss_yahoo_query`] with data-parallel execution: epochs run
/// as partitioned map/shuffle/reduce stages on `parallelism` workers
/// (1 = the serial engine).
pub fn build_ss_yahoo_query_at(
    workload: &YahooWorkload,
    bus: Arc<MessageBus>,
    parallelism: usize,
) -> Result<(ss_core::StreamingQuery, Arc<MemorySink>)> {
    let ctx = StreamingContext::new();
    let events = ctx.read_source(Arc::new(BusSource::new(
        bus,
        "ad-events",
        workload.event_schema(),
    )?))?;
    let campaigns = ctx.read_table("campaigns", vec![workload.campaign_batch()])?;
    // The benchmark query: filter views, join the static campaign
    // table, count per campaign per 10 s event-time window. Pure
    // DataFrame ops, no UDFs (§9.1).
    let counts = events
        .filter(col("event_type").eq(ss_expr::lit("view")))
        .select(vec![col("ad_id"), col("event_time")])
        .join(
            &campaigns,
            JoinType::Inner,
            vec![(col("ad_id"), col("c_ad_id"))],
        )
        .group_by(vec![
            window(col("event_time"), "10 seconds")?,
            col("campaign_id"),
        ])
        .count();
    let sink = MemorySink::new("yahoo-counts");
    let query = counts
        .write_stream()
        .query_name("yahoo")
        .output_mode(OutputMode::Update)
        .sink(sink.clone())
        .parallelism(parallelism)
        .start_sync()?;
    Ok((query, sink))
}

/// Convert the Structured Streaming sink contents to canonical
/// comparable counts.
pub fn sink_to_counts(sink: &MemorySink) -> BenchCounts {
    let mut counts = BenchCounts::new();
    for row in sink.snapshot() {
        let window_start = match row.get(0) {
            Value::Timestamp(t) => *t,
            other => panic!("unexpected window_start {other}"),
        };
        let campaign = row.get(2).as_i64().unwrap().unwrap();
        let n = row.get(3).as_i64().unwrap().unwrap();
        counts.insert((campaign, window_start), n);
    }
    counts
}

/// Timed Structured Streaming run over a preloaded topic.
pub fn run_structured_streaming(
    workload: &YahooWorkload,
    bus: Arc<MessageBus>,
    total_records: u64,
) -> Result<ThroughputRun> {
    run_structured_streaming_at(workload, bus, total_records, 1)
}

/// Timed Structured Streaming run at a given worker count.
pub fn run_structured_streaming_at(
    workload: &YahooWorkload,
    bus: Arc<MessageBus>,
    total_records: u64,
    parallelism: usize,
) -> Result<ThroughputRun> {
    let (mut query, sink) = build_ss_yahoo_query_at(workload, bus, parallelism)?;
    let start = Instant::now();
    query.process_available()?;
    let seconds = start.elapsed().as_secs_f64();
    let phases = phase_totals(&query);
    Ok(ThroughputRun {
        system: if parallelism > 1 {
            format!("Structured Streaming ({parallelism} workers)")
        } else {
            "Structured Streaming".into()
        },
        records: total_records,
        seconds,
        counts: sink_to_counts(&sink),
        phases,
    })
}

/// Timed Flink-style run over the same topic.
pub fn run_flink_like(
    workload: &YahooWorkload,
    bus: &MessageBus,
    total_records: u64,
) -> Result<ThroughputRun> {
    let start = Instant::now();
    let job = flink_like::run_from_bus(bus, "ad-events", workload, total_records)?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(ThroughputRun {
        system: "Flink-like (record-at-a-time)".into(),
        records: total_records,
        seconds,
        counts: job.counts(),
        phases: Vec::new(),
    })
}

/// Timed Kafka-Streams-style run over the same topic.
pub fn run_kstreams_like(
    workload: &YahooWorkload,
    bus: &MessageBus,
    total_records: u64,
) -> Result<ThroughputRun> {
    let start = Instant::now();
    let job = kstreams_like::run_from_bus(bus, "ad-events", workload, total_records)?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(ThroughputRun {
        system: "Kafka-Streams-like (bus-coupled)".into(),
        records: total_records,
        seconds,
        counts: job.counts(),
        phases: Vec::new(),
    })
}

/// Row-at-a-time interpretation of the Yahoo pipeline *inside* the
/// vectorized engine's data structures — the ablation isolating what
/// vectorized execution buys (E6). Uses the same per-row expression
/// evaluator the continuous engine uses.
pub fn run_row_at_a_time(
    workload: &YahooWorkload,
    bus: &MessageBus,
    total_records: u64,
) -> Result<ThroughputRun> {
    use rustc_hash::FxHashMap;
    use ss_expr::eval::evaluate_row;

    let schema = workload.event_schema();
    let pred = col("event_type").eq(ss_expr::lit("view"));
    let campaigns = workload.campaign_map();
    let mut counts: FxHashMap<(i64, i64), i64> = FxHashMap::default();
    let partitions = bus.num_partitions("ad-events")?;
    let start = Instant::now();
    let mut consumed = 0u64;
    let mut offsets = vec![0u64; partitions as usize];
    while consumed < total_records {
        let mut progressed = false;
        for p in 0..partitions {
            let records = bus.read("ad-events", p, offsets[p as usize], 4096)?;
            for rec in records {
                progressed = true;
                offsets[p as usize] = rec.offset + 1;
                consumed += 1;
                let row: &Row = &rec.row;
                if evaluate_row(&pred, &schema, row)?.as_bool()? != Some(true) {
                    continue;
                }
                let ad = row.get(2).as_i64()?.unwrap_or(-1);
                let Some(&campaign) = campaigns.get(&ad) else { continue };
                let t = row.get(5).as_i64()?.unwrap_or(0);
                let win = t.div_euclid(workload.window_us) * workload.window_us;
                *counts.entry((campaign, win)).or_insert(0) += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    Ok(ThroughputRun {
        system: "row-at-a-time interpretation".into(),
        records: consumed,
        seconds,
        counts: counts.into_iter().collect(),
        phases: Vec::new(),
    })
}

/// Render a markdown-ish results table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        println!("{s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Human-readable throughput.
pub fn fmt_rate(records_per_second: f64) -> String {
    if records_per_second >= 1e6 {
        format!("{:.2} M rec/s", records_per_second / 1e6)
    } else if records_per_second >= 1e3 {
        format!("{:.0} K rec/s", records_per_second / 1e3)
    } else {
        format!("{records_per_second:.0} rec/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_on_small_input() {
        let w = YahooWorkload::default();
        let per_partition = 3_000u64;
        let partitions = 2u32;
        let total = per_partition * partitions as u64;
        let bus = preload_bus(&w, partitions, per_partition).unwrap();
        let reference = w.reference_counts(partitions, per_partition);

        let ss = run_structured_streaming(&w, bus.clone(), total).unwrap();
        assert_eq!(ss.counts, reference, "structured streaming");
        let fl = run_flink_like(&w, &bus, total).unwrap();
        assert_eq!(fl.counts, reference, "flink-like");
        let ks = run_kstreams_like(&w, &bus, total).unwrap();
        assert_eq!(ks.counts, reference, "kstreams-like");
        let ra = run_row_at_a_time(&w, &bus, total).unwrap();
        assert_eq!(ra.counts, reference, "row-at-a-time");
    }

    #[test]
    fn records_env_override() {
        assert_eq!(records_per_partition(42), 42);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(2_500_000.0), "2.50 M rec/s");
        assert_eq!(fmt_rate(2_500.0), "2 K rec/s"); // rounded
        assert_eq!(fmt_rate(42.0), "42 rec/s");
    }
}
