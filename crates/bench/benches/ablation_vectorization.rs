//! **Ablation E6** — what vectorized execution buys (§9.1).
//!
//! "This particular Structured Streaming query is implemented using
//! just DataFrame operations with no UDF code. The performance thus
//! comes solely from Spark SQL's built-in execution optimizations,
//! including storing data in a compact binary format and runtime code
//! generation." This ablation isolates that claim: the same Yahoo
//! pipeline executed (a) through the vectorized engine and (b) by
//! interpreting the same expressions row-at-a-time.
//!
//! Usage: `cargo bench -p ss-bench --bench ablation_vectorization`

use ss_baselines::workload::YahooWorkload;
use ss_bench::*;

fn main() {
    let workload = YahooWorkload::default();
    let partitions = 4u32;
    let per_partition = records_per_partition(200_000);
    let total = per_partition * partitions as u64;

    println!("== Ablation E6: vectorized vs. row-at-a-time execution ==");
    println!("   {total} records, same query, same expression ASTs\n");

    // Warmup both paths, then take the best of 3 timed runs each (the
    // paper's metric is maximum stable throughput; this VM's CPU is
    // noisy).
    let warm = preload_bus(&workload, partitions, 2_000).expect("bus");
    run_structured_streaming(&workload, warm.clone(), 2_000 * partitions as u64).expect("warm");
    run_row_at_a_time(&workload, &warm, 2_000 * partitions as u64).expect("warm");

    let bus = preload_bus(&workload, partitions, per_partition).expect("bus");
    let mut vectorized = run_structured_streaming(&workload, bus.clone(), total).expect("v");
    let mut row_wise = run_row_at_a_time(&workload, &bus, total).expect("r");
    for _ in 0..2 {
        let v = run_structured_streaming(&workload, bus.clone(), total).expect("v");
        if v.seconds < vectorized.seconds {
            vectorized = v;
        }
        let r = run_row_at_a_time(&workload, &bus, total).expect("r");
        if r.seconds < row_wise.seconds {
            row_wise = r;
        }
    }
    assert_eq!(
        vectorized.counts, row_wise.counts,
        "both executions must agree"
    );

    let rows = vec![
        vec![
            "vectorized (batch kernels)".to_string(),
            format!("{:.2}s", vectorized.seconds),
            fmt_rate(vectorized.records_per_second()),
        ],
        vec![
            "row-at-a-time (interpreted)".to_string(),
            format!("{:.2}s", row_wise.seconds),
            fmt_rate(row_wise.records_per_second()),
        ],
    ];
    print_table(&["execution", "time", "throughput"], &rows);
    println!(
        "\nvectorization advantage: {:.2}x — the factor §9.1 attributes to the \
         relational engine (columnar layout + per-batch dispatch standing in for codegen)",
        vectorized.records_per_second() / row_wise.records_per_second()
    );
}
