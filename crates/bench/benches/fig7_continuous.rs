//! **Figure 7** — continuous processing latency vs. input rate (§9.3).
//!
//! Paper (4-core server, map job from Kafka): continuous mode holds
//! single-digit-millisecond latency until the input rate approaches
//! its maximum throughput (< 10 ms at half the microbatch max), then
//! latency explodes as the system saturates; the dashed line marks
//! microbatch mode's maximum stable throughput, whose end-to-end
//! latency is trigger-bound (100s of ms).
//!
//! This machine has **one core**, so the producer and the worker
//! timeshare it: the continuous engine's absolute capacity here is
//! below the microbatch drain rate (which amortizes per-record costs),
//! unlike the paper's multi-core testbed. The reproduction target is
//! the *latency curve shape*: flat low-millisecond latency at low
//! rates, blow-up near saturation, and a huge gap to microbatch
//! latency. We therefore sweep rates relative to the *measured
//! continuous capacity*.
//!
//! Usage: `cargo bench -p ss-bench --bench fig7_continuous`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ss_baselines::workload::YahooWorkload;
use ss_bench::*;
use ss_bus::{BusSource, MemorySink, MessageBus};
use ss_common::Row;
use ss_core::continuous::{percentile, ContinuousConfig, ContinuousQuery, RecordSink};
use ss_core::prelude::*;
use ss_core::StreamingContext;

fn map_plan(
    workload: &YahooWorkload,
    ctx: &StreamingContext,
    bus: Arc<MessageBus>,
) -> ss_core::DataFrame {
    let events = ctx
        .read_source(Arc::new(
            BusSource::new(bus, "ad-events", workload.event_schema()).unwrap(),
        ))
        .unwrap();
    events
        .filter(col("event_type").eq(ss_expr::lit("view")))
        .select(vec![col("ad_id"), col("event_time")])
}

fn counting_sink(counter: Arc<AtomicU64>) -> RecordSink {
    Arc::new(move |_p, _row| {
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(())
    })
}

fn start_query(
    workload: &YahooWorkload,
    bus: Arc<MessageBus>,
    sink: RecordSink,
    record_latency: bool,
) -> ContinuousQuery {
    let ctx = StreamingContext::new();
    let df = map_plan(workload, &ctx, bus.clone());
    ContinuousQuery::start(
        &df.plan(),
        bus,
        "ad-events",
        sink,
        None,
        ContinuousConfig {
            record_latency,
            idle_sleep: Duration::from_micros(100),
            ..Default::default()
        },
    )
    .expect("continuous query")
}

/// Drain throughput of the continuous engine (capacity probe; the
/// producer is not running, so this is an upper bound on sustainable
/// rate).
fn continuous_capacity(workload: &YahooWorkload, pool: &[Row]) -> f64 {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("ad-events", 1).unwrap();
    let n = 300_000usize;
    for chunk in (0..n).collect::<Vec<_>>().chunks(8192) {
        bus.append_at(
            "ad-events",
            0,
            0,
            chunk.iter().map(|&i| pool[i % pool.len()].clone()),
        )
        .unwrap();
    }
    let processed = Arc::new(AtomicU64::new(0));
    let q = start_query(workload, bus, counting_sink(processed.clone()), false);
    let start = Instant::now();
    let deadline = start + Duration::from_secs(60);
    while (q.processed() as usize) < n {
        assert!(Instant::now() < deadline, "capacity probe stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
    let rate = n as f64 / start.elapsed().as_secs_f64();
    q.stop().unwrap();
    rate
}

/// Run at a target rate for `duration`; returns sorted latencies (µs).
fn latency_at_rate(
    workload: &YahooWorkload,
    pool: &[Row],
    rate: u64,
    duration: Duration,
) -> (u64, Vec<i64>) {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("ad-events", 1).unwrap();
    let processed = Arc::new(AtomicU64::new(0));
    let q = start_query(workload, bus.clone(), counting_sink(processed), true);

    // Paced producer: appends pre-generated rows (cheap clones) in
    // ~2 ms batches.
    let start = Instant::now();
    let mut produced = 0u64;
    let mut pool_i = 0usize;
    while start.elapsed() < duration {
        let target = (start.elapsed().as_secs_f64() * rate as f64) as u64;
        while produced < target {
            let n = ((target - produced) as usize).min(2048);
            bus.append(
                "ad-events",
                0,
                (0..n).map(|k| pool[(pool_i + k) % pool.len()].clone()),
            )
            .unwrap();
            pool_i = (pool_i + n) % pool.len();
            produced += n as u64;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Let the worker drain the tail.
    let deadline = Instant::now() + Duration::from_secs(30);
    while q.processed() < produced && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let latencies = q.stop().expect("clean stop");
    (produced, latencies)
}

fn main() {
    let workload = YahooWorkload::default();
    let secs_per_point = std::env::var("SS_BENCH_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3u64);
    let duration = Duration::from_secs(secs_per_point);
    // Pre-generate the event pool so producing is a cheap clone, not a
    // generator call — on one core the producer must not crowd out the
    // worker.
    let pool: Vec<Row> = (0..65_536).map(|o| workload.event(0, o)).collect();

    println!("== Figure 7: continuous processing latency vs. input rate ==\n");

    // The dashed line: microbatch maximum drain throughput on the same
    // map-only pipeline.
    let per_partition = records_per_partition(200_000);
    let micro_max = {
        let bus = preload_bus(&workload, 1, per_partition).expect("bus");
        let ctx = StreamingContext::new();
        let df = map_plan(&workload, &ctx, bus.clone());
        let sink = MemorySink::new("out");
        let mut q = df
            .write_stream()
            .output_mode(OutputMode::Append)
            .sink(sink)
            .start_sync()
            .expect("microbatch query");
        let t0 = Instant::now();
        q.process_available().expect("drain");
        per_partition as f64 / t0.elapsed().as_secs_f64()
    };
    println!("microbatch max throughput (dashed line): {}", fmt_rate(micro_max));

    // Continuous capacity on this machine (single core, shared with
    // the producer during the sweep).
    let cont_max = continuous_capacity(&workload, &pool);
    println!("continuous drain capacity:               {}\n", fmt_rate(cont_max));

    // Microbatch end-to-end latency at a 100 ms trigger, for contrast.
    let micro_latency_ms = {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("ad-events", 1).unwrap();
        let ctx = StreamingContext::new();
        let df = map_plan(&workload, &ctx, bus.clone());
        let sink = MemorySink::new("out");
        let mut q = df
            .write_stream()
            .output_mode(OutputMode::Append)
            .sink(sink)
            .start_sync()
            .unwrap();
        bus.append("ad-events", 0, pool.iter().take(1000).cloned()).unwrap();
        let t = Instant::now();
        q.process_available().unwrap();
        100.0 + t.elapsed().as_secs_f64() * 1000.0
    };

    let mut rows = Vec::new();
    for frac in [0.05, 0.1, 0.25, 0.5, 0.75] {
        let rate = (cont_max * frac) as u64;
        let (produced, lat) = latency_at_rate(&workload, &pool, rate, duration);
        let p = |q: f64| {
            percentile(&lat, q)
                .map(|us| format!("{:.2} ms", us as f64 / 1000.0))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            format!("{:.0}% of capacity ({})", frac * 100.0, fmt_rate(rate as f64)),
            format!("{produced}"),
            p(0.5),
            p(0.95),
            p(0.99),
        ]);
    }
    rows.push(vec![
        "microbatch @100ms trigger".to_string(),
        "1000".into(),
        format!("{micro_latency_ms:.0} ms"),
        "-".into(),
        "-".into(),
    ]);
    print_table(&["input rate", "records", "p50", "p95", "p99"], &rows);
    println!(
        "\npaper shape: flat single-digit-ms latency at low rates, blow-up near \
         saturation; microbatch latency is trigger-bound (100s of ms). On this 1-core \
         machine the producer and worker timeshare, so absolute capacity is below the \
         paper's multi-core testbed."
    );
}
