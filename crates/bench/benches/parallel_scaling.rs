//! **Parallel scaling** — Yahoo! benchmark throughput vs. worker count
//! on the data-parallel task scheduler (`ss-sched`).
//!
//! The paper's engine owes its Figure 6a throughput to Spark's
//! data-parallel task scheduler: every epoch compiles to stages of
//! per-partition tasks. This bench measures our reproduction of that
//! architecture directly: the same Yahoo-style pipeline (filter →
//! project → stream–static join → windowed count per campaign) runs at
//! 1 / 2 / 4 / 8 workers, with the epoch split into map tasks, a
//! hash-partitioned shuffle by group key, and per-partition reduce
//! tasks against sharded state.
//!
//! A correctness pre-check asserts the parallel engine matches the
//! independent oracle byte-for-byte (determinism is the scheduler's
//! contract; `tests/determinism.rs` holds the full matrix). Each point
//! is best-of-N after a warmup run.
//!
//! Results are appended to `BENCH_parallel.json` at the workspace root
//! (override with `SS_BENCH_OUT=<path>`) so the scaling trajectory is
//! tracked from PR to PR. On a single-core machine the expected
//! speedup is ≤ 1× (scheduling overhead with nothing to run on);
//! the ≥ 2× @ 4-workers acceptance bar applies to 4+-core runners.
//!
//! Usage: `cargo bench -p ss-bench --bench parallel_scaling`
//! (scale with `SS_BENCH_RECORDS=<events per partition>`).

use std::path::PathBuf;

use ss_baselines::workload::YahooWorkload;
use ss_bench::*;

fn out_path() -> PathBuf {
    match std::env::var("SS_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        // crates/bench/../../ = workspace root.
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_parallel.json"),
    }
}

fn main() {
    let workload = YahooWorkload::default();
    let partitions = 8u32;
    let per_partition = records_per_partition(50_000);
    let total = per_partition * partitions as u64;
    let reps = 3;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("== Parallel scaling: Yahoo! pipeline throughput vs. worker count ==");
    println!(
        "   {partitions} partitions x {per_partition} events = {total} records; \
         best of {reps} runs; {cores} hardware core(s)\n"
    );

    // Correctness pre-check: the parallel engine must match the oracle.
    let reference = workload.reference_counts(2, 2_000);
    for workers in [1usize, 4] {
        let bus = preload_bus(&workload, 2, 2_000).expect("bus");
        let run = run_structured_streaming_at(&workload, bus, 4_000, workers)
            .expect("pre-check run");
        assert_eq!(
            run.counts, reference,
            "{} workers disagree with the oracle",
            workers
        );
    }
    println!("   (correctness pre-check passed: 1- and 4-worker runs match the oracle)\n");

    let mut results: Vec<(usize, ThroughputRun)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        // Warmup at small scale, then best-of-N timed runs.
        let bus = preload_bus(&workload, partitions, 2_000).expect("bus");
        let _ = run_structured_streaming_at(&workload, bus, 2_000 * partitions as u64, workers);
        let mut best: Option<ThroughputRun> = None;
        for _ in 0..reps {
            let bus = preload_bus(&workload, partitions, per_partition).expect("bus");
            let run = run_structured_streaming_at(&workload, bus, total, workers)
                .expect("timed run");
            if best
                .as_ref()
                .is_none_or(|b| run.records_per_second() > b.records_per_second())
            {
                best = Some(run);
            }
        }
        let best = best.expect("at least one rep");
        eprintln!(
            "   measured {workers} worker(s): {}",
            fmt_rate(best.records_per_second())
        );
        results.push((workers, best));
    }

    let base = results[0].1.records_per_second();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(workers, r)| {
            let rate = r.records_per_second();
            vec![
                format!("{workers}"),
                format!("{}", r.records),
                format!("{:.2}s", r.seconds),
                fmt_rate(rate),
                format!("{:.2}x", rate / base),
                format!("{:.1}%", 100.0 * rate / (base * *workers as f64)),
            ]
        })
        .collect();
    print_table(
        &["workers", "records", "time", "throughput", "speedup", "efficiency"],
        &rows,
    );

    // Where did the epochs spend their time? (top-level phases are
    // disjoint engine-thread intervals; `execute/...` children overlap
    // the parent and may exceed it — shuffle-write is CPU time summed
    // across map tasks.)
    println!();
    for (workers, r) in &results {
        let top: u64 = r
            .phases
            .iter()
            .filter(|d| d.parent.is_none())
            .map(|d| d.duration_us)
            .sum();
        let breakdown: Vec<String> = r
            .phases
            .iter()
            .filter(|d| d.parent.is_none() && d.duration_us > 0)
            .map(|d| format!("{} {:.0}%", d.name, 100.0 * d.duration_us as f64 / top as f64))
            .collect();
        println!(
            "   {workers} worker(s): {} | shuffle share {:.1}%",
            breakdown.join(", "),
            100.0 * r.shuffle_share().unwrap_or(0.0)
        );
    }

    // Emit the machine-readable trajectory record.
    let mut points = Vec::new();
    for (workers, r) in &results {
        let mut p = serde_json::Map::new();
        p.insert("workers".into(), serde_json::to_value(workers).unwrap());
        p.insert(
            "records_per_second".into(),
            serde_json::to_value(&r.records_per_second()).unwrap(),
        );
        p.insert("seconds".into(), serde_json::to_value(&r.seconds).unwrap());
        p.insert(
            "speedup".into(),
            serde_json::to_value(&(r.records_per_second() / base)).unwrap(),
        );
        // Per-phase attribution: `<phase>` for top-level entries,
        // `<parent>/<child>` for execute's children.
        let mut phases = serde_json::Map::new();
        for d in &r.phases {
            let key = match &d.parent {
                Some(parent) => format!("{parent}/{}", d.name),
                None => d.name.clone(),
            };
            phases.insert(key, serde_json::to_value(&d.duration_us).unwrap());
        }
        p.insert("phases_us".into(), serde_json::Value::Object(phases));
        if let Some(share) = r.shuffle_share() {
            p.insert("shuffle_share".into(), serde_json::to_value(&share).unwrap());
        }
        points.push(serde_json::Value::Object(p));
    }
    let mut doc = serde_json::Map::new();
    doc.insert("bench".into(), serde_json::to_value("parallel_scaling").unwrap());
    doc.insert("pipeline".into(), serde_json::to_value("yahoo").unwrap());
    doc.insert("hardware_cores".into(), serde_json::to_value(&cores).unwrap());
    doc.insert("records".into(), serde_json::to_value(&total).unwrap());
    doc.insert("results".into(), serde_json::Value::Array(points));
    let text = serde_json::to_string_pretty(&serde_json::Value::Object(doc))
        .expect("serialize bench results");
    let path = out_path();
    std::fs::write(&path, text + "\n").expect("write BENCH_parallel.json");
    println!("\nwrote {}", path.display());
}
