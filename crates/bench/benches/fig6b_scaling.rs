//! **Figure 6b** — Yahoo! benchmark throughput vs. cluster size (§9.2).
//!
//! Paper: 1 / 5 / 10 / 20 c3.2xlarge workers (8 cores each), one Kafka
//! partition per core; throughput scales "close to linearly, from 11.5
//! million records/s on 1 node to 225 million records/s on 20 nodes".
//!
//! This machine has one core, so the cluster is *simulated* in virtual
//! time (see DESIGN.md): we first **measure** the real single-core
//! throughput of the actual Structured Streaming operators on this
//! machine, calibrate the simulator's cost model with it, then run the
//! paper's cluster sizes through the real scheduler logic (fine-grained
//! tasks, dynamic load balancing, map + reduce stages). The
//! reproduction target is the *shape*: near-linear scaling.
//!
//! Usage: `cargo bench -p ss-bench --bench fig6b_scaling`

use ss_baselines::workload::YahooWorkload;
use ss_bench::*;
use ss_cluster::{ClusterSpec, CostModel, SimCluster, Stage};

fn main() {
    let workload = YahooWorkload::default();
    let calib_partitions = 4u32;
    let per_partition = records_per_partition(100_000);
    let calib_total = per_partition * calib_partitions as u64;

    println!("== Figure 6b: Yahoo! benchmark throughput vs. cluster size ==\n");

    // Step 1: measure the real engine's single-core rate (warmup run
    // first, then best of 3 — the paper's metric is *maximum* stable
    // throughput and this VM's CPU scheduling is noisy).
    {
        let bus = preload_bus(&workload, calib_partitions, 2_000).expect("bus");
        run_structured_streaming(&workload, bus, 2_000 * calib_partitions as u64)
            .expect("warmup");
    }
    let mut measured = 0f64;
    for _ in 0..3 {
        let bus = preload_bus(&workload, calib_partitions, per_partition).expect("bus");
        let run =
            run_structured_streaming(&workload, bus, calib_total).expect("calibration run");
        measured = measured.max(run.records_per_second());
    }
    println!(
        "calibration: measured single-core Structured Streaming rate = {}\n",
        fmt_rate(measured)
    );

    // Step 2: simulate the paper's cluster sizes in virtual time.
    // Per-core work: one source partition per core (as in §9.2), task
    // overhead modeling Spark's per-task scheduling cost, plus a
    // small reduce stage (counts per campaign/window).
    let cost = CostModel::from_measured_rate(measured, 2_000.0);
    let records_per_core: u64 = 2_000_000;

    let mut rows = Vec::new();
    let mut base_rate = None;
    for nodes in [1u32, 5, 10, 20] {
        let spec = ClusterSpec::c3_2xlarge(nodes);
        let cores = spec.total_cores();
        let total_records = records_per_core * cores as u64;
        let stages = vec![
            // Fine-grained tasks (4 per core) over partitions whose
            // sizes vary ±15% — real Kafka partitions are never even;
            // dynamic task scheduling absorbs the imbalance (§6.2).
            Stage::skewed("map+join+partial-agg", cores * 4, total_records, 0.15),
            // Final merge of partial aggregates: one task per core over
            // the (small) per-campaign-window partials.
            Stage::even("reduce", cores, (workload.num_campaigns as u64) * 64),
        ];
        let sim = SimCluster::new(spec, cost);
        let result = sim.run_job(&stages).expect("simulation");
        let rate = result.records_per_second(total_records);
        let base = *base_rate.get_or_insert(rate);
        rows.push(vec![
            format!("{nodes}"),
            format!("{cores}"),
            fmt_rate(rate),
            format!("{:.2}x", rate / base),
            format!("{:.1}%", 100.0 * rate / (base * nodes as f64)),
        ]);
    }
    print_table(
        &[
            "nodes",
            "cores",
            "throughput (simulated)",
            "speedup vs 1 node",
            "parallel efficiency",
        ],
        &rows,
    );
    println!(
        "\npaper: 11.5 M rec/s @ 1 node -> 225 M rec/s @ 20 nodes (19.6x, ~98% efficiency)"
    );
}
