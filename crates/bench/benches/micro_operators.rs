//! Criterion microbenchmarks of the engine's hot operators: filter,
//! project, hash aggregation, hash join, state-store writes and WAL
//! appends. Not a paper figure — these are the regression guards the
//! DataFusion contributor guide recommends accompanying performance
//! work with.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ss_baselines::workload::YahooWorkload;
use ss_bus::MessageBus;
use ss_common::{RecordBatch, Row, Value};
use ss_exec::ops::{filter_batch, project_batch};
use ss_exec::{hash_join, HashAggregator};
use ss_expr::{col, count_star, lit, window};
use ss_plan::JoinType;
use ss_state::{MemoryBackend, StateEntry, StateStore};
use ss_wal::{EpochOffsets, OffsetRange, WriteAheadLog};

const BATCH_ROWS: u64 = 8_192;

fn event_batch(workload: &YahooWorkload) -> RecordBatch {
    workload.event_batch(0, 0, BATCH_ROWS)
}

fn bench_filter(c: &mut Criterion) {
    let w = YahooWorkload::default();
    let batch = event_batch(&w);
    let pred = col("event_type").eq(lit("view"));
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(BATCH_ROWS));
    g.bench_function("event_type_eq_view", |b| {
        b.iter(|| filter_batch(&batch, &pred).unwrap())
    });
    g.finish();
}

fn bench_project(c: &mut Criterion) {
    let w = YahooWorkload::default();
    let batch = event_batch(&w);
    let exprs = vec![col("ad_id"), col("event_time"), col("ad_id").add(lit(1i64))];
    let mut g = c.benchmark_group("project");
    g.throughput(Throughput::Elements(BATCH_ROWS));
    g.bench_function("three_columns", |b| {
        b.iter(|| project_batch(&batch, &exprs).unwrap())
    });
    g.finish();
}

fn bench_hash_aggregate(c: &mut Criterion) {
    let w = YahooWorkload::default();
    let batch = event_batch(&w);
    let mut g = c.benchmark_group("hash_aggregate");
    g.throughput(Throughput::Elements(BATCH_ROWS));
    g.bench_function("count_by_ad_id", |b| {
        b.iter_batched(
            || HashAggregator::new(batch.schema().clone(), vec![col("ad_id")], vec![count_star()]).unwrap(),
            |mut agg| agg.update_batch(&batch).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("count_by_window_and_ad", |b| {
        b.iter_batched(
            || {
                HashAggregator::new(
                    batch.schema().clone(),
                    vec![window(col("event_time"), "10 seconds").unwrap(), col("ad_id")],
                    vec![count_star()],
                )
                .unwrap()
            },
            |mut agg| agg.update_batch(&batch).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_hash_join(c: &mut Criterion) {
    let w = YahooWorkload::default();
    let batch = event_batch(&w);
    let campaigns = w.campaign_batch();
    let on = vec![(col("ad_id"), col("c_ad_id"))];
    let mut g = c.benchmark_group("hash_join");
    g.throughput(Throughput::Elements(BATCH_ROWS));
    g.bench_function("events_x_campaigns", |b| {
        b.iter(|| hash_join(&batch, &campaigns, JoinType::Inner, &on).unwrap())
    });
    g.finish();
}

fn bench_state_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_store");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("put_1k_keys", |b| {
        b.iter_batched(
            || StateStore::new(Arc::new(MemoryBackend::new())),
            |mut store| {
                let op = store.operator("agg");
                for i in 0..1_000i64 {
                    op.put(
                        Row::new(vec![Value::Int64(i)]),
                        StateEntry::new(vec![Row::new(vec![Value::Int64(i)])]),
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("checkpoint_1k_keys", |b| {
        b.iter_batched(
            || {
                let mut store = StateStore::new(Arc::new(MemoryBackend::new()));
                let op = store.operator("agg");
                for i in 0..1_000i64 {
                    op.put(
                        Row::new(vec![Value::Int64(i)]),
                        StateEntry::new(vec![Row::new(vec![Value::Int64(i)])]),
                    );
                }
                store
            },
            |mut store| store.checkpoint(1).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    let mut epoch = 0u64;
    let wal = WriteAheadLog::new(Arc::new(MemoryBackend::new()));
    g.bench_function("write_offsets", |b| {
        b.iter(|| {
            epoch += 1;
            let mut sources = std::collections::BTreeMap::new();
            sources.insert(
                "kafka".to_string(),
                OffsetRange {
                    start: std::collections::BTreeMap::from([(0, epoch * 100)]),
                    end: std::collections::BTreeMap::from([(0, (epoch + 1) * 100)]),
                },
            );
            wal.write_offsets(&EpochOffsets {
                epoch,
                sources,
                watermark_us: 0,
                defined_at_us: 0,
            })
            .unwrap()
        })
    });
    g.finish();
}

fn bench_bus(c: &mut Criterion) {
    let w = YahooWorkload::default();
    let bus = MessageBus::new();
    bus.create_topic("t", 1).unwrap();
    let rows: Vec<Row> = (0..1_000).map(|o| w.event(0, o)).collect();
    let mut g = c.benchmark_group("bus");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("append_1k", |b| {
        b.iter(|| bus.append_at("t", 0, 0, rows.iter().cloned()).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_filter,
    bench_project,
    bench_hash_aggregate,
    bench_hash_join,
    bench_state_store,
    bench_wal,
    bench_bus
);
criterion_main!(benches);
