//! **Figure 6a** — Yahoo! Streaming Benchmark throughput vs. other
//! systems (§9.1).
//!
//! Paper (40-core cluster): Kafka Streams 0.7 M rec/s, Apache Flink
//! 33 M rec/s, Structured Streaming 65 M rec/s — SS ≈ 2× Flink and
//! ≈ 93× Kafka Streams. Here every system runs single-threaded over
//! the same in-process bus, so absolute numbers differ; the
//! reproduction target is the *shape*: SS fastest (vectorized
//! relational engine), the record-at-a-time dataflow ~2× behind, the
//! bus-coupled system an order of magnitude behind. (The paper's 93×
//! additionally includes real network round-trips to Kafka brokers,
//! which an in-process bus cannot exhibit; see EXPERIMENTS.md.)
//!
//! Method: every engine consumes identical deterministic events; a
//! correctness pre-check asserts all engines match an independent
//! oracle; each system is measured best-of-N after a warmup run (the
//! paper's metric is *maximum* stable throughput; this VM has noisy
//! CPU scheduling).
//!
//! Usage: `cargo bench -p ss-bench --bench fig6a_yahoo`
//! (scale with `SS_BENCH_RECORDS=<events per partition>`).

use ss_baselines::workload::YahooWorkload;
use ss_bench::*;

fn main() {
    let workload = YahooWorkload::default();
    let partitions = 8u32;
    let per_partition = records_per_partition(50_000);
    let total = per_partition * partitions as u64;
    let reps = 3;

    println!("== Figure 6a: Yahoo! Streaming Benchmark, maximum throughput ==");
    println!(
        "   {partitions} partitions x {per_partition} events = {total} records; \
         100 campaigns x 10 ads; 10s event-time windows; best of {reps} runs\n"
    );

    // Correctness pre-check against the oracle.
    let small = preload_bus(&workload, 2, 2_000).expect("bus");
    let reference = workload.reference_counts(2, 2_000);
    for run in [
        run_structured_streaming(&workload, small.clone(), 4_000).expect("ss"),
        run_flink_like(&workload, &small, 4_000).expect("flink"),
        run_kstreams_like(&workload, &small, 4_000).expect("kstreams"),
    ] {
        assert_eq!(run.counts, reference, "{} disagrees with oracle", run.system);
    }
    println!("   (correctness pre-check passed: all engines match the oracle)\n");

    type Runner = Box<dyn Fn(u64) -> ThroughputRun>;
    let w1 = workload.clone();
    let w2 = workload.clone();
    let w3 = workload.clone();
    let systems: Vec<(&str, u64, Runner)> = vec![
        (
            "kstreams",
            // The bus-coupled baseline is far slower; give it
            // proportionally less work (rates are size-independent).
            (per_partition / 10).max(1_000),
            Box::new(move |per: u64| {
                let bus = preload_bus(&w1, partitions, per).expect("bus");
                run_kstreams_like(&w1, &bus, per * partitions as u64).expect("kstreams")
            }),
        ),
        (
            "flink",
            per_partition,
            Box::new(move |per: u64| {
                let bus = preload_bus(&w2, partitions, per).expect("bus");
                run_flink_like(&w2, &bus, per * partitions as u64).expect("flink")
            }),
        ),
        (
            "ss",
            per_partition,
            Box::new(move |per: u64| {
                let bus = preload_bus(&w3, partitions, per).expect("bus");
                run_structured_streaming(&w3, bus, per * partitions as u64).expect("ss")
            }),
        ),
    ];

    let mut results: Vec<ThroughputRun> = Vec::new();
    for (name, per, runner) in &systems {
        // Warmup at small scale, then best-of-N timed runs.
        let _ = runner(2_000);
        let mut best: Option<ThroughputRun> = None;
        for _ in 0..reps {
            let run = runner(*per);
            if best
                .as_ref()
                .is_none_or(|b| run.records_per_second() > b.records_per_second())
            {
                best = Some(run);
            }
        }
        let best = best.expect("at least one rep");
        eprintln!("   measured {name}: {}", fmt_rate(best.records_per_second()));
        results.push(best);
    }

    let ss_rate = results
        .iter()
        .find(|r| r.system.starts_with("Structured"))
        .unwrap()
        .records_per_second();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                format!("{}", r.records),
                format!("{:.2}s", r.seconds),
                fmt_rate(r.records_per_second()),
                format!("{:.2}x", ss_rate / r.records_per_second()),
            ]
        })
        .collect();
    print_table(
        &["system", "records", "time", "throughput", "SS advantage"],
        &rows,
    );

    println!("\npaper: SS 65M rec/s vs Flink 33M (2.0x) vs Kafka Streams 0.7M (93x)");
}
