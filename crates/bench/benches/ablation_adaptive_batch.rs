//! **Ablation E4** — adaptive batching during catch-up (§7.3).
//!
//! "Structured Streaming will automatically execute longer epochs in
//! order to catch up with the input streams [...] then return to low
//! latency later." We take a query offline, accumulate a backlog,
//! restart it, and trace epoch sizes with adaptive batching on vs.
//! off. Expected: with adaptation, catch-up epochs grow up to the
//! multiplier and the backlog drains in far fewer epochs; afterwards
//! epochs return to the configured batch size.
//!
//! Usage: `cargo bench -p ss-bench --bench ablation_adaptive_batch`

use std::collections::HashMap;
use std::sync::Arc;

use ss_baselines::workload::YahooWorkload;
use ss_bench::*;
use ss_bus::{BusSource, MemorySink, MessageBus, Source};
use ss_core::microbatch::{EpochRun, MicroBatchConfig, MicroBatchExecution};
use ss_core::prelude::*;
use ss_core::StreamingContext;
use ss_state::MemoryBackend;

fn engine(
    workload: &YahooWorkload,
    bus: Arc<MessageBus>,
    adaptive: bool,
    cap: u64,
) -> MicroBatchExecution {
    let ctx = StreamingContext::new();
    let events = ctx
        .read_source(Arc::new(
            BusSource::new(bus, "ad-events", workload.event_schema()).unwrap(),
        ))
        .unwrap();
    let df = events
        .filter(col("event_type").eq(ss_expr::lit("view")))
        .group_by(vec![col("ad_id")])
        .count();
    let plan = df.plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    // Rebind the source directly (engine-level API for precise control).
    let src = ctx.sources_snapshot();
    for (name, s) in src {
        sources.insert(name, s);
    }
    MicroBatchExecution::new(
        "catchup",
        &plan,
        sources,
        Arc::new(ss_exec::MemoryCatalog::new()),
        MemorySink::new("out"),
        OutputMode::Update,
        Arc::new(MemoryBackend::new()),
        MicroBatchConfig {
            max_records_per_trigger: Some(cap),
            adaptive_batching: adaptive,
            catchup_multiplier: 8,
            ..Default::default()
        },
    )
    .expect("engine")
}

fn main() {
    let workload = YahooWorkload::default();
    let backlog = records_per_partition(400_000);
    let cap = 20_000u64;

    println!("== Ablation E4: adaptive batching during catch-up (§7.3) ==");
    println!("   backlog={backlog} records, normal batch cap={cap}, catch-up multiplier=8\n");

    for adaptive in [false, true] {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("ad-events", 1).unwrap();
        // The job was "offline" while the backlog accumulated.
        let mut start = 0u64;
        while start < backlog {
            let end = (start + 65_536).min(backlog);
            bus.append_at("ad-events", 0, 0, (start..end).map(|o| workload.event(0, o)))
                .unwrap();
            start = end;
        }
        let mut eng = engine(&workload, bus.clone(), adaptive, cap);
        let t0 = std::time::Instant::now();
        let mut epoch_sizes = Vec::new();
        while let EpochRun::Ran(p) = eng.run_epoch().expect("epoch") {
            epoch_sizes.push(p.num_input_rows);
        }
        let catch_up = t0.elapsed().as_secs_f64();
        // Post-catch-up: steady trickle returns to small epochs.
        bus.append_at("ad-events", 0, 0, (0..500).map(|o| workload.event(0, o)))
            .unwrap();
        let steady = match eng.run_epoch().expect("steady epoch") {
            EpochRun::Ran(p) => p.num_input_rows,
            EpochRun::Idle => 0,
        };
        println!(
            "adaptive={adaptive}: caught up in {} epochs, {:.2}s; \
             epoch sizes first/max/last = {}/{}/{}; steady-state epoch = {steady} rows",
            epoch_sizes.len(),
            catch_up,
            epoch_sizes.first().unwrap_or(&0),
            epoch_sizes.iter().max().unwrap_or(&0),
            epoch_sizes.last().unwrap_or(&0),
        );
    }
    println!(
        "\nexpected shape: adaptive=true drains the backlog in ~1/8 the epochs by \
         growing batches, then returns to the small configured batch size (§7.3)"
    );
}
