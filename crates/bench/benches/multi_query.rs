//! **Multi-query sharing** — N concurrent Yahoo-style SQL queries on
//! the shared engine vs. N isolated engines.
//!
//! The multi-query engine (`ss-multi`) promises that N structurally
//! equal queries cost roughly ONE query: one bus read per offset-range
//! (shared scans), one state namespace and one incremental update per
//! epoch (fingerprint-keyed sharing), fanned to N output taps. This
//! bench measures exactly that claim for N = 8 identical Yahoo
//! benchmark queries submitted as SQL text, at engine parallelism 1
//! and 4:
//!
//! * **single**  — one engine, one query (the unit of cost),
//! * **shared**  — one multi-query engine, all 8 queries,
//! * **isolated** — 8 independent engines, one query each.
//!
//! Acceptance (checked here, recorded in `BENCH_multi_query.json`):
//! shared source reads and state bytes stay under 2× the single query
//! (vs. ~8× isolated), and every shared query's sink is byte-identical
//! to its isolated twin's.
//!
//! Usage: `cargo bench -p ss-bench --bench multi_query`
//! (scale with `SS_BENCH_RECORDS=<events per partition>`; output path
//! with `SS_BENCH_OUT=<path>`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use ss_baselines::workload::YahooWorkload;
use ss_bench::*;
use ss_bus::{BusSource, MemorySink, MessageBus};
use ss_core::StreamingContext;
use ss_multi::{MultiQueryConfig, MultiQueryEngine, SqlService};
use ss_plan::OutputMode;

/// The benchmark query, as a client would POST it to the SQL service.
const YAHOO_SQL: &str = "SELECT window_start, campaign_id, COUNT(*) AS views \
     FROM events JOIN campaigns ON ad_id = c_ad_id \
     WHERE event_type = 'view' \
     GROUP BY WINDOW(event_time, '10 seconds'), campaign_id";

const N_QUERIES: usize = 8;

fn out_path() -> PathBuf {
    match std::env::var("SS_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_multi_query.json"),
    }
}

/// Preload a SQL-addressable topic (`events`; the shared helper's
/// `ad-events` is not a SQL identifier) with deterministic Yahoo
/// events.
fn preload_events(
    workload: &YahooWorkload,
    partitions: u32,
    per_partition: u64,
) -> Arc<MessageBus> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("events", partitions).expect("topic");
    for p in 0..partitions {
        let mut start = 0u64;
        while start < per_partition {
            let end = (start + 65_536).min(per_partition);
            bus.append_at("events", p, 0, (start..end).map(|o| workload.event(p, o)))
                .expect("append");
            start = end;
        }
    }
    bus
}

fn make_engine(
    workload: &YahooWorkload,
    bus: &Arc<MessageBus>,
    parallelism: usize,
) -> Arc<MultiQueryEngine> {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus.clone(), "events", workload.event_schema()).expect("source"),
    ))
    .expect("register source");
    ctx.read_table("campaigns", vec![workload.campaign_batch()])
        .expect("register campaigns");
    let mut config = MultiQueryConfig::default();
    // One dispatch worker keeps scan-cache counters deterministic; the
    // `parallelism` under test is the *intra-epoch* worker count.
    config.workers = 1;
    config.engine.parallelism = parallelism;
    Arc::new(MultiQueryEngine::new(ctx, config))
}

struct RunCost {
    seconds: f64,
    source_rows_read: u64,
    state_bytes: u64,
    sinks: Vec<Arc<MemorySink>>,
}

/// All `n` queries on ONE multi-query engine.
fn run_shared(
    workload: &YahooWorkload,
    bus: &Arc<MessageBus>,
    parallelism: usize,
    n: usize,
) -> RunCost {
    let engine = make_engine(workload, bus, parallelism);
    let service = SqlService::new(engine.clone());
    let start = Instant::now();
    let sinks: Vec<Arc<MemorySink>> = (0..n)
        .map(|i| {
            service
                .start_sql(&format!("q{i}"), YAHOO_SQL, "bench", OutputMode::Update)
                .expect("start query")
        })
        .collect();
    let stats = engine.stats();
    assert_eq!(stats.groups, 1, "identical SQL must share one group");
    assert_eq!(stats.attached as usize, n - 1);
    engine.run_until_idle(1_000).expect("drain");
    RunCost {
        seconds: start.elapsed().as_secs_f64(),
        source_rows_read: engine.source_rows_read(),
        state_bytes: engine.state_bytes(),
        sinks,
    }
}

/// `n` queries on `n` independent engines (no sharing possible).
fn run_isolated(
    workload: &YahooWorkload,
    bus: &Arc<MessageBus>,
    parallelism: usize,
    n: usize,
) -> RunCost {
    let start = Instant::now();
    let mut cost = RunCost {
        seconds: 0.0,
        source_rows_read: 0,
        state_bytes: 0,
        sinks: Vec::new(),
    };
    for i in 0..n {
        let engine = make_engine(workload, bus, parallelism);
        let service = SqlService::new(engine.clone());
        let sink = service
            .start_sql(&format!("q{i}"), YAHOO_SQL, "bench", OutputMode::Update)
            .expect("start query");
        engine.run_until_idle(1_000).expect("drain");
        cost.source_rows_read += engine.source_rows_read();
        cost.state_bytes += engine.state_bytes();
        cost.sinks.push(sink);
    }
    cost.seconds = start.elapsed().as_secs_f64();
    cost
}

fn cost_json(c: &RunCost) -> String {
    format!(
        "{{\"seconds\":{:.4},\"source_rows_read\":{},\"state_bytes\":{}}}",
        c.seconds, c.source_rows_read, c.state_bytes
    )
}

fn main() {
    let workload = YahooWorkload::default();
    let partitions = 4u32;
    let per_partition = records_per_partition(25_000);
    let total = per_partition * partitions as u64;

    println!("== Multi-query sharing: {N_QUERIES} identical Yahoo SQL queries ==");
    println!(
        "   {partitions} partitions x {per_partition} events = {total} records; \
         update mode; shared vs {N_QUERIES} isolated engines\n"
    );

    let mut config_blobs = Vec::new();
    for parallelism in [1usize, 4] {
        let bus = preload_events(&workload, partitions, per_partition);
        let single = run_isolated(&workload, &bus, parallelism, 1);
        let shared = run_shared(&workload, &bus, parallelism, N_QUERIES);
        let isolated = run_isolated(&workload, &bus, parallelism, N_QUERIES);

        // Correctness: every shared query's output is byte-identical
        // to its isolated twin's (and to the single-query run's).
        for (i, (s, iso)) in shared.sinks.iter().zip(&isolated.sinks).enumerate() {
            assert_eq!(
                s.snapshot(),
                iso.snapshot(),
                "q{i} @ parallelism {parallelism}: shared != isolated"
            );
        }
        assert_eq!(shared.sinks[0].snapshot(), single.sinks[0].snapshot());

        // The sharing claim: N queries for <2x one query's reads and
        // state, where isolation pays ~Nx.
        let reads_ratio = shared.source_rows_read as f64 / single.source_rows_read as f64;
        let iso_reads_ratio =
            isolated.source_rows_read as f64 / single.source_rows_read as f64;
        let state_ratio = shared.state_bytes as f64 / single.state_bytes as f64;
        let iso_state_ratio = isolated.state_bytes as f64 / single.state_bytes as f64;
        assert!(
            reads_ratio < 2.0,
            "shared reads {reads_ratio:.2}x single (must be < 2x)"
        );
        assert!(
            state_ratio < 2.0,
            "shared state {state_ratio:.2}x single (must be < 2x)"
        );
        assert!(iso_reads_ratio > (N_QUERIES - 1) as f64);

        println!("-- parallelism {parallelism} --");
        print_table(
            &["configuration", "time", "source rows read", "state bytes"],
            &[
                vec![
                    "single (1 query)".into(),
                    format!("{:.2}s", single.seconds),
                    format!("{}", single.source_rows_read),
                    format!("{}", single.state_bytes),
                ],
                vec![
                    format!("shared ({N_QUERIES} queries)"),
                    format!("{:.2}s", shared.seconds),
                    format!("{} ({reads_ratio:.2}x)", shared.source_rows_read),
                    format!("{} ({state_ratio:.2}x)", shared.state_bytes),
                ],
                vec![
                    format!("isolated ({N_QUERIES} engines)"),
                    format!("{:.2}s", isolated.seconds),
                    format!("{} ({iso_reads_ratio:.2}x)", isolated.source_rows_read),
                    format!("{} ({iso_state_ratio:.2}x)", isolated.state_bytes),
                ],
            ],
        );
        println!("   (outputs byte-identical: shared == isolated == single)\n");

        config_blobs.push(format!(
            "    {{\"parallelism\":{parallelism},\
             \"single\":{},\"shared\":{},\"isolated\":{},\
             \"shared_vs_single_reads\":{reads_ratio:.3},\
             \"shared_vs_single_state\":{state_ratio:.3},\
             \"isolated_vs_single_reads\":{iso_reads_ratio:.3},\
             \"isolated_vs_single_state\":{iso_state_ratio:.3},\
             \"output_identical\":true}}",
            cost_json(&single),
            cost_json(&shared),
            cost_json(&isolated),
        ));
    }

    let json = format!(
        "{{\n  \"bench\":\"multi_query\",\n  \"n_queries\":{N_QUERIES},\n  \
         \"records\":{total},\n  \"sql\":\"{}\",\n  \"configs\":[\n{}\n  ]\n}}\n",
        YAHOO_SQL.replace('"', "\\\""),
        config_blobs.join(",\n")
    );
    let path = out_path();
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {}", path.display());
}
