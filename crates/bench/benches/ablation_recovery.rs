//! **Ablation E5** — fault and straggler recovery (§6.2, §7.5).
//!
//! Microbatch mode "can recover from node failures, stragglers and
//! load imbalances using Spark's fine-grained task execution model":
//!
//! * node failure → only the lost tasks re-run ("instead of having to
//!   roll back the whole cluster to a checkpoint");
//! * stragglers → speculative backup copies bound the tail.
//!
//! We run the calibrated cluster simulation of a Yahoo-style epoch and
//! inject each fault, reporting the job-time overhead vs. a clean run.
//!
//! Usage: `cargo bench -p ss-bench --bench ablation_recovery`

use ss_bench::print_table;
use ss_cluster::{ClusterSpec, CostModel, Fault, SimCluster, Stage};

fn main() {
    let spec = ClusterSpec::c3_2xlarge(5); // 40 cores, the paper's §9.1 cluster
    let cost = CostModel::from_measured_rate(2_000_000.0, 2_000.0);
    let records: u64 = 80_000_000;
    // 4 tasks per core — fine-grained tasks are what §6.2 credits for
    // cheap recovery.
    let stages = || vec![Stage::even("map+agg", spec.total_cores() * 4, records)];

    println!("== Ablation E5: fault & straggler recovery (§6.2) ==");
    println!(
        "   cluster: {} nodes x {} cores, {} tasks over {} records\n",
        spec.nodes,
        spec.cores_per_node,
        spec.total_cores() * 4,
        records
    );

    let clean = SimCluster::new(spec, cost).run_job(&stages()).expect("clean run");

    let fail_mid = SimCluster::new(spec, cost)
        .with_fault(Fault::NodeFailure {
            node: 2,
            at_us: clean.duration_us * 0.5,
        })
        .run_job(&stages())
        .expect("failure run");

    let straggler = |speculation: bool| {
        let sim = SimCluster::new(spec, cost).with_fault(Fault::Straggler {
            node: 4,
            from_us: 0.0,
            speed: 0.1,
        });
        let sim = if speculation { sim } else { sim.without_speculation() };
        sim.run_job(&stages()).expect("straggler run")
    };
    let strag_spec = straggler(true);
    let strag_nospec = straggler(false);

    let row = |name: &str, r: &ss_cluster::JobResult| {
        vec![
            name.to_string(),
            format!("{:.1} ms", r.duration_us / 1000.0),
            format!("{:+.1}%", 100.0 * (r.duration_us / clean.duration_us - 1.0)),
            format!("{}", r.reruns_after_failure),
            format!("{}", r.speculative_launched),
        ]
    };
    print_table(
        &["scenario", "job time", "overhead", "tasks re-run", "speculative copies"],
        &[
            row("clean", &clean),
            row("node failure at 50%", &fail_mid),
            row("10x straggler node, speculation ON", &strag_spec),
            row("10x straggler node, speculation OFF", &strag_nospec),
        ],
    );
    println!(
        "\nexpected shape: failure overhead is proportional to the lost tasks only \
         (fine-grained recovery, §6.2); speculation bounds the straggler tail that \
         otherwise dominates job time (§7.5)"
    );
}
