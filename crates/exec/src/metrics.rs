//! Batch-executor instrumentation: per-operator output row counts and
//! evaluation time, registered under `ss_exec_*`.

use ss_common::MetricsRegistry;

/// Records per-operator row counts (`ss_exec_rows_total{op=...}`) and
/// evaluation latency (`ss_exec_eval_us{op=...}`) for the batch
/// executor. Durations are *inclusive*: a node's time contains its
/// children's, mirroring how a profiler flame graph reads.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    registry: MetricsRegistry,
}

impl ExecMetrics {
    pub fn new(registry: &MetricsRegistry) -> ExecMetrics {
        registry.describe("ss_exec_rows_total", "Rows produced per batch operator.");
        registry.describe(
            "ss_exec_eval_us",
            "Inclusive per-operator evaluation time in the batch executor.",
        );
        ExecMetrics {
            registry: registry.clone(),
        }
    }

    /// Record one evaluation of operator `op` producing `rows` rows in
    /// `eval_us` microseconds.
    pub fn record(&self, op: &str, rows: u64, eval_us: u64) {
        self.registry
            .counter("ss_exec_rows_total", &[("op", op)])
            .add(rows);
        self.registry
            .histogram("ss_exec_eval_us", &[("op", op)])
            .observe(eval_us);
    }
}
