//! # ss-exec — vectorized physical operators and the batch executor
//!
//! The execution layer of the relational engine (the stand-in for Spark
//! SQL's physical operators, §5.2/§5.3):
//!
//! * [`ops`] — stateless per-batch operators: filter, project, sort,
//!   limit, distinct.
//! * [`aggregate`] — [`HashAggregator`]: hash aggregation with group
//!   keys, event-time window expansion (tumbling *and* sliding), partial
//!   states that serialize to/from the state store, per-epoch
//!   changed-key tracking and watermark-based finalization. This is the
//!   operator the incrementalizer maps a streaming `Aggregate` onto.
//! * [`join`] — hash equi-joins (inner / left-outer / right-outer) and
//!   the symmetric-join building blocks the streaming engine buffers.
//! * [`executor`] — executes a whole [`LogicalPlan`] over a
//!   [`Catalog`] of named tables; this is the batch path, and also what
//!   the paper's "run the same code as a batch job" (§7.3) uses.
//!
//! [`LogicalPlan`]: ss_plan::LogicalPlan
//! [`HashAggregator`]: aggregate::HashAggregator
//! [`Catalog`]: executor::Catalog

pub mod aggregate;
pub mod executor;
pub mod join;
pub mod metrics;
pub mod ops;

pub use aggregate::{HashAggregator, KeyExpander};
pub use executor::{execute, execute_with_metrics, Catalog, MemoryCatalog};
pub use join::hash_join;
pub use metrics::ExecMetrics;
