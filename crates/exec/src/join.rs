//! Hash equi-joins (inner, left-outer, right-outer).
//!
//! The build side is the right input; the probe side streams the left.
//! NULL join keys never match (SQL equi-join semantics). Output schema
//! is the concatenation of the two inputs, with the null-extended side
//! of an outer join marked nullable — identical to
//! `LogicalPlan::Join::schema`.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use ss_common::{Column, Field, RecordBatch, Result, Row, Schema, SchemaRef};
use ss_expr::eval::evaluate;
use ss_expr::Expr;
// (evaluate is used by both the generic and fast join paths)
use ss_plan::JoinType;

/// The output schema of a join between two inputs.
pub fn join_output_schema(
    left: &Schema,
    right: &Schema,
    join_type: JoinType,
) -> SchemaRef {
    let lf: Vec<Field> = left
        .fields()
        .iter()
        .map(|f| {
            if join_type == JoinType::RightOuter {
                f.as_nullable()
            } else {
                f.clone()
            }
        })
        .collect();
    let rf: Vec<Field> = right
        .fields()
        .iter()
        .map(|f| {
            if join_type == JoinType::LeftOuter {
                f.as_nullable()
            } else {
                f.clone()
            }
        })
        .collect();
    Arc::new(Schema::from(lf).join(&Schema::from(rf)))
}

/// Evaluate the join-key expressions for one side into per-row key
/// rows; a key containing any NULL is `None` (never matches).
pub fn evaluate_keys(batch: &RecordBatch, exprs: &[Expr]) -> Result<Vec<Option<Row>>> {
    let cols: Vec<Column> = exprs
        .iter()
        .map(|e| evaluate(e, batch))
        .collect::<Result<_>>()?;
    let mut out = Vec::with_capacity(batch.num_rows());
    for i in 0..batch.num_rows() {
        if cols.iter().any(|c| !c.is_valid(i)) {
            out.push(None);
        } else {
            out.push(Some(Row::new(cols.iter().map(|c| c.value(i)).collect())));
        }
    }
    Ok(out)
}

/// Hash join of two batches on `left_keys[i] = right_keys[i]`.
pub fn hash_join(
    left: &RecordBatch,
    right: &RecordBatch,
    join_type: JoinType,
    on: &[(Expr, Expr)],
) -> Result<RecordBatch> {
    hash_join_projected(left, right, join_type, on, None)
}

/// Hash join that materializes only the projected output columns
/// (indices into the concatenated left+right output schema) — callers
/// that immediately drop the join keys (e.g. an aggregation above the
/// join) skip building them entirely.
pub fn hash_join_projected(
    left: &RecordBatch,
    right: &RecordBatch,
    join_type: JoinType,
    on: &[(Expr, Expr)],
    output_projection: Option<&[usize]>,
) -> Result<RecordBatch> {
    let left_exprs: Vec<Expr> = on.iter().map(|(l, _)| l.clone()).collect();
    let right_exprs: Vec<Expr> = on.iter().map(|(_, r)| r.clone()).collect();

    // Fast path: a single integer-typed key hashes raw i64s instead of
    // boxed rows (the Yahoo benchmark's join shape).
    let (left_idx, right_idx) = if on.len() == 1 {
        let lcol = evaluate(&left_exprs[0], left)?;
        let rcol = evaluate(&right_exprs[0], right)?;
        match (&lcol, &rcol) {
            (
                Column::Int64(lc) | Column::Timestamp(lc),
                Column::Int64(rc) | Column::Timestamp(rc),
            ) => probe_i64(lc, rc, join_type),
            _ => {
                let left_keys = evaluate_keys(left, &left_exprs)?;
                let right_keys = evaluate_keys(right, &right_exprs)?;
                probe_rows(&left_keys, &right_keys, join_type)
            }
        }
    } else {
        let left_keys = evaluate_keys(left, &left_exprs)?;
        let right_keys = evaluate_keys(right, &right_exprs)?;
        probe_rows(&left_keys, &right_keys, join_type)
    };

    let full_schema = join_output_schema(left.schema(), right.schema(), join_type);
    let n_left = left.num_columns();
    let build = |i: usize| {
        if i < n_left {
            left.column(i).take_opt(&left_idx)
        } else {
            right.column(i - n_left).take_opt(&right_idx)
        }
    };
    match output_projection {
        None => {
            let columns = (0..full_schema.len()).map(build).collect();
            RecordBatch::try_new(full_schema, columns)
        }
        Some(idx) => {
            let schema = Arc::new(full_schema.project(idx)?);
            let columns = idx.iter().map(|&i| build(i)).collect();
            RecordBatch::try_new(schema, columns)
        }
    }
}

type JoinIndices = (Vec<Option<usize>>, Vec<Option<usize>>);

fn probe_rows(
    left_keys: &[Option<Row>],
    right_keys: &[Option<Row>],
    join_type: JoinType,
) -> JoinIndices {
    let mut table: FxHashMap<&Row, Vec<usize>> = FxHashMap::default();
    for (i, k) in right_keys.iter().enumerate() {
        if let Some(k) = k {
            table.entry(k).or_default().push(i);
        }
    }
    let mut left_idx: Vec<Option<usize>> = Vec::with_capacity(left_keys.len());
    let mut right_idx: Vec<Option<usize>> = Vec::with_capacity(left_keys.len());
    let mut right_matched = vec![false; right_keys.len()];
    for (li, k) in left_keys.iter().enumerate() {
        match k.as_ref().and_then(|k| table.get(k)) {
            Some(ris) => {
                for &ri in ris {
                    left_idx.push(Some(li));
                    right_idx.push(Some(ri));
                    right_matched[ri] = true;
                }
            }
            None => {
                if join_type == JoinType::LeftOuter {
                    left_idx.push(Some(li));
                    right_idx.push(None);
                }
            }
        }
    }
    pad_right_outer(join_type, &right_matched, &mut left_idx, &mut right_idx);
    (left_idx, right_idx)
}

fn probe_i64(
    left: &ss_common::column::TypedColumn<i64>,
    right: &ss_common::column::TypedColumn<i64>,
    join_type: JoinType,
) -> JoinIndices {
    let mut table: FxHashMap<i64, Vec<usize>> = FxHashMap::default();
    for i in 0..right.len() {
        if let Some(&k) = right.get(i) {
            table.entry(k).or_default().push(i);
        }
    }
    let mut left_idx: Vec<Option<usize>> = Vec::with_capacity(left.len());
    let mut right_idx: Vec<Option<usize>> = Vec::with_capacity(left.len());
    let mut right_matched = vec![false; right.len()];
    for li in 0..left.len() {
        match left.get(li).and_then(|k| table.get(k)) {
            Some(ris) => {
                for &ri in ris {
                    left_idx.push(Some(li));
                    right_idx.push(Some(ri));
                    right_matched[ri] = true;
                }
            }
            None => {
                if join_type == JoinType::LeftOuter {
                    left_idx.push(Some(li));
                    right_idx.push(None);
                }
            }
        }
    }
    pad_right_outer(join_type, &right_matched, &mut left_idx, &mut right_idx);
    (left_idx, right_idx)
}

fn pad_right_outer(
    join_type: JoinType,
    right_matched: &[bool],
    left_idx: &mut Vec<Option<usize>>,
    right_idx: &mut Vec<Option<usize>>,
) {
    if join_type == JoinType::RightOuter {
        for (ri, matched) in right_matched.iter().enumerate() {
            if !matched {
                left_idx.push(None);
                right_idx.push(Some(ri));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::{row, DataType, Value};
    use ss_expr::col;

    fn ads() -> RecordBatch {
        RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("ad_id", DataType::Int64),
                Field::new("kind", DataType::Utf8),
            ]),
            &[
                row![1i64, "view"],
                row![2i64, "view"],
                row![9i64, "view"],
                row![Value::Null, "view"],
            ],
        )
        .unwrap()
    }

    fn campaigns() -> RecordBatch {
        RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("c_ad_id", DataType::Int64),
                Field::new("campaign", DataType::Utf8),
            ]),
            &[row![1i64, "c1"], row![2i64, "c2"], row![3i64, "c3"]],
        )
        .unwrap()
    }

    fn on() -> Vec<(Expr, Expr)> {
        vec![(col("ad_id"), col("c_ad_id"))]
    }

    #[test]
    fn inner_join_matches_keys() {
        let out = hash_join(&ads(), &campaigns(), JoinType::Inner, &on()).unwrap();
        assert_eq!(
            out.to_rows(),
            vec![
                row![1i64, "view", 1i64, "c1"],
                row![2i64, "view", 2i64, "c2"],
            ]
        );
    }

    #[test]
    fn left_outer_pads_unmatched_left_rows() {
        let out = hash_join(&ads(), &campaigns(), JoinType::LeftOuter, &on()).unwrap();
        assert_eq!(out.num_rows(), 4);
        // ad_id=9 and the NULL key get NULL campaign columns.
        let r9 = out.to_rows();
        assert_eq!(r9[2], row![9i64, "view", Value::Null, Value::Null]);
        assert_eq!(r9[3], row![Value::Null, "view", Value::Null, Value::Null]);
        // Right fields are nullable in the output schema.
        assert!(out.schema().field(3).nullable);
    }

    #[test]
    fn right_outer_pads_unmatched_right_rows() {
        let out = hash_join(&ads(), &campaigns(), JoinType::RightOuter, &on()).unwrap();
        assert_eq!(out.num_rows(), 3);
        let rows = out.to_rows();
        assert_eq!(rows[2], row![Value::Null, Value::Null, 3i64, "c3"]);
    }

    #[test]
    fn null_keys_never_match() {
        let left = RecordBatch::from_rows(
            Schema::of(vec![Field::new("k", DataType::Int64)]),
            &[row![Value::Null]],
        )
        .unwrap();
        let right = RecordBatch::from_rows(
            Schema::of(vec![Field::new("k2", DataType::Int64)]),
            &[row![Value::Null]],
        )
        .unwrap();
        let out = hash_join(&left, &right, JoinType::Inner, &[(col("k"), col("k2"))]).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn duplicate_build_keys_produce_all_pairs() {
        let right = RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("c_ad_id", DataType::Int64),
                Field::new("campaign", DataType::Utf8),
            ]),
            &[row![1i64, "c1"], row![1i64, "c1b"]],
        )
        .unwrap();
        let out = hash_join(&ads(), &right, JoinType::Inner, &on()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn multi_key_join() {
        let left = RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8),
            ]),
            &[row![1i64, "x"], row![1i64, "y"]],
        )
        .unwrap();
        let right = RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("a2", DataType::Int64),
                Field::new("b2", DataType::Utf8),
            ]),
            &[row![1i64, "x"]],
        )
        .unwrap();
        let out = hash_join(
            &left,
            &right,
            JoinType::Inner,
            &[(col("a"), col("a2")), (col("b"), col("b2"))],
        )
        .unwrap();
        assert_eq!(out.to_rows(), vec![row![1i64, "x", 1i64, "x"]]);
    }

    #[test]
    fn empty_inputs() {
        let empty_left = RecordBatch::empty(ads().schema().clone());
        let out = hash_join(&empty_left, &campaigns(), JoinType::Inner, &on()).unwrap();
        assert_eq!(out.num_rows(), 0);
        let out = hash_join(&empty_left, &campaigns(), JoinType::RightOuter, &on()).unwrap();
        assert_eq!(out.num_rows(), 3);
    }
}
