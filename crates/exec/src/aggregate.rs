//! Hash aggregation: the operator a streaming `Aggregate` maps onto.
//!
//! [`HashAggregator`] is used two ways:
//!
//! * **Batch**: feed every input batch with [`HashAggregator::update_batch`],
//!   then read the full result with [`HashAggregator::finish_all`].
//! * **Streaming** (`StatefulAggregate`, §5.2): the aggregator *is* the
//!   operator state. Each epoch feeds its new data, then:
//!   - Update mode emits [`HashAggregator::take_changed`] keys,
//!   - Complete mode emits `finish_all`,
//!   - Append mode emits [`HashAggregator::drain_finalized`] once the
//!     event-time watermark passes a window's end (§4.3.1), which also
//!     evicts that window's state.
//!
//!   The `state_entries` / `restore_entry` pair serializes the group map
//!   to the state store for checkpointing (§6.1).
//!
//! Event-time windows: one `window()` grouping key is supported; each
//! row expands into `size/slide` windows (one for tumbling windows), the
//! same assignment Spark's window expression produces. Rows whose
//! timestamp is NULL are dropped from windowed aggregation, as in Spark.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use ss_common::{
    Column, DataType, Field, RecordBatch, Result, Row, Schema, SchemaRef, SsError, Value,
};
use ss_expr::agg::Accumulator;
use ss_expr::eval::evaluate;
use ss_expr::{AggregateExpr, Expr};
use ss_plan::plan::strip_alias;

/// The window grouping key, if any.
#[derive(Debug, Clone)]
struct WindowSpec {
    /// Index of the window expression within `group_exprs`.
    slot: usize,
    time: Expr,
    size_us: i64,
    slide_us: i64,
}

/// One group's live state: its accumulators plus a dirty flag for
/// per-epoch changed-key tracking (a flag write per row is much
/// cheaper than maintaining a separate changed-key set on the hot
/// path).
struct GroupEntry {
    accs: Vec<Accumulator>,
    dirty: bool,
}

/// Hash aggregation with mergeable, serializable group state.
pub struct HashAggregator {
    input_schema: SchemaRef,
    group_exprs: Vec<Expr>,
    window: Option<WindowSpec>,
    aggregates: Vec<AggregateExpr>,
    output_schema: SchemaRef,
    /// Key layout: one value per group expression, with the window slot
    /// holding the window *start* timestamp.
    groups: FxHashMap<Row, GroupEntry>,
}

impl HashAggregator {
    pub fn new(
        input_schema: SchemaRef,
        group_exprs: Vec<Expr>,
        aggregates: Vec<AggregateExpr>,
    ) -> Result<HashAggregator> {
        let mut window = None;
        for (i, g) in group_exprs.iter().enumerate() {
            if let Expr::Window {
                time,
                size_us,
                slide_us,
            } = strip_alias(g)
            {
                if window.is_some() {
                    return Err(SsError::Plan(
                        "at most one window() grouping key is supported".into(),
                    ));
                }
                window = Some(WindowSpec {
                    slot: i,
                    time: (**time).clone(),
                    size_us: *size_us,
                    slide_us: *slide_us,
                });
            }
        }
        let output_schema = Self::compute_output_schema(&input_schema, &group_exprs, &aggregates)?;
        Ok(HashAggregator {
            input_schema,
            group_exprs,
            window,
            aggregates,
            output_schema,
            groups: FxHashMap::default(),
        })
    }

    fn compute_output_schema(
        input_schema: &Schema,
        group_exprs: &[Expr],
        aggregates: &[AggregateExpr],
    ) -> Result<SchemaRef> {
        let mut fields = Vec::new();
        for g in group_exprs {
            if let Expr::Window { .. } = strip_alias(g) {
                fields.push(Field::not_null("window_start", DataType::Timestamp));
                fields.push(Field::not_null("window_end", DataType::Timestamp));
            } else {
                fields.push(Field {
                    name: g.output_name(),
                    data_type: g.data_type(input_schema)?,
                    nullable: g.nullable(input_schema),
                });
            }
        }
        for a in aggregates {
            fields.push(Field::new(a.output_name(), a.result_type(input_schema)?));
        }
        Ok(Arc::new(Schema::new(fields)?))
    }

    /// The aggregation output schema (window keys expanded to
    /// start/end).
    pub fn output_schema(&self) -> &SchemaRef {
        &self.output_schema
    }

    /// The input schema this aggregator was planned against.
    pub fn input_schema(&self) -> &SchemaRef {
        &self.input_schema
    }

    /// Number of live groups (= state size, the metric §2.3 says
    /// operators monitor).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// True if the grouping includes an event-time window.
    pub fn is_windowed(&self) -> bool {
        self.window.is_some()
    }

    /// Number of leading output columns that form the group key
    /// (window keys count as two: start and end).
    pub fn num_key_columns(&self) -> usize {
        self.output_schema.len() - self.aggregates.len()
    }

    /// Ingest one batch of input rows.
    pub fn update_batch(&mut self, batch: &RecordBatch) -> Result<()> {
        if batch.num_rows() == 0 {
            return Ok(());
        }
        // Evaluate grouping columns (the window slot gets the raw
        // timestamp; expansion happens per row below).
        let mut key_cols: Vec<Column> = Vec::with_capacity(self.group_exprs.len());
        for (i, g) in self.group_exprs.iter().enumerate() {
            let col = match &self.window {
                Some(w) if w.slot == i => evaluate(&w.time, batch)?,
                _ => evaluate(g, batch)?,
            };
            key_cols.push(col);
        }
        // Evaluate aggregate argument columns once, vectorized.
        let arg_cols: Vec<Option<Column>> = self
            .aggregates
            .iter()
            .map(|a| a.arg.as_ref().map(|e| evaluate(e, batch)).transpose())
            .collect::<Result<_>>()?;

        // Typed access to the window timestamp column (avoids a Value
        // allocation per row on the hot path).
        let window_info = match &self.window {
            Some(w) => {
                let tc = key_cols[w.slot].as_i64()?.clone();
                Some((w.slot, w.size_us, w.slide_us, tc))
            }
            None => None,
        };
        let n_keys = self.group_exprs.len();
        let mut key_buf: Vec<Value> = Vec::with_capacity(n_keys);
        // Sliding windows need the expansion list; tumbling windows
        // (the common case) take the inline single-window path.
        let mut starts_buf: Vec<i64> = Vec::new();
        for row in 0..batch.num_rows() {
            starts_buf.clear();
            match &window_info {
                Some((_, size, slide, tc)) => match tc.get(row) {
                    // Rows with NULL event time are dropped.
                    None => continue,
                    Some(&ts) if slide == size => {
                        starts_buf.push(ss_common::time::window_start(ts, *size, 0));
                    }
                    Some(&ts) => {
                        starts_buf.extend(
                            ss_common::time::windows_for(ts, *size, *slide)
                                .into_iter()
                                .map(|(s, _)| s),
                        );
                    }
                },
                None => starts_buf.push(0),
            }
            for &start in &starts_buf {
                key_buf.clear();
                for (i, kc) in key_cols.iter().enumerate() {
                    match &window_info {
                        Some((slot, ..)) if *slot == i => key_buf.push(Value::Timestamp(start)),
                        _ => key_buf.push(kc.value(row)),
                    }
                }
                // Look up without cloning the key; the buffer is
                // recycled when the group already exists.
                let key = Row::new(std::mem::take(&mut key_buf));
                match self.groups.get_mut(&key) {
                    Some(entry) => {
                        for (acc, arg) in entry.accs.iter_mut().zip(&arg_cols) {
                            match arg {
                                Some(col) => acc.update_value(&col.value(row))?,
                                // count(*): any non-NULL value counts.
                                None => acc.update_value(&Value::Int64(1))?,
                            }
                        }
                        entry.dirty = true;
                        key_buf = key.0;
                    }
                    None => {
                        let mut accs: Vec<Accumulator> = self
                            .aggregates
                            .iter()
                            .map(|a| a.create_accumulator())
                            .collect();
                        for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
                            match arg {
                                Some(col) => acc.update_value(&col.value(row))?,
                                None => acc.update_value(&Value::Int64(1))?,
                            }
                        }
                        self.groups.insert(key, GroupEntry { accs, dirty: true });
                        key_buf = Vec::with_capacity(n_keys);
                    }
                }
            }
        }
        Ok(())
    }

    /// Keys whose aggregates changed since the last call (dirty flags
    /// are reset). This is what Update output mode emits per epoch.
    pub fn take_changed(&mut self) -> Vec<Row> {
        let mut keys: Vec<Row> = Vec::new();
        for (k, entry) in self.groups.iter_mut() {
            if entry.dirty {
                entry.dirty = false;
                keys.push(k.clone());
            }
        }
        keys.sort();
        keys
    }

    /// Build output rows for specific keys (must exist).
    pub fn output_for_keys(&self, keys: &[Row]) -> Result<RecordBatch> {
        let rows: Vec<Row> = keys
            .iter()
            .map(|k| {
                let entry = self.groups.get(k).ok_or_else(|| {
                    SsError::Internal(format!("output_for_keys: unknown group {k}"))
                })?;
                Ok(self.output_row(k, &entry.accs))
            })
            .collect::<Result<_>>()?;
        RecordBatch::from_rows(self.output_schema.clone(), &rows)
    }

    /// The whole result table, sorted by key for determinism (Complete
    /// mode / batch execution).
    pub fn finish_all(&self) -> Result<RecordBatch> {
        let mut keys: Vec<&Row> = self.groups.keys().collect();
        keys.sort();
        let rows: Vec<Row> = keys
            .iter()
            .map(|k| self.output_row(k, &self.groups[*k].accs))
            .collect();
        RecordBatch::from_rows(self.output_schema.clone(), &rows)
    }

    /// Append-mode finalization: emit and evict every windowed group
    /// whose `window_end <= watermark_us`. Returns the finalized rows
    /// sorted by key. Errors if the grouping has no window (such
    /// queries cannot use Append mode; the analyzer enforces this).
    pub fn drain_finalized(&mut self, watermark_us: i64) -> Result<RecordBatch> {
        let w = self.window.as_ref().ok_or_else(|| {
            SsError::Plan("append finalization requires a window() grouping key".into())
        })?;
        let size = w.size_us;
        let slot = w.slot;
        let mut done: Vec<Row> = self
            .groups
            .keys()
            .filter(|k| match k.get(slot) {
                Value::Timestamp(start) => start + size <= watermark_us,
                _ => false,
            })
            .cloned()
            .collect();
        done.sort();
        let rows: Vec<Row> = done
            .iter()
            .map(|k| {
                let entry = self.groups.remove(k).expect("key just listed");
                self.output_row(k, &entry.accs)
            })
            .collect();
        RecordBatch::from_rows(self.output_schema.clone(), &rows)
    }

    /// Drop windowed state older than the watermark *without* emitting
    /// (used in Update mode to bound state per §4.3.1). Returns the
    /// evicted keys so callers can mirror the removal in the state
    /// store.
    pub fn evict_expired(&mut self, watermark_us: i64) -> Vec<Row> {
        let Some(w) = &self.window else { return Vec::new() };
        let size = w.size_us;
        let slot = w.slot;
        let mut evicted = Vec::new();
        self.groups.retain(|k, _| match k.get(slot) {
            Value::Timestamp(start) => {
                let keep = start + size > watermark_us;
                if !keep {
                    evicted.push(k.clone());
                }
                keep
            }
            _ => true,
        });
        evicted.sort();
        evicted
    }

    fn output_row(&self, key: &Row, accs: &[Accumulator]) -> Row {
        let mut out = Vec::with_capacity(self.output_schema.len());
        for (i, v) in key.values().iter().enumerate() {
            match &self.window {
                Some(w) if w.slot == i => {
                    let start = match v {
                        Value::Timestamp(s) => *s,
                        _ => unreachable!("window slot always holds a timestamp"),
                    };
                    out.push(Value::Timestamp(start));
                    out.push(Value::Timestamp(start + w.size_us));
                }
                _ => out.push(v.clone()),
            }
        }
        for a in accs {
            out.push(a.evaluate());
        }
        Row::new(out)
    }

    // ---- state-store integration (§6.1) ----

    /// The partial states of one group, if present.
    pub fn state_for_key(&self, key: &Row) -> Option<Vec<Row>> {
        self.groups
            .get(key)
            .map(|e| e.accs.iter().map(|a| a.state()).collect())
    }

    /// Iterate `(key, per-aggregate partial states)` for checkpointing.
    pub fn state_entries(&self) -> impl Iterator<Item = (&Row, Vec<Row>)> + '_ {
        self.groups
            .iter()
            .map(|(k, e)| (k, e.accs.iter().map(|a| a.state()).collect()))
    }

    /// Restore (or merge) one checkpointed entry.
    pub fn restore_entry(&mut self, key: Row, states: &[Row]) -> Result<()> {
        if states.len() != self.aggregates.len() {
            return Err(SsError::Serde(format!(
                "state entry has {} aggregates, expected {}",
                states.len(),
                self.aggregates.len()
            )));
        }
        let entry = self.groups.entry(key).or_insert_with(|| GroupEntry {
            accs: self
                .aggregates
                .iter()
                .map(|a| a.create_accumulator())
                .collect(),
            dirty: false,
        });
        for (acc, st) in entry.accs.iter_mut().zip(states) {
            acc.merge(st)?;
        }
        Ok(())
    }

    /// Clear all state (used when rebuilding from a checkpoint).
    pub fn clear(&mut self) {
        self.groups.clear();
    }

    // ---- data-parallel execution (partial/merge split) ----

    /// An empty aggregator with the same configuration — the shard
    /// constructor for partitioned execution (each reduce partition
    /// owns one clone holding only its keys' state).
    pub fn fresh_clone(&self) -> HashAggregator {
        HashAggregator {
            input_schema: self.input_schema.clone(),
            group_exprs: self.group_exprs.clone(),
            window: self.window.clone(),
            aggregates: self.aggregates.clone(),
            output_schema: self.output_schema.clone(),
            groups: FxHashMap::default(),
        }
    }

    /// The map-side half of this aggregator: evaluates grouping keys
    /// (with window expansion) and aggregate arguments, without
    /// touching any group state. Map tasks run this per input
    /// partition; the resulting pairs are shuffled by key.
    pub fn key_expander(&self) -> KeyExpander {
        KeyExpander {
            group_exprs: self.group_exprs.clone(),
            window: self.window.clone(),
            aggregates: self.aggregates.clone(),
        }
    }

    /// Reduce-side ingest of shuffled `(key, argument-values)` pairs
    /// produced by [`KeyExpander::expand`].
    ///
    /// Pairs must arrive in the original arrival order of their source
    /// rows; each accumulator then sees exactly the same update
    /// sequence as [`HashAggregator::update_batch`] would have fed it,
    /// so results are bit-identical to serial execution even for
    /// non-associative float accumulation.
    pub fn update_pairs(&mut self, pairs: Vec<(Row, Row)>) -> Result<()> {
        for (key, args) in pairs {
            if args.len() != self.aggregates.len() {
                return Err(SsError::Internal(format!(
                    "shuffled pair has {} argument values, expected {}",
                    args.len(),
                    self.aggregates.len()
                )));
            }
            match self.groups.get_mut(&key) {
                Some(entry) => {
                    for (acc, v) in entry.accs.iter_mut().zip(args.values()) {
                        acc.update_value(v)?;
                    }
                    entry.dirty = true;
                }
                None => {
                    let mut accs: Vec<Accumulator> = self
                        .aggregates
                        .iter()
                        .map(|a| a.create_accumulator())
                        .collect();
                    for (acc, v) in accs.iter_mut().zip(args.values()) {
                        acc.update_value(v)?;
                    }
                    self.groups.insert(key, GroupEntry { accs, dirty: true });
                }
            }
        }
        Ok(())
    }

    /// Drain every group as `(key, per-aggregate partial state)`,
    /// sorted by key. The partial half of the partial/merge kernel
    /// split: used to move state between shards when the partition
    /// count changes, and by opt-in map-side combining.
    pub fn take_partials(&mut self) -> Vec<(Row, Vec<Row>)> {
        let mut out: Vec<(Row, Vec<Row>)> = self
            .groups
            .drain()
            .map(|(k, e)| (k, e.accs.iter().map(|a| a.state()).collect()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Merge one partial state produced by [`HashAggregator::take_partials`]
    /// into this aggregator, marking the group changed this epoch.
    /// Unlike [`HashAggregator::restore_entry`] (checkpoint restore,
    /// which leaves groups clean), merged partials represent new data
    /// and must show up in `take_changed`.
    pub fn merge_partial(&mut self, key: Row, states: &[Row]) -> Result<()> {
        self.restore_entry(key.clone(), states)?;
        if let Some(entry) = self.groups.get_mut(&key) {
            entry.dirty = true;
        }
        Ok(())
    }
}

/// The map-side half of a [`HashAggregator`]: key evaluation, window
/// expansion and aggregate-argument evaluation, with no group state.
///
/// [`KeyExpander::expand`] preserves arrival order — pair `i` comes
/// from an earlier (row, window) visit than pair `i+1` — which is what
/// lets the reduce side replay serial accumulation order per key.
#[derive(Debug, Clone)]
pub struct KeyExpander {
    group_exprs: Vec<Expr>,
    window: Option<WindowSpec>,
    aggregates: Vec<AggregateExpr>,
}

impl KeyExpander {
    /// Expand a batch into `(group key, aggregate-argument values)`
    /// pairs, in arrival order. Rows with NULL event time are dropped
    /// and sliding windows fan one row out to `size/slide` pairs,
    /// exactly as [`HashAggregator::update_batch`] does.
    pub fn expand(&self, batch: &RecordBatch) -> Result<Vec<(Row, Row)>> {
        let mut pairs = Vec::new();
        if batch.num_rows() == 0 {
            return Ok(pairs);
        }
        let mut key_cols: Vec<Column> = Vec::with_capacity(self.group_exprs.len());
        for (i, g) in self.group_exprs.iter().enumerate() {
            let col = match &self.window {
                Some(w) if w.slot == i => evaluate(&w.time, batch)?,
                _ => evaluate(g, batch)?,
            };
            key_cols.push(col);
        }
        let arg_cols: Vec<Option<Column>> = self
            .aggregates
            .iter()
            .map(|a| a.arg.as_ref().map(|e| evaluate(e, batch)).transpose())
            .collect::<Result<_>>()?;
        let window_info = match &self.window {
            Some(w) => {
                let tc = key_cols[w.slot].as_i64()?.clone();
                Some((w.slot, w.size_us, w.slide_us, tc))
            }
            None => None,
        };
        let mut starts_buf: Vec<i64> = Vec::new();
        for row in 0..batch.num_rows() {
            starts_buf.clear();
            match &window_info {
                Some((_, size, slide, tc)) => match tc.get(row) {
                    None => continue,
                    Some(&ts) if slide == size => {
                        starts_buf.push(ss_common::time::window_start(ts, *size, 0));
                    }
                    Some(&ts) => {
                        starts_buf.extend(
                            ss_common::time::windows_for(ts, *size, *slide)
                                .into_iter()
                                .map(|(s, _)| s),
                        );
                    }
                },
                None => starts_buf.push(0),
            }
            for &start in &starts_buf {
                let mut key = Vec::with_capacity(self.group_exprs.len());
                for (i, kc) in key_cols.iter().enumerate() {
                    match &window_info {
                        Some((slot, ..)) if *slot == i => key.push(Value::Timestamp(start)),
                        _ => key.push(kc.value(row)),
                    }
                }
                let args: Vec<Value> = arg_cols
                    .iter()
                    .map(|arg| match arg {
                        Some(col) => col.value(row),
                        None => Value::Int64(1),
                    })
                    .collect();
                pairs.push((Row::new(key), Row::new(args)));
            }
        }
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::row;
    use ss_common::time::secs;
    use ss_expr::{avg, col, count_star, sum, window, window_sliding};

    fn schema() -> SchemaRef {
        Schema::of(vec![
            Field::new("campaign", DataType::Utf8),
            Field::new("time", DataType::Timestamp),
            Field::new("v", DataType::Int64),
        ])
    }

    fn batch(rows: &[Row]) -> RecordBatch {
        RecordBatch::from_rows(schema(), rows).unwrap()
    }

    #[test]
    fn group_by_key_counts() {
        let mut agg =
            HashAggregator::new(schema(), vec![col("campaign")], vec![count_star()]).unwrap();
        agg.update_batch(&batch(&[
            row!["a", Value::Timestamp(0), 1i64],
            row!["b", Value::Timestamp(0), 2i64],
            row!["a", Value::Timestamp(0), 3i64],
        ]))
        .unwrap();
        let out = agg.finish_all().unwrap();
        assert_eq!(out.to_rows(), vec![row!["a", 2i64], row!["b", 1i64]]);
    }

    #[test]
    fn global_aggregate_single_group() {
        let mut agg = HashAggregator::new(schema(), vec![], vec![sum(col("v")), avg(col("v"))])
            .unwrap();
        agg.update_batch(&batch(&[
            row!["a", Value::Timestamp(0), 1i64],
            row!["a", Value::Timestamp(0), 3i64],
        ]))
        .unwrap();
        let out = agg.finish_all().unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), Value::Int64(4));
        assert_eq!(out.value(0, 1), Value::Float64(2.0));
    }

    #[test]
    fn tumbling_window_grouping() {
        let mut agg = HashAggregator::new(
            schema(),
            vec![window(col("time"), "10 seconds").unwrap(), col("campaign")],
            vec![count_star()],
        )
        .unwrap();
        agg.update_batch(&batch(&[
            row!["a", Value::Timestamp(secs(5)), 0i64],
            row!["a", Value::Timestamp(secs(9)), 0i64],
            row!["a", Value::Timestamp(secs(15)), 0i64],
            row!["b", Value::Timestamp(secs(5)), 0i64],
        ]))
        .unwrap();
        let out = agg.finish_all().unwrap();
        assert_eq!(
            out.schema().field_names(),
            vec!["window_start", "window_end", "campaign", "count(*)"]
        );
        assert_eq!(
            out.to_rows(),
            vec![
                row![Value::Timestamp(0), Value::Timestamp(secs(10)), "a", 2i64],
                row![Value::Timestamp(0), Value::Timestamp(secs(10)), "b", 1i64],
                row![
                    Value::Timestamp(secs(10)),
                    Value::Timestamp(secs(20)),
                    "a",
                    1i64
                ],
            ]
        );
    }

    #[test]
    fn sliding_window_expands_rows() {
        let mut agg = HashAggregator::new(
            schema(),
            vec![window_sliding(col("time"), "10 seconds", "5 seconds").unwrap()],
            vec![count_star()],
        )
        .unwrap();
        agg.update_batch(&batch(&[row!["a", Value::Timestamp(secs(7)), 0i64]]))
            .unwrap();
        let out = agg.finish_all().unwrap();
        // t=7s belongs to windows [0,10) and [5,15).
        assert_eq!(
            out.to_rows(),
            vec![
                row![Value::Timestamp(0), Value::Timestamp(secs(10)), 1i64],
                row![Value::Timestamp(secs(5)), Value::Timestamp(secs(15)), 1i64],
            ]
        );
    }

    #[test]
    fn null_event_time_rows_dropped() {
        let mut agg = HashAggregator::new(
            schema(),
            vec![window(col("time"), "10 seconds").unwrap()],
            vec![count_star()],
        )
        .unwrap();
        agg.update_batch(&batch(&[
            row!["a", Value::Null, 0i64],
            row!["a", Value::Timestamp(secs(1)), 0i64],
        ]))
        .unwrap();
        assert_eq!(agg.finish_all().unwrap().num_rows(), 1);
    }

    #[test]
    fn changed_keys_track_epochs() {
        let mut agg =
            HashAggregator::new(schema(), vec![col("campaign")], vec![count_star()]).unwrap();
        agg.update_batch(&batch(&[row!["a", Value::Timestamp(0), 0i64]]))
            .unwrap();
        assert_eq!(agg.take_changed(), vec![row!["a"]]);
        // Nothing changed since the drain.
        assert!(agg.take_changed().is_empty());
        agg.update_batch(&batch(&[row!["b", Value::Timestamp(0), 0i64]]))
            .unwrap();
        let changed = agg.take_changed();
        assert_eq!(changed, vec![row!["b"]]);
        let out = agg.output_for_keys(&changed).unwrap();
        assert_eq!(out.to_rows(), vec![row!["b", 1i64]]);
    }

    #[test]
    fn drain_finalized_emits_and_evicts_closed_windows() {
        let mut agg = HashAggregator::new(
            schema(),
            vec![window(col("time"), "10 seconds").unwrap()],
            vec![count_star()],
        )
        .unwrap();
        agg.update_batch(&batch(&[
            row!["a", Value::Timestamp(secs(5)), 0i64],
            row!["a", Value::Timestamp(secs(15)), 0i64],
        ]))
        .unwrap();
        // Watermark at 12s closes [0,10) only.
        let out = agg.drain_finalized(secs(12)).unwrap();
        assert_eq!(
            out.to_rows(),
            vec![row![Value::Timestamp(0), Value::Timestamp(secs(10)), 1i64]]
        );
        assert_eq!(agg.num_groups(), 1);
        // Draining again at the same watermark emits nothing.
        assert_eq!(agg.drain_finalized(secs(12)).unwrap().num_rows(), 0);
    }

    #[test]
    fn drain_finalized_requires_window() {
        let mut agg =
            HashAggregator::new(schema(), vec![col("campaign")], vec![count_star()]).unwrap();
        assert!(agg.drain_finalized(0).is_err());
    }

    #[test]
    fn evict_expired_drops_state_silently() {
        let mut agg = HashAggregator::new(
            schema(),
            vec![window(col("time"), "10 seconds").unwrap()],
            vec![count_star()],
        )
        .unwrap();
        agg.update_batch(&batch(&[
            row!["a", Value::Timestamp(secs(5)), 0i64],
            row!["a", Value::Timestamp(secs(25)), 0i64],
        ]))
        .unwrap();
        let evicted = agg.evict_expired(secs(20));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].get(0), &Value::Timestamp(0));
        assert_eq!(agg.num_groups(), 1);
    }

    #[test]
    fn state_round_trip_matches_continuous_run() {
        let rows1 = [row!["a", Value::Timestamp(0), 5i64]];
        let rows2 = [
            row!["a", Value::Timestamp(0), 7i64],
            row!["b", Value::Timestamp(0), 1i64],
        ];
        let make = || {
            HashAggregator::new(
                schema(),
                vec![col("campaign")],
                vec![sum(col("v")), count_star()],
            )
            .unwrap()
        };
        // One aggregator sees everything.
        let mut full = make();
        full.update_batch(&batch(&rows1)).unwrap();
        full.update_batch(&batch(&rows2)).unwrap();
        // Another is checkpointed after epoch 1 and restored fresh.
        let mut first = make();
        first.update_batch(&batch(&rows1)).unwrap();
        let checkpoint: Vec<(Row, Vec<Row>)> = first
            .state_entries()
            .map(|(k, s)| (k.clone(), s))
            .collect();
        let mut restored = make();
        for (k, s) in checkpoint {
            restored.restore_entry(k, &s).unwrap();
        }
        restored.update_batch(&batch(&rows2)).unwrap();
        assert_eq!(
            restored.finish_all().unwrap(),
            full.finish_all().unwrap()
        );
    }

    #[test]
    fn expand_plus_update_pairs_matches_update_batch() {
        // Includes avg (float accumulation) so order sensitivity would
        // show up as bit differences.
        let make = || {
            HashAggregator::new(
                schema(),
                vec![window(col("time"), "10 seconds").unwrap(), col("campaign")],
                vec![count_star(), sum(col("v")), avg(col("v"))],
            )
            .unwrap()
        };
        let input = batch(&[
            row!["a", Value::Timestamp(secs(5)), 1i64],
            row!["b", Value::Timestamp(secs(9)), 2i64],
            row!["a", Value::Timestamp(secs(15)), 3i64],
            row!["a", Value::Timestamp(secs(6)), 4i64],
        ]);
        let mut serial = make();
        serial.update_batch(&input).unwrap();
        let mut sharded = make();
        sharded
            .update_pairs(sharded.key_expander().expand(&input).unwrap())
            .unwrap();
        assert_eq!(
            sharded.finish_all().unwrap(),
            serial.finish_all().unwrap()
        );
        assert_eq!(sharded.take_changed(), serial.take_changed());
    }

    #[test]
    fn expander_drops_null_event_times_and_fans_out_sliding_windows() {
        let agg = HashAggregator::new(
            schema(),
            vec![window_sliding(col("time"), "10 seconds", "5 seconds").unwrap()],
            vec![count_star()],
        )
        .unwrap();
        let pairs = agg
            .key_expander()
            .expand(&batch(&[
                row!["a", Value::Null, 0i64],
                row!["a", Value::Timestamp(secs(7)), 0i64],
            ]))
            .unwrap();
        // NULL row dropped; t=7s expands to windows [0,10) and [5,15).
        assert_eq!(
            pairs,
            vec![
                (row![Value::Timestamp(0)], row![1i64]),
                (row![Value::Timestamp(secs(5))], row![1i64]),
            ]
        );
    }

    #[test]
    fn update_pairs_rejects_wrong_arity() {
        let mut agg =
            HashAggregator::new(schema(), vec![col("campaign")], vec![count_star()]).unwrap();
        assert!(agg
            .update_pairs(vec![(row!["a"], row![1i64, 2i64])])
            .is_err());
    }

    #[test]
    fn take_partials_then_merge_partial_rebuilds_state_as_changed() {
        let mut agg = HashAggregator::new(
            schema(),
            vec![col("campaign")],
            vec![sum(col("v")), count_star()],
        )
        .unwrap();
        agg.update_batch(&batch(&[
            row!["a", Value::Timestamp(0), 5i64],
            row!["b", Value::Timestamp(0), 2i64],
        ]))
        .unwrap();
        agg.take_changed();
        let expected = agg.finish_all().unwrap();
        let partials = agg.take_partials();
        assert_eq!(agg.num_groups(), 0);
        assert_eq!(partials.len(), 2);
        assert!(partials[0].0 < partials[1].0, "partials sorted by key");
        let mut rebuilt = agg.fresh_clone();
        for (k, s) in partials {
            rebuilt.merge_partial(k, &s).unwrap();
        }
        assert_eq!(rebuilt.finish_all().unwrap(), expected);
        // Merged partials count as changed this epoch (restore_entry
        // would not).
        assert_eq!(rebuilt.take_changed(), vec![row!["a"], row!["b"]]);
    }

    #[test]
    fn restore_entry_validates_arity() {
        let mut agg =
            HashAggregator::new(schema(), vec![col("campaign")], vec![count_star()]).unwrap();
        assert!(agg
            .restore_entry(row!["a"], &[row![1i64], row![2i64]])
            .is_err());
    }
}
