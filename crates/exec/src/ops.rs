//! Stateless per-batch operators: filter, project, sort, limit,
//! distinct.

use std::sync::Arc;

use rustc_hash::FxHashSet;

use ss_common::{RecordBatch, Result, Row, Schema, SchemaRef};
use ss_expr::eval::{evaluate, evaluate_guarded};
use ss_expr::Expr;
use ss_plan::SortKey;

/// Named fail points in the stateless operator chain.
pub mod failpoints {
    /// Fires inside the engines around each stateless filter/project
    /// application — the injection point for simulated per-record
    /// evaluation failures (the poison-record chaos suite).
    pub const RECORD_EVAL: &str = "exec.record.eval";
}

/// `WHERE predicate`: keep rows where the predicate is true (NULL
/// counts as false, per SQL). Evaluation is guarded: a panic inside
/// the predicate fails the batch, not the thread.
pub fn filter_batch(batch: &RecordBatch, predicate: &Expr) -> Result<RecordBatch> {
    let mask = evaluate_guarded(predicate, batch)?.to_mask()?;
    batch.filter(&mask)
}

/// `SELECT exprs`: evaluate each expression into an output column.
pub fn project_batch(batch: &RecordBatch, exprs: &[Expr]) -> Result<RecordBatch> {
    let in_schema = batch.schema();
    let mut fields = Vec::with_capacity(exprs.len());
    let mut columns = Vec::with_capacity(exprs.len());
    for e in exprs {
        let col = evaluate_guarded(e, batch)?;
        fields.push(ss_common::Field {
            name: e.output_name(),
            data_type: col.data_type(),
            nullable: e.nullable(in_schema),
        });
        columns.push(col);
    }
    RecordBatch::try_new(Arc::new(Schema::new(fields)?), columns)
}

/// Fused `SELECT exprs WHERE predicate`: evaluates the mask on the
/// full batch, then filters **only** the columns the projection
/// references before evaluating it — columns the projection drops are
/// never copied (§5.3-style pipelining of selection into projection).
pub fn filter_project_batch(
    batch: &RecordBatch,
    predicate: &Expr,
    exprs: &[Expr],
) -> Result<RecordBatch> {
    let mask = evaluate_guarded(predicate, batch)?.to_mask()?;
    let mut needed: Vec<usize> = Vec::new();
    for e in exprs {
        for name in e.referenced_columns() {
            let i = batch.schema().index_of(&name)?;
            if !needed.contains(&i) {
                needed.push(i);
            }
        }
    }
    needed.sort_unstable();
    if needed.is_empty() {
        // Pure-literal projection: row count must still come from the
        // filtered batch.
        return project_batch(&batch.filter(&mask)?, exprs);
    }
    let narrowed = batch.filter_columns(&mask, &needed)?;
    project_batch(&narrowed, exprs)
}

/// `ORDER BY keys`: total sort of the concatenated input.
pub fn sort_batch(batch: &RecordBatch, keys: &[SortKey]) -> Result<RecordBatch> {
    let key_cols: Vec<_> = keys
        .iter()
        .map(|k| evaluate(&k.expr, batch))
        .collect::<Result<Vec<_>>>()?;
    let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for (kc, k) in key_cols.iter().zip(keys) {
            let ord = kc.value(a).total_cmp(&kc.value(b));
            let ord = if k.ascending { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    batch.take(&indices)
}

/// `LIMIT n`.
pub fn limit_batch(batch: &RecordBatch, n: usize) -> Result<RecordBatch> {
    if batch.num_rows() <= n {
        Ok(batch.clone())
    } else {
        batch.slice(0, n)
    }
}

/// `SELECT DISTINCT`: keep the first occurrence of each row.
pub fn distinct_batch(batch: &RecordBatch) -> Result<RecordBatch> {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut keep = Vec::with_capacity(batch.num_rows());
    for i in 0..batch.num_rows() {
        keep.push(seen.insert(batch.row(i)));
    }
    batch.filter(&keep)
}

/// Concatenate a stream of batches into one (operators here work on a
/// single batch; callers concatenate per-partition outputs).
pub fn concat_batches(schema: &SchemaRef, batches: &[RecordBatch]) -> Result<RecordBatch> {
    if batches.is_empty() {
        return Ok(RecordBatch::empty(schema.clone()));
    }
    RecordBatch::concat(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::{row, DataType, Field, Value};
    use ss_expr::{col, lit};

    fn batch() -> RecordBatch {
        RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("id", DataType::Int64),
                Field::new("kind", DataType::Utf8),
            ]),
            &[
                row![3i64, "view"],
                row![1i64, "click"],
                row![2i64, "view"],
                row![1i64, "click"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let out = filter_batch(&batch(), &col("kind").eq(lit("view"))).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(0), row![3i64, "view"]);
    }

    #[test]
    fn project_computes_and_names() {
        let out = project_batch(&batch(), &[col("id").mul(lit(10i64)).alias("x")]).unwrap();
        assert_eq!(out.schema().field_names(), vec!["x"]);
        assert_eq!(out.value(0, 0), Value::Int64(30));
    }

    #[test]
    fn sort_orders_with_direction_and_ties() {
        let out = sort_batch(
            &batch(),
            &[SortKey::asc(col("id")), SortKey::desc(col("kind"))],
        )
        .unwrap();
        let ids: Vec<Value> = (0..4).map(|i| out.value(i, 0)).collect();
        assert_eq!(
            ids,
            vec![Value::Int64(1), Value::Int64(1), Value::Int64(2), Value::Int64(3)]
        );
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit_batch(&batch(), 2).unwrap().num_rows(), 2);
        assert_eq!(limit_batch(&batch(), 100).unwrap().num_rows(), 4);
    }

    #[test]
    fn distinct_dedupes_whole_rows() {
        let out = distinct_batch(&batch()).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn concat_handles_empty() {
        let b = batch();
        let empty = concat_batches(b.schema(), &[]).unwrap();
        assert_eq!(empty.num_rows(), 0);
        let two = concat_batches(b.schema(), &[b.clone(), b.clone()]).unwrap();
        assert_eq!(two.num_rows(), 8);
    }
}
