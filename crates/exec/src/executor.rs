//! The batch executor: run a [`LogicalPlan`] over a [`Catalog`] of
//! named tables.
//!
//! This is the paper's "run the same code as a batch job" path (§7.3):
//! the streaming engine incrementalizes the very same plans this module
//! executes directly, and the integration tests assert that a streaming
//! run over any prefix of the input equals this executor's result over
//! that prefix (prefix consistency, §4.2).
//!
//! In batch mode, `Watermark` is a no-op and stateful operators invoke
//! the user function exactly once per key (§4.3.2: "Both operators also
//! work in batch mode, in which case the update function will only be
//! called once").

use std::collections::HashMap;
use std::sync::Arc;

use rustc_hash::FxHashMap;

use ss_common::{RecordBatch, Result, Row, SsError};
use ss_plan::stateful::{GroupState, StatefulOpDef};
use ss_plan::LogicalPlan;

use crate::aggregate::HashAggregator;
use crate::join::hash_join;
use crate::metrics::ExecMetrics;
use crate::ops;

/// Provides the input tables a plan's scans refer to.
pub trait Catalog {
    /// The batches of the named table.
    fn table(&self, name: &str) -> Result<Vec<RecordBatch>>;
}

/// A simple in-memory catalog.
#[derive(Debug, Clone, Default)]
pub struct MemoryCatalog {
    tables: HashMap<String, Vec<RecordBatch>>,
}

impl MemoryCatalog {
    pub fn new() -> MemoryCatalog {
        MemoryCatalog::default()
    }

    pub fn register(&mut self, name: impl Into<String>, batches: Vec<RecordBatch>) {
        self.tables.insert(name.into(), batches);
    }

    pub fn with_table(
        mut self,
        name: impl Into<String>,
        batches: Vec<RecordBatch>,
    ) -> MemoryCatalog {
        self.register(name, batches);
        self
    }
}

impl Catalog for MemoryCatalog {
    fn table(&self, name: &str) -> Result<Vec<RecordBatch>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| SsError::Plan(format!("unknown table `{name}`")))
    }
}

/// Execute a logical plan to completion, producing one result batch.
pub fn execute(plan: &LogicalPlan, catalog: &dyn Catalog) -> Result<RecordBatch> {
    execute_inner(plan, catalog, None)
}

/// Like [`execute`], but records per-operator row counts and inclusive
/// evaluation times into `metrics` (§7.4 monitoring).
pub fn execute_with_metrics(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    metrics: &ExecMetrics,
) -> Result<RecordBatch> {
    execute_inner(plan, catalog, Some(metrics))
}

/// The stable metric label for a plan node.
fn op_label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan { name, .. } => format!("scan:{name}"),
        LogicalPlan::Filter { .. } => "filter".into(),
        LogicalPlan::Project { .. } => "project".into(),
        LogicalPlan::Aggregate { .. } => "aggregate".into(),
        LogicalPlan::Join { .. } => "join".into(),
        LogicalPlan::Sort { .. } => "sort".into(),
        LogicalPlan::Limit { .. } => "limit".into(),
        LogicalPlan::Distinct { .. } => "distinct".into(),
        LogicalPlan::Watermark { .. } => "watermark".into(),
        LogicalPlan::MapGroupsWithState { op, .. } => format!("map-groups:{}", op.name),
    }
}

fn execute_inner(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    metrics: Option<&ExecMetrics>,
) -> Result<RecordBatch> {
    let started = metrics.map(|_| std::time::Instant::now());
    let out = execute_node(plan, catalog, metrics)?;
    if let (Some(m), Some(started)) = (metrics, started) {
        m.record(
            &op_label(plan),
            out.num_rows() as u64,
            started.elapsed().as_micros() as u64,
        );
    }
    Ok(out)
}

fn execute_node(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    metrics: Option<&ExecMetrics>,
) -> Result<RecordBatch> {
    let execute = |plan: &LogicalPlan, catalog: &dyn Catalog| execute_inner(plan, catalog, metrics);
    match plan {
        LogicalPlan::Scan {
            name,
            schema,
            projection,
            ..
        } => {
            let batches = catalog.table(name)?;
            let all = ops::concat_batches(schema, &batches)?;
            if all.schema().fields() != schema.fields() {
                return Err(SsError::Schema(format!(
                    "table `{name}` has schema {}, plan expects {}",
                    all.schema(),
                    schema
                )));
            }
            match projection {
                Some(idx) => all.project(idx),
                None => Ok(all),
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            ops::filter_batch(&execute(input, catalog)?, predicate)
        }
        LogicalPlan::Project { input, exprs } => {
            ops::project_batch(&execute(input, catalog)?, exprs)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            let child = execute(input, catalog)?;
            let mut agg = HashAggregator::new(
                child.schema().clone(),
                group_exprs.clone(),
                aggregates.clone(),
            )?;
            agg.update_batch(&child)?;
            agg.finish_all()
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            hash_join(&l, &r, *join_type, on)
        }
        LogicalPlan::Sort { input, keys } => ops::sort_batch(&execute(input, catalog)?, keys),
        LogicalPlan::Limit { input, n } => ops::limit_batch(&execute(input, catalog)?, *n),
        LogicalPlan::Distinct { input } => ops::distinct_batch(&execute(input, catalog)?),
        // Watermarks only matter for streaming state management.
        LogicalPlan::Watermark { input, .. } => execute(input, catalog),
        LogicalPlan::MapGroupsWithState { input, op } => {
            let child = execute(input, catalog)?;
            execute_stateful_batch(&child, op)
        }
    }
}

/// Batch-mode stateful operator: group all rows by key and invoke the
/// user function once per key with fresh state and no timeouts.
fn execute_stateful_batch(input: &RecordBatch, op: &StatefulOpDef) -> Result<RecordBatch> {
    let keys = crate::join::evaluate_keys(input, &op.key_exprs)?;
    // Group row indices by key, preserving first-seen order for
    // determinism.
    let mut order: Vec<Row> = Vec::new();
    let mut groups: FxHashMap<Row, Vec<Row>> = FxHashMap::default();
    for (i, key) in keys.into_iter().enumerate() {
        let Some(key) = key else { continue }; // NULL keys dropped, as in groupByKey on null
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        entry.push(input.row(i));
    }
    let mut out_rows = Vec::new();
    for key in &order {
        let values = &groups[key];
        let mut state = GroupState::for_invocation(
            None,
            op.timeout,
            None,
            false,
            i64::MIN,
            0,
        );
        let produced = (op.func)(key, values, &mut state)?;
        if !op.flat && produced.len() != 1 {
            return Err(SsError::Execution(format!(
                "mapGroupsWithState `{}` must return exactly one row per group, got {}",
                op.name,
                produced.len()
            )));
        }
        out_rows.extend(produced);
    }
    RecordBatch::from_rows(op.output_schema.clone(), &out_rows)
}

/// Analyze, optimize and execute a plan in one call — the convenience
/// entry point examples and tests use.
pub fn execute_optimized(
    plan: &Arc<LogicalPlan>,
    catalog: &dyn Catalog,
) -> Result<RecordBatch> {
    let analyzed = ss_plan::analyze(plan)?;
    let optimized = ss_plan::optimize(&analyzed)?;
    execute(&optimized, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::time::secs;
    use ss_common::{row, DataType, Field, Schema, SchemaRef, Value};
    use ss_expr::{avg, col, count_star, lit, window};
    use ss_plan::stateful::StateTimeout;
    use ss_plan::{JoinType, LogicalPlanBuilder, SortKey};

    fn clicks_schema() -> SchemaRef {
        Schema::of(vec![
            Field::new("country", DataType::Utf8),
            Field::new("time", DataType::Timestamp),
            Field::new("latency", DataType::Float64),
        ])
    }

    fn catalog() -> MemoryCatalog {
        let clicks = RecordBatch::from_rows(
            clicks_schema(),
            &[
                row!["CA", Value::Timestamp(secs(1)), 10.0],
                row!["US", Value::Timestamp(secs(2)), 20.0],
                row!["CA", Value::Timestamp(secs(35)), 30.0],
                row!["CA", Value::Timestamp(secs(36)), 50.0],
            ],
        )
        .unwrap();
        MemoryCatalog::new().with_table("clicks", vec![clicks])
    }

    fn clicks() -> LogicalPlanBuilder {
        LogicalPlanBuilder::scan("clicks", clicks_schema(), false)
    }

    #[test]
    fn paper_intro_query_end_to_end() {
        // §3: data.where($"state" === "CA").groupBy(window($"time","30s")).avg("latency")
        let plan = clicks()
            .filter(col("country").eq(lit("CA")))
            .aggregate(
                vec![window(col("time"), "30s").unwrap()],
                vec![avg(col("latency"))],
            )
            .build();
        let out = execute_optimized(&plan, &catalog()).unwrap();
        assert_eq!(
            out.to_rows(),
            vec![
                row![Value::Timestamp(0), Value::Timestamp(secs(30)), 10.0],
                row![Value::Timestamp(secs(30)), Value::Timestamp(secs(60)), 40.0],
            ]
        );
    }

    #[test]
    fn count_by_country() {
        let plan = clicks()
            .aggregate(vec![col("country")], vec![count_star()])
            .sort(vec![SortKey::desc(col("count(*)"))])
            .build();
        let out = execute_optimized(&plan, &catalog()).unwrap();
        assert_eq!(out.to_rows(), vec![row!["CA", 3i64], row!["US", 1i64]]);
    }

    #[test]
    fn join_with_static_table() {
        let regions = RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("r_country", DataType::Utf8),
                Field::new("region", DataType::Utf8),
            ]),
            &[row!["CA", "west"], row!["US", "all"]],
        )
        .unwrap();
        let catalog = catalog().with_table("regions", vec![regions]);
        let regions_scan = LogicalPlanBuilder::scan(
            "regions",
            Schema::of(vec![
                Field::new("r_country", DataType::Utf8),
                Field::new("region", DataType::Utf8),
            ]),
            false,
        );
        let plan = clicks()
            .join(
                regions_scan,
                JoinType::Inner,
                vec![(col("country"), col("r_country"))],
            )
            .aggregate(vec![col("region")], vec![count_star()])
            .build();
        let out = execute_optimized(&plan, &catalog).unwrap();
        assert_eq!(out.to_rows(), vec![row!["all", 1i64], row!["west", 3i64]]);
    }

    #[test]
    fn distinct_limit_project() {
        let plan = clicks()
            .project(vec![col("country")])
            .distinct()
            .sort(vec![SortKey::asc(col("country"))])
            .limit(1)
            .build();
        let out = execute_optimized(&plan, &catalog()).unwrap();
        assert_eq!(out.to_rows(), vec![row!["CA"]]);
    }

    #[test]
    fn watermark_is_noop_in_batch() {
        let plan = clicks()
            .with_watermark("time", "10 seconds")
            .unwrap()
            .aggregate(vec![col("country")], vec![count_star()])
            .build();
        let out = execute_optimized(&plan, &catalog()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn stateful_op_called_once_per_key_in_batch() {
        // Count events per key via mapGroupsWithState, as in Figure 3.
        let op = StatefulOpDef {
            name: "session_count".into(),
            key_exprs: vec![col("country")],
            output_schema: Schema::of(vec![
                Field::new("country", DataType::Utf8),
                Field::new("events", DataType::Int64),
            ]),
            timeout: StateTimeout::None,
            flat: false,
            func: Arc::new(|key, values, state| {
                assert!(!state.exists(), "batch mode calls once with fresh state");
                let total = values.len() as i64;
                state.update(row![total]);
                Ok(vec![Row::new(vec![
                    key.get(0).clone(),
                    Value::Int64(total),
                ])])
            }),
        };
        let plan = clicks().map_groups_with_state(op).build();
        let out = execute_optimized(&plan, &catalog()).unwrap();
        assert_eq!(out.to_rows(), vec![row!["CA", 3i64], row!["US", 1i64]]);
    }

    #[test]
    fn metrics_capture_per_operator_rows_and_time() {
        use ss_common::{MetricValue, MetricsRegistry};

        let registry = MetricsRegistry::new();
        let metrics = ExecMetrics::new(&registry);
        let plan = clicks()
            .filter(col("country").eq(lit("CA")))
            .aggregate(vec![col("country")], vec![count_star()])
            .build();
        let analyzed = ss_plan::analyze(&plan).unwrap();
        let out = execute_with_metrics(&analyzed, &catalog(), &metrics).unwrap();
        assert_eq!(out.num_rows(), 1);

        let rows = |op: &str| registry.value("ss_exec_rows_total", &[("op", op)]);
        assert_eq!(rows("scan:clicks"), Some(MetricValue::Counter(4)));
        assert_eq!(rows("filter"), Some(MetricValue::Counter(3)));
        assert_eq!(rows("aggregate"), Some(MetricValue::Counter(1)));
        match registry.value("ss_exec_eval_us", &[("op", "aggregate")]) {
            Some(MetricValue::Histogram { count, .. }) => assert_eq!(count, 1),
            other => panic!("missing eval histogram: {other:?}"),
        }
        // The plain path records nothing.
        execute(&analyzed, &catalog()).unwrap();
        assert_eq!(rows("scan:clicks"), Some(MetricValue::Counter(4)));
    }

    #[test]
    fn missing_table_errors() {
        let plan = LogicalPlanBuilder::scan("nope", clicks_schema(), false).build();
        assert!(execute_optimized(&plan, &catalog()).is_err());
    }

    #[test]
    fn scan_projection_applied() {
        let plan = clicks().project(vec![col("latency")]).build();
        let out = execute_optimized(&plan, &catalog()).unwrap();
        assert_eq!(out.schema().field_names(), vec!["latency"]);
        assert_eq!(out.num_rows(), 4);
    }
}
