//! Row ⇄ JSON conversion.
//!
//! Used by the file connectors (the paper's §4.1 example reads JSON
//! files and writes Parquet; we read and write JSON) and by the
//! Kafka-Streams-style baseline, which — like the real system — pays
//! serialization at every topic hop.

use std::fmt::Write as _;

use ss_common::{DataType, Result, Row, Schema, SsError, Value};

/// Serialize one row as a compact JSON object keyed by field name.
pub fn row_to_json(schema: &Schema, row: &Row) -> Result<String> {
    if row.len() != schema.len() {
        return Err(SsError::Schema(format!(
            "row has {} values, schema has {}",
            row.len(),
            schema.len()
        )));
    }
    let mut out = String::with_capacity(row.len() * 16);
    out.push('{');
    for (i, (field, value)) in schema.fields().iter().zip(row.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:", serde_json::to_string(&field.name).unwrap());
        match value {
            Value::Null => out.push_str("null"),
            Value::Boolean(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int64(v) | Value::Timestamp(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no Inf/NaN; encode as null like most
                    // JSON emitters.
                    out.push_str("null");
                }
            }
            Value::Utf8(s) => {
                let _ = write!(out, "{}", serde_json::to_string(s.as_ref()).unwrap());
            }
        }
    }
    out.push('}');
    Ok(out)
}

/// Parse a JSON object into a row matching `schema`. Missing fields
/// and JSON `null` become NULL; numbers are coerced to the field type.
pub fn row_from_json(schema: &Schema, text: &str) -> Result<Row> {
    let v: serde_json::Value = serde_json::from_str(text)
        .map_err(|e| SsError::Serde(format!("bad JSON record: {e}")))?;
    let obj = v
        .as_object()
        .ok_or_else(|| SsError::Serde(format!("expected a JSON object, got: {text}")))?;
    let mut values = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let value = match obj.get(&field.name) {
            None | Some(serde_json::Value::Null) => Value::Null,
            Some(j) => json_to_value(j, field.data_type).map_err(|e| {
                SsError::Serde(format!("field `{}`: {e}", field.name))
            })?,
        };
        values.push(value);
    }
    Ok(Row::new(values))
}

fn json_to_value(j: &serde_json::Value, ty: DataType) -> Result<Value> {
    use serde_json::Value as J;
    Ok(match (j, ty) {
        (J::Bool(b), DataType::Boolean) => Value::Boolean(*b),
        (J::Number(n), DataType::Int64) => Value::Int64(
            n.as_i64()
                .ok_or_else(|| SsError::Serde(format!("{n} is not a 64-bit integer")))?,
        ),
        (J::Number(n), DataType::Timestamp) => Value::Timestamp(
            n.as_i64()
                .ok_or_else(|| SsError::Serde(format!("{n} is not a 64-bit integer")))?,
        ),
        (J::Number(n), DataType::Float64) => Value::Float64(
            n.as_f64()
                .ok_or_else(|| SsError::Serde(format!("{n} is not a double")))?,
        ),
        (J::String(s), DataType::Utf8) => Value::str(s),
        // Spark-style lenient coercions used by real pipelines.
        (J::String(s), DataType::Int64) => Value::Int64(
            s.parse()
                .map_err(|e| SsError::Serde(format!("'{s}' is not an integer: {e}")))?,
        ),
        (J::String(s), DataType::Float64) => Value::Float64(
            s.parse()
                .map_err(|e| SsError::Serde(format!("'{s}' is not a double: {e}")))?,
        ),
        (J::Number(n), DataType::Utf8) => Value::str(n.to_string()),
        (j, ty) => {
            return Err(SsError::Serde(format!("cannot read {j} as {ty}")));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::{row, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("kind", DataType::Utf8),
            Field::new("t", DataType::Timestamp),
            Field::new("score", DataType::Float64),
            Field::new("ok", DataType::Boolean),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let s = schema();
        let r = row![7i64, "view", Value::Timestamp(123), 1.5, true];
        let text = row_to_json(&s, &r).unwrap();
        assert_eq!(row_from_json(&s, &text).unwrap(), r);
    }

    #[test]
    fn nulls_and_missing_fields() {
        let s = schema();
        let r = row![Value::Null, "x", Value::Null, Value::Null, Value::Null];
        let text = row_to_json(&s, &r).unwrap();
        assert!(text.contains("\"id\":null"));
        assert_eq!(row_from_json(&s, &text).unwrap(), r);
        // Missing fields are NULL.
        let partial = row_from_json(&s, r#"{"kind":"y"}"#).unwrap();
        assert_eq!(partial, row![Value::Null, "y", Value::Null, Value::Null, Value::Null]);
    }

    #[test]
    fn string_escaping() {
        let s = Schema::new(vec![Field::new("s", DataType::Utf8)]).unwrap();
        let r = row!["he said \"hi\"\nbye"];
        let text = row_to_json(&s, &r).unwrap();
        assert_eq!(row_from_json(&s, &text).unwrap(), r);
    }

    #[test]
    fn type_errors_name_the_field() {
        let s = schema();
        let err = row_from_json(&s, r#"{"id": true}"#).unwrap_err();
        assert!(err.to_string().contains("`id`"));
        assert!(row_from_json(&s, "[1,2]").is_err());
        assert!(row_from_json(&s, "not json").is_err());
    }

    #[test]
    fn lenient_coercions() {
        let s = schema();
        let r = row_from_json(&s, r#"{"id":"42","score":"2.5"}"#).unwrap();
        assert_eq!(r.get(0), &Value::Int64(42));
        assert_eq!(r.get(3), &Value::Float64(2.5));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let s = Schema::new(vec![Field::new("f", DataType::Float64)]).unwrap();
        let text = row_to_json(&s, &row![f64::INFINITY]).unwrap();
        assert_eq!(row_from_json(&s, &text).unwrap(), row![Value::Null]);
    }
}
