//! Connector instrumentation (§7.4): per-source backlog/read metrics
//! and per-sink commit metrics, plus an [`InstrumentedSink`] wrapper
//! that times any [`Sink`] implementation transparently.

use std::sync::Arc;
use std::time::Instant;

use ss_common::{Counter, Gauge, Histogram, MetricsRegistry, Result};

use crate::sink::{EpochOutput, Sink};

/// Instrument handles for one named source, under the `ss_source_*`
/// families labelled `{source="<name>"}`.
#[derive(Debug, Clone)]
pub struct SourceMetrics {
    /// `ss_source_backlog_rows` — records available but not yet read
    /// into an epoch (set after each epoch's offset selection).
    pub backlog: Gauge,
    /// `ss_source_rows_total` — records read into epochs.
    pub rows_read: Counter,
    /// `ss_source_read_us` — per-epoch read latency for this source.
    pub read_us: Histogram,
}

impl SourceMetrics {
    pub fn new(registry: &MetricsRegistry, source: &str) -> SourceMetrics {
        registry.describe(
            "ss_source_backlog_rows",
            "Records available at the source but not yet read into an epoch.",
        );
        registry.describe("ss_source_rows_total", "Records read from the source into epochs.");
        registry.describe("ss_source_read_us", "Per-epoch source read latency.");
        SourceMetrics {
            backlog: registry.gauge("ss_source_backlog_rows", &[("source", source)]),
            rows_read: registry.counter("ss_source_rows_total", &[("source", source)]),
            read_us: registry.histogram("ss_source_read_us", &[("source", source)]),
        }
    }
}

/// Instrument handles for one named sink, under the `ss_sink_*`
/// families labelled `{sink="<name>"}`.
#[derive(Debug, Clone)]
pub struct SinkMetrics {
    /// `ss_sink_commits_total` — epoch commits accepted.
    pub commits: Counter,
    /// `ss_sink_rows_total` — rows delivered across all commits.
    pub rows: Counter,
    /// `ss_sink_commit_us` — per-epoch commit latency.
    pub commit_us: Histogram,
}

impl SinkMetrics {
    pub fn new(registry: &MetricsRegistry, sink: &str) -> SinkMetrics {
        registry.describe("ss_sink_commits_total", "Epoch commits accepted by the sink.");
        registry.describe("ss_sink_rows_total", "Rows delivered to the sink.");
        registry.describe("ss_sink_commit_us", "Per-epoch sink commit latency.");
        SinkMetrics {
            commits: registry.counter("ss_sink_commits_total", &[("sink", sink)]),
            rows: registry.counter("ss_sink_rows_total", &[("sink", sink)]),
            commit_us: registry.histogram("ss_sink_commit_us", &[("sink", sink)]),
        }
    }

    /// Record one successful commit of `rows` rows taking `us` µs.
    pub fn observe_commit(&self, rows: u64, us: u64) {
        self.commits.inc();
        self.rows.add(rows);
        self.commit_us.observe(us);
    }
}

/// A [`Sink`] decorator that records commit counts/latency to a
/// [`SinkMetrics`] while delegating everything to the wrapped sink.
pub struct InstrumentedSink {
    inner: Arc<dyn Sink>,
    metrics: SinkMetrics,
}

impl InstrumentedSink {
    pub fn new(inner: Arc<dyn Sink>, registry: &MetricsRegistry) -> Arc<InstrumentedSink> {
        let metrics = SinkMetrics::new(registry, inner.name());
        Arc::new(InstrumentedSink { inner, metrics })
    }

    pub fn metrics(&self) -> &SinkMetrics {
        &self.metrics
    }
}

impl Sink for InstrumentedSink {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()> {
        let started = Instant::now();
        self.inner.commit_epoch(epoch, output)?;
        self.metrics
            .observe_commit(output.num_rows() as u64, started.elapsed().as_micros() as u64);
        Ok(())
    }

    fn truncate_after(&self, epoch: u64) -> Result<()> {
        self.inner.truncate_after(epoch)
    }

    fn rows_written(&self) -> u64 {
        self.inner.rows_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use ss_common::{row, DataType, Field, MetricValue, RecordBatch, Row, Schema};

    fn batch(n: i64) -> RecordBatch {
        let schema = Schema::of(vec![Field::new("v", DataType::Int64)]);
        let rows: Vec<Row> = (0..n).map(|v| row![v]).collect();
        RecordBatch::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn instrumented_sink_records_commits_and_delegates() {
        let registry = MetricsRegistry::new();
        let mem = MemorySink::new("out");
        let sink = InstrumentedSink::new(mem.clone(), &registry);
        sink.commit_epoch(1, &EpochOutput::Append(batch(3))).unwrap();
        sink.commit_epoch(2, &EpochOutput::Append(batch(2))).unwrap();

        assert_eq!(
            registry.value("ss_sink_commits_total", &[("sink", "out")]),
            Some(MetricValue::Counter(2))
        );
        assert_eq!(
            registry.value("ss_sink_rows_total", &[("sink", "out")]),
            Some(MetricValue::Counter(5))
        );
        match registry.value("ss_sink_commit_us", &[("sink", "out")]) {
            Some(MetricValue::Histogram { count, .. }) => assert_eq!(count, 2),
            other => panic!("missing commit histogram: {other:?}"),
        }
        // Delegation: the wrapped sink actually received the rows.
        assert_eq!(mem.snapshot().len(), 5);
        assert_eq!(sink.rows_written(), mem.rows_written());
        assert_eq!(sink.name(), "out");
    }

    #[test]
    fn source_metrics_register_labelled_series() {
        let registry = MetricsRegistry::new();
        let m = SourceMetrics::new(&registry, "clicks");
        m.backlog.set(40);
        m.rows_read.add(10);
        m.read_us.observe(120);
        assert_eq!(
            registry.value("ss_source_backlog_rows", &[("source", "clicks")]),
            Some(MetricValue::Gauge(40))
        );
        assert_eq!(
            registry.value("ss_source_rows_total", &[("source", "clicks")]),
            Some(MetricValue::Counter(10))
        );
    }
}
