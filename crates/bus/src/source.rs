//! Sources: replayable inputs for streaming queries.
//!
//! Requirement (1) of §3: "Input sources must be replayable, allowing
//! the system to re-read recent input data if a node crashes." Every
//! implementation here reads by explicit `[start, end)` offset range,
//! so the engine can re-execute any epoch recorded in the WAL.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ss_common::{OffsetRange, PartitionOffsets, RecordBatch, Result, Row, SchemaRef, SsError};

use crate::bus::MessageBus;
use crate::json::row_from_json;

/// A replayable, partitioned input.
pub trait Source: Send + Sync {
    /// Name used in plans and the WAL.
    fn name(&self) -> &str;
    /// Schema of the rows this source produces.
    fn schema(&self) -> SchemaRef;
    fn num_partitions(&self) -> u32;
    /// The current end offsets (next record to be written) — what the
    /// master snapshots when defining an epoch (§6.1 step 1).
    fn latest_offsets(&self) -> Result<PartitionOffsets>;
    /// The oldest offsets still readable (the retention horizon).
    /// Sources that never expire data — the default — report an empty
    /// map, i.e. everything from offset 0 is available. A bounded
    /// topic with a `DropOldest` policy moves this forward as it
    /// sheds; consumers must not ask for anything below it.
    fn earliest_offsets(&self) -> Result<PartitionOffsets> {
        Ok(PartitionOffsets::new())
    }
    /// Read `[start, end)` of one partition. Must return the same data
    /// for the same range every time (replayability).
    fn read_partition(&self, partition: u32, start: u64, end: u64) -> Result<RecordBatch>;

    /// If this source reads a [`MessageBus`] topic, expose the binding
    /// so the continuous-processing engine (which pulls records
    /// directly, off the batch path) can attach to it.
    fn bus_binding(&self) -> Option<(Arc<MessageBus>, String)> {
        None
    }

    /// Read `[start, end)` of one partition with a column projection
    /// pushed down (indices into [`Source::schema`]). The default
    /// reads everything then projects; sources that can build only the
    /// requested columns (e.g. [`BusSource`]) override this — the
    /// "projection pushdown" half of §5.3.
    fn read_partition_projected(
        &self,
        partition: u32,
        start: u64,
        end: u64,
        projection: Option<&[usize]>,
    ) -> Result<RecordBatch> {
        let batch = self.read_partition(partition, start, end)?;
        match projection {
            Some(idx) => batch.project(idx),
            None => Ok(batch),
        }
    }

    /// Read a whole offset range: one batch per partition with data.
    fn read(&self, range: &OffsetRange) -> Result<Vec<RecordBatch>> {
        self.read_projected(range, None)
    }

    /// Read a whole offset range with a column projection pushed down.
    fn read_projected(
        &self,
        range: &OffsetRange,
        projection: Option<&[usize]>,
    ) -> Result<Vec<RecordBatch>> {
        let mut out = Vec::new();
        for (&p, &end) in &range.end {
            let start = *range.start.get(&p).unwrap_or(&0);
            if end > start {
                out.push(self.read_partition_projected(p, start, end, projection)?);
            }
        }
        Ok(out)
    }

    /// The earliest and latest ingest timestamps (wall-clock µs) of the
    /// records in `range`, if this source tracks ingest times. The
    /// engine subtracts these from the sink-commit time to measure
    /// end-to-end event latency (source ingest → sink commit). Sources
    /// without ingest timestamps — the default — report `None`.
    fn ingest_bounds(&self, range: &OffsetRange) -> Result<Option<(i64, i64)>> {
        let _ = range;
        Ok(None)
    }

    /// Read a whole offset range into **one** batch. The default
    /// concatenates per-partition batches; sources that can append all
    /// partitions into a single set of column builders (e.g.
    /// [`BusSource`]) override this to skip the copy.
    fn read_all_projected(
        &self,
        range: &OffsetRange,
        projection: Option<&[usize]>,
    ) -> Result<RecordBatch> {
        let batches = self.read_projected(range, projection)?;
        let schema = match projection {
            Some(idx) => Arc::new(self.schema().project(idx)?),
            None => self.schema(),
        };
        if batches.is_empty() {
            return Ok(RecordBatch::empty(schema));
        }
        RecordBatch::concat(&batches)
    }
}

/// Reads a topic of the in-process [`MessageBus`] (the Kafka
/// connector).
pub struct BusSource {
    name: String,
    bus: Arc<MessageBus>,
    topic: String,
    schema: SchemaRef,
    faults: ss_common::FaultRegistry,
}

/// Fail-point names fired by [`BusSource`].
pub mod failpoints {
    /// Before reading a partition range from the bus — simulates a
    /// broker read failure.
    pub const BUS_READ: &str = "bus.read";
}

impl BusSource {
    pub fn new(
        bus: Arc<MessageBus>,
        topic: impl Into<String>,
        schema: SchemaRef,
    ) -> Result<BusSource> {
        let topic = topic.into();
        if !bus.has_topic(&topic) {
            return Err(SsError::Plan(format!("unknown topic `{topic}`")));
        }
        Ok(BusSource {
            name: topic.clone(),
            bus,
            topic,
            schema,
            faults: ss_common::FaultRegistry::new(),
        })
    }

    /// Attach a fail-point registry; [`failpoints::BUS_READ`] fires
    /// through it on every partition-range read.
    pub fn with_faults(mut self, faults: ss_common::FaultRegistry) -> BusSource {
        self.faults = faults;
        self
    }

    /// Append `[start, end)` of one partition into shared column
    /// builders, visiting log records in place (no per-record clone).
    fn append_partition(
        &self,
        partition: u32,
        start: u64,
        end: u64,
        indices: &[usize],
        builders: &mut [ss_common::ColumnBuilder],
    ) -> Result<()> {
        if end < start {
            return Err(SsError::Internal(format!(
                "read_partition end {end} < start {start}"
            )));
        }
        self.faults.fire(failpoints::BUS_READ)?;
        let n = (end - start) as usize;
        let mut err: Option<SsError> = None;
        let mut seen = 0usize;
        self.bus
            .read_with(&self.topic, partition, start, n, &mut |rec| {
                if err.is_some() {
                    return;
                }
                if rec.row.len() != self.schema.len() {
                    err = Some(SsError::Schema(format!(
                        "record at {}/{partition}:{} has {} values, schema has {}",
                        self.topic,
                        rec.offset,
                        rec.row.len(),
                        self.schema.len()
                    )));
                    return;
                }
                for (b, &i) in builders.iter_mut().zip(indices) {
                    if let Err(e) = b.push(rec.row.get(i)) {
                        err = Some(e);
                        return;
                    }
                }
                seen += 1;
            })?;
        if let Some(e) = err {
            return Err(e);
        }
        if seen != n {
            return Err(SsError::Execution(format!(
                "short read on {}/{partition}: wanted {n} records from {start}, got {seen}",
                self.topic
            )));
        }
        Ok(())
    }

    fn projection_parts(
        &self,
        projection: Option<&[usize]>,
        capacity: usize,
    ) -> Result<(Vec<usize>, SchemaRef, Vec<ss_common::ColumnBuilder>)> {
        let indices: Vec<usize> = match projection {
            Some(idx) => idx.to_vec(),
            None => (0..self.schema.len()).collect(),
        };
        let out_schema = match projection {
            Some(idx) => Arc::new(self.schema.project(idx)?),
            None => self.schema.clone(),
        };
        let builders: Vec<ss_common::ColumnBuilder> = out_schema
            .fields()
            .iter()
            .map(|f| ss_common::ColumnBuilder::with_capacity(f.data_type, capacity))
            .collect();
        Ok((indices, out_schema, builders))
    }
}

impl Source for BusSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn num_partitions(&self) -> u32 {
        self.bus.num_partitions(&self.topic).unwrap_or(0)
    }

    fn latest_offsets(&self) -> Result<PartitionOffsets> {
        self.bus.latest_offsets(&self.topic)
    }

    fn earliest_offsets(&self) -> Result<PartitionOffsets> {
        self.bus.earliest_offsets(&self.topic)
    }

    fn read_partition(&self, partition: u32, start: u64, end: u64) -> Result<RecordBatch> {
        self.read_partition_projected(partition, start, end, None)
    }

    /// Build only the projected columns, visiting log records in place
    /// (no per-record clone): the vectorized read path.
    fn read_partition_projected(
        &self,
        partition: u32,
        start: u64,
        end: u64,
        projection: Option<&[usize]>,
    ) -> Result<RecordBatch> {
        let (indices, out_schema, mut builders) =
            self.projection_parts(projection, end.saturating_sub(start) as usize)?;
        self.append_partition(partition, start, end, &indices, &mut builders)?;
        let columns = builders.into_iter().map(|b| b.finish()).collect();
        RecordBatch::try_new(out_schema, columns)
    }

    /// One batch across all partitions, built into a single set of
    /// column builders (no concat copy).
    fn read_all_projected(
        &self,
        range: &OffsetRange,
        projection: Option<&[usize]>,
    ) -> Result<RecordBatch> {
        let (indices, out_schema, mut builders) =
            self.projection_parts(projection, range.num_records() as usize)?;
        for (&p, &end) in &range.end {
            let start = *range.start.get(&p).unwrap_or(&0);
            if end > start {
                self.append_partition(p, start, end, &indices, &mut builders)?;
            }
        }
        let columns = builders.into_iter().map(|b| b.finish()).collect();
        RecordBatch::try_new(out_schema, columns)
    }

    /// Every bus record carries the wall-clock time `append` stamped on
    /// it; scan the range (in place, no clone) for the min/max.
    fn ingest_bounds(&self, range: &OffsetRange) -> Result<Option<(i64, i64)>> {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for (&p, &end) in &range.end {
            let start = *range.start.get(&p).unwrap_or(&0);
            if end <= start {
                continue;
            }
            self.bus.read_with(
                &self.topic,
                p,
                start,
                (end - start) as usize,
                &mut |rec| {
                    min = min.min(rec.ingest_time_us);
                    max = max.max(rec.ingest_time_us);
                },
            )?;
        }
        if min > max {
            return Ok(None); // empty range
        }
        Ok(Some((min, max)))
    }

    fn bus_binding(&self) -> Option<(Arc<MessageBus>, String)> {
        Some((self.bus.clone(), self.topic.clone()))
    }
}

/// Deterministic synthetic source: row = `gen(partition, offset)`.
/// Replayable by construction; [`GeneratorSource::advance`] releases
/// more offsets (simulating arrival).
pub struct GeneratorSource {
    name: String,
    schema: SchemaRef,
    available: Vec<AtomicU64>,
    #[allow(clippy::type_complexity)]
    gen: Arc<dyn Fn(u32, u64) -> Row + Send + Sync>,
}

impl GeneratorSource {
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        partitions: u32,
        gen: Arc<dyn Fn(u32, u64) -> Row + Send + Sync>,
    ) -> GeneratorSource {
        GeneratorSource {
            name: name.into(),
            schema,
            available: (0..partitions).map(|_| AtomicU64::new(0)).collect(),
            gen,
        }
    }

    /// Make `n` more offsets available on every partition.
    pub fn advance(&self, n: u64) {
        for a in &self.available {
            a.fetch_add(n, Ordering::SeqCst);
        }
    }

    /// Make `n` more offsets available on one partition.
    pub fn advance_partition(&self, partition: u32, n: u64) {
        self.available[partition as usize].fetch_add(n, Ordering::SeqCst);
    }
}

impl Source for GeneratorSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn num_partitions(&self) -> u32 {
        self.available.len() as u32
    }

    fn latest_offsets(&self) -> Result<PartitionOffsets> {
        Ok(self
            .available
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a.load(Ordering::SeqCst)))
            .collect())
    }

    fn read_partition(&self, partition: u32, start: u64, end: u64) -> Result<RecordBatch> {
        let avail = self
            .available
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("no partition {partition}")))?
            .load(Ordering::SeqCst);
        if end > avail {
            return Err(SsError::Execution(format!(
                "read past available offset: {end} > {avail}"
            )));
        }
        let rows: Vec<Row> = (start..end).map(|o| (self.gen)(partition, o)).collect();
        RecordBatch::from_rows(self.schema.clone(), &rows)
    }
}

/// Reads newline-delimited JSON files appearing in a directory — the
/// §4.1 example (`readStream.format("json").load("/in")`). Files are
/// discovered in name order and must be immutable once present; one
/// logical partition whose offsets index the concatenated rows.
pub struct FileSource {
    name: String,
    dir: PathBuf,
    schema: SchemaRef,
    state: Mutex<FileSourceState>,
}

#[derive(Default)]
struct FileSourceState {
    seen_files: Vec<PathBuf>,
    rows: Vec<Row>,
}

impl FileSource {
    pub fn new(dir: impl AsRef<Path>, schema: SchemaRef) -> Result<FileSource> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FileSource {
            name: format!("files:{}", dir.display()),
            dir,
            schema,
            state: Mutex::new(FileSourceState::default()),
        })
    }

    /// Scan the directory for new `.json` files and ingest them.
    fn refresh(&self) -> Result<u64> {
        let mut state = self.state.lock();
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        for f in files {
            if state.seen_files.contains(&f) {
                continue;
            }
            let text = std::fs::read_to_string(&f)?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let row = row_from_json(&self.schema, line)
                    .map_err(|e| SsError::Serde(format!("{}: {e}", f.display())))?;
                state.rows.push(row);
            }
            state.seen_files.push(f);
        }
        Ok(state.rows.len() as u64)
    }
}

impl Source for FileSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn num_partitions(&self) -> u32 {
        1
    }

    fn latest_offsets(&self) -> Result<PartitionOffsets> {
        let n = self.refresh()?;
        Ok(PartitionOffsets::from([(0, n)]))
    }

    fn read_partition(&self, partition: u32, start: u64, end: u64) -> Result<RecordBatch> {
        if partition != 0 {
            return Err(SsError::Plan("FileSource has a single partition".into()));
        }
        let state = self.state.lock();
        let end = end as usize;
        if end > state.rows.len() {
            return Err(SsError::Execution(format!(
                "read past ingested rows: {end} > {}",
                state.rows.len()
            )));
        }
        RecordBatch::from_rows(self.schema.clone(), &state.rows[start as usize..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::{row, DataType, Field, Schema, Value};

    fn schema() -> SchemaRef {
        Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("kind", DataType::Utf8),
        ])
    }

    #[test]
    fn bus_source_reads_ranges() {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("t", 2).unwrap();
        bus.append_at("t", 0, 0, vec![row![1i64, "a"], row![2i64, "b"]]).unwrap();
        bus.append_at("t", 1, 0, vec![row![3i64, "c"]]).unwrap();
        let src = BusSource::new(bus, "t", schema()).unwrap();
        assert_eq!(src.num_partitions(), 2);
        let latest = src.latest_offsets().unwrap();
        assert_eq!(latest[&0], 2);
        let range = OffsetRange {
            start: PartitionOffsets::new(),
            end: latest,
        };
        let batches = src.read(&range).unwrap();
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 3);
        assert!(BusSource::new(Arc::new(MessageBus::new()), "missing", schema()).is_err());
    }

    #[test]
    fn bus_read_fail_point_injects_and_recovers() {
        use ss_common::fault::{FaultMode, FaultTrigger};

        let bus = Arc::new(MessageBus::new());
        bus.create_topic("t", 1).unwrap();
        bus.append_at("t", 0, 0, vec![row![1i64, "a"]]).unwrap();
        let faults = ss_common::FaultRegistry::new();
        let src = BusSource::new(bus, "t", schema())
            .unwrap()
            .with_faults(faults.clone());
        faults.configure(
            failpoints::BUS_READ,
            FaultTrigger::Once { skip: 0 },
            FaultMode::TransientError,
        );
        let err = src.read_partition(0, 0, 1).unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        // The one-shot fault is spent; the same read now succeeds.
        assert_eq!(src.read_partition(0, 0, 1).unwrap().num_rows(), 1);
        assert_eq!(faults.hits(failpoints::BUS_READ), 2);
    }

    #[test]
    fn bus_source_reports_ingest_bounds() {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("t", 2).unwrap();
        bus.append_at("t", 0, 100, vec![row![1i64, "a"]]).unwrap();
        bus.append_at("t", 0, 300, vec![row![2i64, "b"]]).unwrap();
        bus.append_at("t", 1, 200, vec![row![3i64, "c"]]).unwrap();
        let src = BusSource::new(bus, "t", schema()).unwrap();
        let full = OffsetRange {
            start: PartitionOffsets::new(),
            end: src.latest_offsets().unwrap(),
        };
        assert_eq!(src.ingest_bounds(&full).unwrap(), Some((100, 300)));
        // A sub-range only sees its own records.
        let tail = OffsetRange {
            start: PartitionOffsets::from([(0, 1)]),
            end: PartitionOffsets::from([(0, 2)]),
        };
        assert_eq!(src.ingest_bounds(&tail).unwrap(), Some((300, 300)));
        // Empty range → no bounds; sources without timestamps default
        // to None.
        let empty = OffsetRange {
            start: PartitionOffsets::from([(0, 2)]),
            end: PartitionOffsets::from([(0, 2)]),
        };
        assert_eq!(src.ingest_bounds(&empty).unwrap(), None);
        let gen = GeneratorSource::new("g", schema(), 1, Arc::new(|_, o| row![o as i64, "x"]));
        assert_eq!(gen.ingest_bounds(&full).unwrap(), None);
    }

    #[test]
    fn generator_source_is_replayable() {
        let src = GeneratorSource::new(
            "gen",
            schema(),
            2,
            Arc::new(|p, o| row![(p as i64) * 1000 + o as i64, "x"]),
        );
        assert_eq!(src.latest_offsets().unwrap()[&0], 0);
        src.advance(5);
        src.advance_partition(1, 2);
        let latest = src.latest_offsets().unwrap();
        assert_eq!(latest[&0], 5);
        assert_eq!(latest[&1], 7);
        let a = src.read_partition(0, 1, 4).unwrap();
        let b = src.read_partition(0, 1, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.row(0), row![1i64, "x"]);
        // Reading past availability fails loudly.
        assert!(src.read_partition(0, 0, 99).is_err());
    }

    #[test]
    fn file_source_discovers_files_in_order() {
        let dir = std::env::temp_dir().join(format!("ss-bus-fsrc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = FileSource::new(&dir, schema()).unwrap();
        assert_eq!(src.latest_offsets().unwrap()[&0], 0);
        std::fs::write(dir.join("b.json"), "{\"id\":2,\"kind\":\"y\"}\n").unwrap();
        std::fs::write(dir.join("a.json"), "{\"id\":1,\"kind\":\"x\"}\n\n{\"id\":3,\"kind\":\"z\"}\n").unwrap();
        assert_eq!(src.latest_offsets().unwrap()[&0], 3);
        let batch = src.read_partition(0, 0, 3).unwrap();
        // a.json sorts before b.json.
        assert_eq!(
            batch.to_rows(),
            vec![row![1i64, "x"], row![3i64, "z"], row![2i64, "y"]]
        );
        // New files extend the offset space; replays stay stable.
        std::fs::write(dir.join("c.json"), "{\"id\":4,\"kind\":\"w\"}\n").unwrap();
        assert_eq!(src.latest_offsets().unwrap()[&0], 4);
        assert_eq!(src.read_partition(0, 0, 3).unwrap(), batch);
        // Non-json files ignored.
        std::fs::write(dir.join("notes.txt"), "ignore me").unwrap();
        assert_eq!(src.latest_offsets().unwrap()[&0], 4);
        assert!(src.read_partition(1, 0, 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_source_surfaces_parse_errors_with_filename() {
        let dir = std::env::temp_dir().join(format!("ss-bus-fsrc-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = FileSource::new(&dir, schema()).unwrap();
        std::fs::write(dir.join("bad.json"), "{\"id\": \"not an int\"}\n").unwrap();
        let err = src.latest_offsets().unwrap_err();
        assert!(err.to_string().contains("bad.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_read_skips_empty_partitions() {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("t", 3).unwrap();
        bus.append_at("t", 1, 0, vec![row![1i64, "a"]]).unwrap();
        let src = BusSource::new(bus, "t", schema()).unwrap();
        let range = OffsetRange {
            start: PartitionOffsets::new(),
            end: src.latest_offsets().unwrap(),
        };
        let batches = src.read(&range).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].num_rows(), 1);
        let _ = Value::Null; // keep the import exercised
    }
}
