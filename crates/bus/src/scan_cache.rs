//! Shared source scans for multi-query execution.
//!
//! When N queries subscribe to the same topic, each one's epoch reads
//! the same `(topic, offset-range)` slice of the bus. A [`ScanCache`]
//! turns those N reads into one: the first subscriber to ask for a
//! range pays the bus read and parks the materialized batch; the
//! remaining subscribers get a clone of the cached columns (with their
//! own projection applied at fan-out). Entries are reference-counted
//! by subscriber: an entry is dropped as soon as every registered
//! subscriber of the source has read it, so steady-state residency is
//! one in-flight epoch per topic, not a history.
//!
//! Subscribers whose offset ranges diverge (different admission caps,
//! different start times) simply miss — the cache never changes what a
//! query reads, only whether the bus is touched to read it. A bounded
//! FIFO capacity evicts ranges that a lagging subscriber never came
//! back for.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ss_common::{OffsetRange, PartitionOffsets, RecordBatch, Result, SchemaRef};

use crate::bus::MessageBus;
use crate::source::Source;

/// Counters describing how much bus work the cache absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCacheStats {
    /// Range reads served from a cached batch (no bus touch).
    pub hits: u64,
    /// Range reads that went through to the underlying source.
    pub misses: u64,
    /// Entries dropped: fully consumed by all subscribers, or pushed
    /// out by the capacity bound.
    pub evictions: u64,
    /// Rows read from the underlying sources (the cost that stays
    /// ~O(1) in the number of identical queries).
    pub underlying_rows: u64,
    /// Rows handed out of the cache to subscribers (hits only).
    pub fanned_rows: u64,
}

struct Entry {
    batch: RecordBatch,
    /// Registered subscribers (other than the one that populated the
    /// entry) still expected to read this range.
    remaining: usize,
}

#[derive(Default)]
struct CacheInner {
    /// Cached batches keyed by `(source, range)` (rendered as text —
    /// `PartitionOffsets` is a BTreeMap, so the rendering is canonical).
    entries: HashMap<String, Entry>,
    /// Insertion order, for the capacity bound.
    order: VecDeque<String>,
    /// Live subscriber count per source name.
    subscribers: HashMap<String, usize>,
}

/// A ref-counted cache of materialized `(source, offset-range)` scans,
/// shared by every [`SharedScanSource`] of a multi-query engine.
pub struct ScanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    underlying_rows: AtomicU64,
    fanned_rows: AtomicU64,
}

impl ScanCache {
    /// A cache holding at most `capacity` materialized ranges (across
    /// all sources). Capacity 0 disables caching entirely — every read
    /// passes through.
    pub fn new(capacity: usize) -> Arc<ScanCache> {
        Arc::new(ScanCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            underlying_rows: AtomicU64::new(0),
            fanned_rows: AtomicU64::new(0),
        })
    }

    /// Register one more reader of `source`. Future cache entries for
    /// the source expect one more visit before self-evicting.
    pub fn subscribe(&self, source: &str) {
        *self
            .inner
            .lock()
            .subscribers
            .entry(source.to_string())
            .or_insert(0) += 1;
    }

    /// Deregister a reader (query stopped or detached). Entries the
    /// departed reader never consumed age out via the capacity bound.
    pub fn unsubscribe(&self, source: &str) {
        let mut inner = self.inner.lock();
        if let Some(n) = inner.subscribers.get_mut(source) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inner.subscribers.remove(source);
            }
        }
    }

    /// Current reader count for a source.
    pub fn subscriber_count(&self, source: &str) -> usize {
        self.inner.lock().subscribers.get(source).copied().unwrap_or(0)
    }

    pub fn stats(&self) -> ScanCacheStats {
        ScanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            underlying_rows: self.underlying_rows.load(Ordering::Relaxed),
            fanned_rows: self.fanned_rows.load(Ordering::Relaxed),
        }
    }

    fn key(source: &str, range: &OffsetRange) -> String {
        let fmt = |m: &PartitionOffsets| {
            m.iter()
                .map(|(p, o)| format!("{p}:{o}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("{source}|{}|{}", fmt(&range.start), fmt(&range.end))
    }

    /// Serve a full-range read for `source`, consulting the cache.
    /// The cached batch is always unprojected; `projection` is applied
    /// at fan-out so subscribers with different column sets still
    /// share one bus read.
    pub fn read_through(
        &self,
        source: &dyn Source,
        range: &OffsetRange,
        projection: Option<&[usize]>,
    ) -> Result<RecordBatch> {
        let key = Self::key(source.name(), range);
        {
            let mut inner = self.inner.lock();
            if let Some(entry) = inner.entries.get_mut(&key) {
                let batch = entry.batch.clone();
                entry.remaining = entry.remaining.saturating_sub(1);
                let spent = entry.remaining == 0;
                if spent {
                    inner.entries.remove(&key);
                    inner.order.retain(|k| k != &key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.fanned_rows
                    .fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
                return match projection {
                    Some(idx) => batch.project(idx),
                    None => Ok(batch),
                };
            }
        }
        // Miss: one read of the *full* row (unprojected), outside the
        // lock — a long bus read must not serialize other sources.
        let batch = source.read_all_projected(range, None)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.underlying_rows
            .fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
        {
            let mut inner = self.inner.lock();
            let others = inner
                .subscribers
                .get(source.name())
                .copied()
                .unwrap_or(1)
                .saturating_sub(1);
            if others > 0 && self.capacity > 0 && !inner.entries.contains_key(&key) {
                inner.entries.insert(
                    key.clone(),
                    Entry {
                        batch: batch.clone(),
                        remaining: others,
                    },
                );
                inner.order.push_back(key);
                while inner.order.len() > self.capacity {
                    if let Some(old) = inner.order.pop_front() {
                        inner.entries.remove(&old);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        match projection {
            Some(idx) => batch.project(idx),
            None => Ok(batch),
        }
    }
}

/// A [`Source`] decorator that routes whole-range reads through a
/// shared [`ScanCache`]. Everything else — offsets, schema, partition
/// metadata — delegates to the wrapped source, so the engine's epoch
/// protocol is unchanged; only the bytes-moved accounting differs.
pub struct SharedScanSource {
    inner: Arc<dyn Source>,
    cache: Arc<ScanCache>,
}

impl SharedScanSource {
    /// Wrap `inner` and register as one subscriber of it.
    pub fn new(inner: Arc<dyn Source>, cache: Arc<ScanCache>) -> Arc<SharedScanSource> {
        cache.subscribe(inner.name());
        Arc::new(SharedScanSource { inner, cache })
    }

    pub fn cache(&self) -> &Arc<ScanCache> {
        &self.cache
    }
}

impl Drop for SharedScanSource {
    fn drop(&mut self) {
        self.cache.unsubscribe(self.inner.name());
    }
}

impl Source for SharedScanSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> SchemaRef {
        self.inner.schema()
    }

    fn num_partitions(&self) -> u32 {
        self.inner.num_partitions()
    }

    fn latest_offsets(&self) -> Result<PartitionOffsets> {
        self.inner.latest_offsets()
    }

    fn earliest_offsets(&self) -> Result<PartitionOffsets> {
        self.inner.earliest_offsets()
    }

    fn read_partition(&self, partition: u32, start: u64, end: u64) -> Result<RecordBatch> {
        self.inner.read_partition(partition, start, end)
    }

    fn bus_binding(&self) -> Option<(Arc<MessageBus>, String)> {
        self.inner.bus_binding()
    }

    fn ingest_bounds(&self, range: &OffsetRange) -> Result<Option<(i64, i64)>> {
        self.inner.ingest_bounds(range)
    }

    fn read_all_projected(
        &self,
        range: &OffsetRange,
        projection: Option<&[usize]>,
    ) -> Result<RecordBatch> {
        self.cache.read_through(self.inner.as_ref(), range, projection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::BusSource;
    use ss_common::{row, DataType, Field, Schema};

    fn mk_bus(rows: u64) -> Arc<MessageBus> {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("t", 2).unwrap();
        for i in 0..rows {
            bus.append("t", (i % 2) as u32, vec![row![format!("k{i}"), i as i64]])
                .unwrap();
        }
        bus
    }

    fn schema() -> SchemaRef {
        Schema::of(vec![
            Field::new("k", DataType::Utf8),
            Field::new("n", DataType::Int64),
        ])
    }

    fn full_range(src: &dyn Source) -> OffsetRange {
        OffsetRange {
            start: PartitionOffsets::new(),
            end: src.latest_offsets().unwrap(),
        }
    }

    #[test]
    fn second_subscriber_hits_and_entry_self_evicts() {
        let bus = mk_bus(10);
        let inner: Arc<dyn Source> = Arc::new(BusSource::new(bus, "t", schema()).unwrap());
        let cache = ScanCache::new(16);
        let a = SharedScanSource::new(inner.clone(), cache.clone());
        let b = SharedScanSource::new(inner.clone(), cache.clone());
        let range = full_range(inner.as_ref());

        let ba = a.read_all_projected(&range, None).unwrap();
        let bb = b.read_all_projected(&range, None).unwrap();
        assert_eq!(ba.to_rows(), bb.to_rows());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.underlying_rows, 10);
        assert_eq!(stats.fanned_rows, 10);
        // Fully consumed: the entry is gone (self-evicted).
        assert_eq!(stats.evictions, 1);

        // A third read of the same range misses again (nothing cached,
        // and with both subscribers already served nothing should be).
        let _ = a.read_all_projected(&range, None).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn projection_is_applied_at_fanout_over_one_read() {
        let bus = mk_bus(6);
        let inner: Arc<dyn Source> = Arc::new(BusSource::new(bus, "t", schema()).unwrap());
        let cache = ScanCache::new(16);
        let a = SharedScanSource::new(inner.clone(), cache.clone());
        let b = SharedScanSource::new(inner.clone(), cache.clone());
        let range = full_range(inner.as_ref());

        let ba = a.read_all_projected(&range, Some(&[1])).unwrap();
        let bb = b.read_all_projected(&range, Some(&[0])).unwrap();
        assert_eq!(ba.schema().fields().len(), 1);
        assert_eq!(ba.schema().field(0).name, "n");
        assert_eq!(bb.schema().field(0).name, "k");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn single_subscriber_never_caches() {
        let bus = mk_bus(4);
        let inner: Arc<dyn Source> = Arc::new(BusSource::new(bus, "t", schema()).unwrap());
        let cache = ScanCache::new(16);
        let a = SharedScanSource::new(inner.clone(), cache.clone());
        let range = full_range(inner.as_ref());
        let _ = a.read_all_projected(&range, None).unwrap();
        let _ = a.read_all_projected(&range, None).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let bus = mk_bus(8);
        let inner: Arc<dyn Source> = Arc::new(BusSource::new(bus, "t", schema()).unwrap());
        let cache = ScanCache::new(1);
        let a = SharedScanSource::new(inner.clone(), cache.clone());
        let _b = SharedScanSource::new(inner.clone(), cache.clone());
        // Two distinct ranges from subscriber a; capacity 1 keeps only
        // the later one.
        let mut r1 = full_range(inner.as_ref());
        r1.end = r1.end.iter().map(|(&p, _)| (p, 1)).collect();
        let r2 = full_range(inner.as_ref());
        let _ = a.read_all_projected(&r1, None).unwrap();
        let _ = a.read_all_projected(&r2, None).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.inner.lock().entries.len(), 1);
    }

    #[test]
    fn unsubscribe_drops_subscriber_count() {
        let bus = mk_bus(2);
        let inner: Arc<dyn Source> = Arc::new(BusSource::new(bus, "t", schema()).unwrap());
        let cache = ScanCache::new(4);
        let a = SharedScanSource::new(inner.clone(), cache.clone());
        let b = SharedScanSource::new(inner.clone(), cache.clone());
        assert_eq!(cache.subscriber_count("t"), 2);
        drop(a);
        assert_eq!(cache.subscriber_count("t"), 1);
        drop(b);
        assert_eq!(cache.subscriber_count("t"), 0);
    }
}
