//! Dead-letter queue: the destination for quarantined poison records.
//!
//! When a query runs under `ErrorPolicy::Quarantine`, records that
//! deterministically fail evaluation are diverted here instead of
//! failing the epoch. The queue follows the same idempotence discipline
//! as every [`crate::sink::Sink`]: records are committed *per epoch*,
//! keyed by epoch number, so a recovery re-run of an epoch replaces its
//! dead letters rather than duplicating them — exactly-once DLQ
//! contents across any crash/restart schedule.
//!
//! Each record carries enough metadata to debug or backfill it later:
//! the source and `(partition, offset)` it came from, the epoch that
//! quarantined it, the failure fingerprint, the rendered error, and the
//! row itself as JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use ss_common::trace::escape_json;

/// Named fail points on the dead-letter path.
pub mod failpoints {
    /// Fires before the DLQ accepts an epoch's quarantined records.
    pub const DLQ_WRITE: &str = "bus.dlq.write";
}

/// One quarantined record with its failure metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetterRecord {
    /// Epoch that quarantined the record.
    pub epoch: u64,
    /// Source the record was read from.
    pub source: String,
    /// Source partition.
    pub partition: u32,
    /// Offset within the partition.
    pub offset: u64,
    /// Failure fingerprint (see `ss_common::isolate`).
    pub fingerprint: u64,
    /// The rendered evaluation error (or panic message).
    pub error: String,
    /// The offending row, rendered as JSON.
    pub row_json: String,
}

impl DeadLetterRecord {
    /// Render as one JSON Lines record (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"epoch\":{},\"source\":\"{}\",\"partition\":{},\"offset\":{},\
             \"fingerprint\":\"{:016x}\",\"error\":\"{}\",\"row\":{}}}",
            self.epoch,
            escape_json(&self.source),
            self.partition,
            self.offset,
            self.fingerprint,
            escape_json(&self.error),
            self.row_json,
        );
        out
    }
}

/// An in-memory, epoch-committed dead-letter queue.
#[derive(Debug, Default)]
pub struct DeadLetterQueue {
    /// Quarantined records keyed by epoch (insert-replace => idempotent).
    state: Mutex<BTreeMap<u64, Vec<DeadLetterRecord>>>,
}

impl DeadLetterQueue {
    /// An empty queue behind an `Arc` (shared between the engine and
    /// whoever monitors it).
    pub fn new() -> Arc<DeadLetterQueue> {
        Arc::new(DeadLetterQueue::default())
    }

    /// Commit one epoch's quarantined records. Idempotent: a recovery
    /// re-run of the epoch replaces its records. Committing an empty
    /// set removes any stale entry for the epoch.
    pub fn commit_epoch(&self, epoch: u64, records: Vec<DeadLetterRecord>) {
        let mut state = self.state.lock();
        if records.is_empty() {
            state.remove(&epoch);
        } else {
            state.insert(epoch, records);
        }
    }

    /// Drop records quarantined after `epoch` (rollback support).
    pub fn truncate_after(&self, epoch: u64) {
        self.state.lock().retain(|&e, _| e <= epoch);
    }

    /// All quarantined records in epoch order.
    pub fn snapshot(&self) -> Vec<DeadLetterRecord> {
        self.state.lock().values().flatten().cloned().collect()
    }

    /// Total quarantined records currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().values().map(Vec::len).sum()
    }

    /// True when nothing has been quarantined.
    pub fn is_empty(&self) -> bool {
        self.state.lock().is_empty()
    }

    /// The whole queue as JSON Lines, one record per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, offset: u64) -> DeadLetterRecord {
        DeadLetterRecord {
            epoch,
            source: "events".into(),
            partition: 0,
            offset,
            fingerprint: 0xdead_beef,
            error: "type error: bad int `x`".into(),
            row_json: "{\"v\":\"x\"}".into(),
        }
    }

    #[test]
    fn commit_is_idempotent_per_epoch() {
        let dlq = DeadLetterQueue::new();
        dlq.commit_epoch(1, vec![record(1, 3)]);
        // Recovery re-runs the epoch with the same records: no dupes.
        dlq.commit_epoch(1, vec![record(1, 3)]);
        dlq.commit_epoch(2, vec![record(2, 7), record(2, 9)]);
        assert_eq!(dlq.len(), 3);
        let offs: Vec<u64> = dlq.snapshot().iter().map(|r| r.offset).collect();
        assert_eq!(offs, vec![3, 7, 9]);
    }

    #[test]
    fn truncate_rolls_back_later_epochs() {
        let dlq = DeadLetterQueue::new();
        dlq.commit_epoch(1, vec![record(1, 1)]);
        dlq.commit_epoch(2, vec![record(2, 2)]);
        dlq.truncate_after(1);
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq.snapshot()[0].epoch, 1);
        // An empty re-commit clears a stale entry.
        dlq.commit_epoch(1, vec![]);
        assert!(dlq.is_empty());
    }

    #[test]
    fn jsonl_renders_metadata_and_escapes() {
        let dlq = DeadLetterQueue::new();
        let mut r = record(4, 11);
        r.error = "panic: \"boom\"".into();
        dlq.commit_epoch(4, vec![r]);
        let jsonl = dlq.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"epoch\":4"), "{jsonl}");
        assert!(jsonl.contains("\"offset\":11"), "{jsonl}");
        assert!(jsonl.contains("00000000deadbeef"), "{jsonl}");
        assert!(jsonl.contains("panic: \\\"boom\\\""), "{jsonl}");
        assert!(jsonl.contains("\"row\":{\"v\":\"x\"}"), "{jsonl}");
    }
}
