//! The in-process message bus (Kafka/Kinesis stand-in).
//!
//! Topics hold ordered, offset-addressed partitions of [`Record`]s.
//! Records are retained after consumption (consumers track their own
//! offsets, as with Kafka), which is what makes sources *replayable* —
//! requirement (1) the paper places on input sources (§3). Retention
//! limits are simulated with [`MessageBus::truncate_before`]: reading
//! past truncated data fails, exactly the "input sources no longer have
//! the data" failure mode §7.2 mentions for rollbacks.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use ss_common::time::now_us;
use ss_common::{PartitionOffsets, Result, Row, SsError};

/// One message in a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Position within the partition (dense, starting at 0).
    pub offset: u64,
    /// Bus ingestion time (µs since epoch) — the processing-time stamp
    /// used for end-to-end latency measurements.
    pub ingest_time_us: i64,
    /// The payload.
    pub row: Row,
}

#[derive(Debug, Default)]
struct Partition {
    /// Offset of the first retained record (earlier records truncated).
    base_offset: u64,
    records: Vec<Record>,
}

impl Partition {
    fn next_offset(&self) -> u64 {
        self.base_offset + self.records.len() as u64
    }
}

#[derive(Debug)]
struct Topic {
    partitions: Vec<RwLock<Partition>>,
}

/// A thread-safe, in-process, partitioned message bus.
#[derive(Debug, Default)]
pub struct MessageBus {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
}

impl MessageBus {
    pub fn new() -> MessageBus {
        MessageBus::default()
    }

    /// Create a topic with `partitions` partitions. Errors if it
    /// already exists.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        if partitions == 0 {
            return Err(SsError::Plan("topics need at least one partition".into()));
        }
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(SsError::Plan(format!("topic `{name}` already exists")));
        }
        topics.insert(
            name.to_string(),
            Arc::new(Topic {
                partitions: (0..partitions).map(|_| RwLock::new(Partition::default())).collect(),
            }),
        );
        Ok(())
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SsError::Plan(format!("unknown topic `{name}`")))
    }

    pub fn has_topic(&self, name: &str) -> bool {
        self.topics.read().contains_key(name)
    }

    pub fn num_partitions(&self, topic: &str) -> Result<u32> {
        Ok(self.topic(topic)?.partitions.len() as u32)
    }

    /// Append rows to a partition with an explicit ingestion timestamp
    /// (deterministic tests / simulated time). Returns the offset of
    /// the first appended record.
    pub fn append_at(
        &self,
        topic: &str,
        partition: u32,
        ingest_time_us: i64,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<u64> {
        let t = self.topic(topic)?;
        let part = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        let mut p = part.write();
        let first = p.next_offset();
        for (offset, row) in (first..).zip(rows) {
            p.records.push(Record {
                offset,
                ingest_time_us,
                row,
            });
        }
        Ok(first)
    }

    /// Append rows stamped with the current wall clock.
    pub fn append(
        &self,
        topic: &str,
        partition: u32,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<u64> {
        self.append_at(topic, partition, now_us(), rows)
    }

    /// Read up to `max` records from `[from_offset, ...)`. Errors if
    /// `from_offset` has been truncated away (retention expired);
    /// reading at/past the end returns an empty vector.
    pub fn read(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
    ) -> Result<Vec<Record>> {
        let t = self.topic(topic)?;
        let part = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        let p = part.read();
        if from_offset < p.base_offset {
            return Err(SsError::Execution(format!(
                "offset {from_offset} of {topic}/{partition} is below the retention \
                 horizon {} (data expired)",
                p.base_offset
            )));
        }
        let idx = (from_offset - p.base_offset) as usize;
        if idx >= p.records.len() {
            return Ok(Vec::new());
        }
        let end = (idx + max).min(p.records.len());
        Ok(p.records[idx..end].to_vec())
    }

    /// Visit records `[from_offset, from_offset + max)` in place,
    /// without cloning them out of the log — the zero-copy path the
    /// vectorized source uses to build columns directly.
    pub fn read_with(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
        f: &mut dyn FnMut(&Record),
    ) -> Result<usize> {
        let t = self.topic(topic)?;
        let part = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        let p = part.read();
        if from_offset < p.base_offset {
            return Err(SsError::Execution(format!(
                "offset {from_offset} of {topic}/{partition} is below the retention \
                 horizon {} (data expired)",
                p.base_offset
            )));
        }
        let idx = (from_offset - p.base_offset) as usize;
        if idx >= p.records.len() {
            return Ok(0);
        }
        let end = (idx + max).min(p.records.len());
        for rec in &p.records[idx..end] {
            f(rec);
        }
        Ok(end - idx)
    }

    /// Read a half-open offset range `[start, end)` from one partition.
    pub fn read_range(
        &self,
        topic: &str,
        partition: u32,
        start: u64,
        end: u64,
    ) -> Result<Vec<Record>> {
        if end < start {
            return Err(SsError::Internal(format!(
                "read_range end {end} < start {start}"
            )));
        }
        self.read(topic, partition, start, (end - start) as usize)
    }

    /// The next offset to be written, per partition ("latest offsets" in
    /// the epoch protocol, §6.1 step 1).
    pub fn latest_offsets(&self, topic: &str) -> Result<PartitionOffsets> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.read().next_offset()))
            .collect())
    }

    /// Earliest retained offset, per partition.
    pub fn earliest_offsets(&self, topic: &str) -> Result<PartitionOffsets> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.read().base_offset))
            .collect())
    }

    /// Total records currently retained in the topic.
    pub fn retained_records(&self, topic: &str) -> Result<u64> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .map(|p| p.read().records.len() as u64)
            .sum())
    }

    /// Simulate retention: drop records below `offset` in a partition.
    pub fn truncate_before(&self, topic: &str, partition: u32, offset: u64) -> Result<()> {
        let t = self.topic(topic)?;
        let part = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        let mut p = part.write();
        if offset <= p.base_offset {
            return Ok(());
        }
        let cut = ((offset - p.base_offset) as usize).min(p.records.len());
        p.records.drain(..cut);
        p.base_offset = offset;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::row;

    fn bus() -> MessageBus {
        let b = MessageBus::new();
        b.create_topic("events", 2).unwrap();
        b
    }

    #[test]
    fn create_validates() {
        let b = bus();
        assert!(b.create_topic("events", 1).is_err());
        assert!(b.create_topic("zero", 0).is_err());
        assert!(b.has_topic("events"));
        assert_eq!(b.num_partitions("events").unwrap(), 2);
        assert!(b.read("nope", 0, 0, 1).is_err());
    }

    #[test]
    fn append_and_read_back() {
        let b = bus();
        let first = b.append_at("events", 0, 100, vec![row![1i64], row![2i64]]).unwrap();
        assert_eq!(first, 0);
        let next = b.append_at("events", 0, 200, vec![row![3i64]]).unwrap();
        assert_eq!(next, 2);
        let records = b.read("events", 0, 1, 10).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].offset, 1);
        assert_eq!(records[0].row, row![2i64]);
        assert_eq!(records[1].ingest_time_us, 200);
        // Other partition untouched.
        assert!(b.read("events", 1, 0, 10).unwrap().is_empty());
        // Reading past the end is empty, not an error.
        assert!(b.read("events", 0, 3, 10).unwrap().is_empty());
    }

    #[test]
    fn replay_reads_the_same_data_twice() {
        let b = bus();
        b.append_at("events", 0, 0, (0..5).map(|i| row![i])).unwrap();
        let a = b.read_range("events", 0, 1, 4).unwrap();
        let c = b.read_range("events", 0, 1, 4).unwrap();
        assert_eq!(a, c);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn latest_and_earliest_offsets() {
        let b = bus();
        b.append_at("events", 0, 0, vec![row![1i64]]).unwrap();
        b.append_at("events", 1, 0, vec![row![1i64], row![2i64]]).unwrap();
        let latest = b.latest_offsets("events").unwrap();
        assert_eq!(latest[&0], 1);
        assert_eq!(latest[&1], 2);
        assert_eq!(b.earliest_offsets("events").unwrap()[&0], 0);
        assert_eq!(b.retained_records("events").unwrap(), 3);
    }

    #[test]
    fn truncation_expires_old_data() {
        let b = bus();
        b.append_at("events", 0, 0, (0..10).map(|i| row![i])).unwrap();
        b.truncate_before("events", 0, 4).unwrap();
        assert_eq!(b.earliest_offsets("events").unwrap()[&0], 4);
        assert_eq!(b.retained_records("events").unwrap(), 6);
        // Reading expired offsets errors (the rollback-too-far case).
        let err = b.read("events", 0, 2, 10).unwrap_err();
        assert!(err.to_string().contains("retention"));
        // Reading retained offsets still works and keeps numbering.
        let r = b.read("events", 0, 4, 2).unwrap();
        assert_eq!(r[0].offset, 4);
        assert_eq!(r[0].row, row![4i64]);
        // Truncating backwards is a no-op.
        b.truncate_before("events", 0, 1).unwrap();
        assert_eq!(b.earliest_offsets("events").unwrap()[&0], 4);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let b = Arc::new(MessageBus::new());
        b.create_topic("t", 4).unwrap();
        let mut handles = Vec::new();
        for p in 0..4u32 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500i64 {
                    b.append_at("t", p, i, vec![row![i]]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for p in 0..4u32 {
            let records = b.read("t", p, 0, 10_000).unwrap();
            assert_eq!(records.len(), 500);
            // Offsets are dense and ordered.
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.offset, i as u64);
            }
        }
    }
}
