//! The in-process message bus (Kafka/Kinesis stand-in).
//!
//! Topics hold ordered, offset-addressed partitions of [`Record`]s.
//! Records are retained after consumption (consumers track their own
//! offsets, as with Kafka), which is what makes sources *replayable* —
//! requirement (1) the paper places on input sources (§3). Retention
//! limits are simulated with [`MessageBus::truncate_before`]: reading
//! past truncated data fails, exactly the "input sources no longer have
//! the data" failure mode §7.2 mentions for rollbacks.
//!
//! ## Bounded topics and producer-side backpressure
//!
//! An unbounded topic turns a slow consumer into unbounded memory
//! growth. Topics created with [`TopicConfig::capacity`] bound the
//! retained records per partition, and the producer-side
//! [`OverflowPolicy`] decides what an append into a full partition
//! does: [`OverflowPolicy::Block`] parks the producer until retention
//! trimming frees space (pressure propagates upstream, with a timeout
//! so a wedged consumer surfaces as [`SsError::ResourceExhausted`]),
//! [`OverflowPolicy::DropOldest`] sheds the oldest retained records
//! (counted in [`MessageBus::shed_records`]), and
//! [`OverflowPolicy::Reject`] refuses the append outright.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use ss_common::clock::{system_clock, ClockRef};
use ss_common::time::now_us;
use ss_common::{PartitionOffsets, Result, Row, SsError};

/// How often a [`OverflowPolicy::Block`] producer re-checks capacity
/// when the bus runs on a virtual clock (a condvar wait is invisible to
/// simulated time, so the blocked producer polls; each poll's sleep is
/// what lets the simulation advance past it).
const BLOCK_POLL: Duration = Duration::from_millis(1);

/// What a producer append does when a bounded partition is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Park the producer until retention trimming frees space, up to
    /// `timeout_us`; a timeout surfaces as
    /// [`SsError::ResourceExhausted`]. Records are admitted one at a
    /// time as space frees, so a timed-out append may have appended a
    /// prefix of the batch (offsets remain dense and ordered).
    Block { timeout_us: u64 },
    /// Shed the oldest retained records to make room, advancing the
    /// retention horizon. Sheds are counted per topic
    /// ([`MessageBus::shed_records`]).
    DropOldest,
    /// Refuse the whole batch (nothing is appended) with
    /// [`SsError::ResourceExhausted`].
    Reject,
}

/// Configuration for a bounded topic ([`MessageBus::create_topic_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicConfig {
    /// Number of partitions (must be ≥ 1).
    pub partitions: u32,
    /// Maximum retained records *per partition*; `None` is unbounded
    /// (the [`MessageBus::create_topic`] behavior).
    pub capacity: Option<usize>,
    /// Producer-side behavior when a partition is at capacity.
    pub overflow: OverflowPolicy,
}

impl Default for TopicConfig {
    fn default() -> TopicConfig {
        TopicConfig {
            partitions: 1,
            capacity: None,
            overflow: OverflowPolicy::Reject,
        }
    }
}

/// One message in a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Position within the partition (dense, starting at 0).
    pub offset: u64,
    /// Bus ingestion time (µs since epoch) — the processing-time stamp
    /// used for end-to-end latency measurements.
    pub ingest_time_us: i64,
    /// The payload.
    pub row: Row,
}

#[derive(Debug, Default)]
struct Partition {
    /// Offset of the first retained record (earlier records truncated).
    base_offset: u64,
    records: Vec<Record>,
}

impl Partition {
    fn next_offset(&self) -> u64 {
        self.base_offset + self.records.len() as u64
    }
}

/// A partition plus the condition variable [`OverflowPolicy::Block`]
/// producers wait on until [`MessageBus::truncate_before`] frees space.
/// (The vendored `parking_lot` shim's `MutexGuard` is `std`'s, so the
/// `std` condvar pairs with it directly.)
#[derive(Debug, Default)]
struct PartitionSlot {
    state: Mutex<Partition>,
    space_freed: Condvar,
}

#[derive(Debug)]
struct Topic {
    partitions: Vec<PartitionSlot>,
    capacity: Option<usize>,
    overflow: OverflowPolicy,
    /// Records shed by [`OverflowPolicy::DropOldest`] since creation.
    shed: AtomicU64,
}

/// A thread-safe, in-process, partitioned message bus.
#[derive(Debug)]
pub struct MessageBus {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    /// Clock backing [`OverflowPolicy::Block`] timeouts (and nothing
    /// else — ingest stamps are supplied by callers or `append`).
    clock: RwLock<ClockRef>,
}

impl Default for MessageBus {
    fn default() -> MessageBus {
        MessageBus {
            topics: RwLock::new(HashMap::new()),
            clock: RwLock::new(system_clock()),
        }
    }
}

impl MessageBus {
    pub fn new() -> MessageBus {
        MessageBus::default()
    }

    /// Re-point blocking-append timeouts at `clock` (virtual timeouts
    /// under simulation).
    pub fn set_clock(&self, clock: ClockRef) {
        *self.clock.write() = clock;
    }

    /// Create an unbounded topic with `partitions` partitions. Errors
    /// if it already exists.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        self.create_topic_with(
            name,
            TopicConfig {
                partitions,
                ..TopicConfig::default()
            },
        )
    }

    /// Create a topic with an explicit [`TopicConfig`] — the way to get
    /// a *bounded* topic whose producers feel backpressure.
    pub fn create_topic_with(&self, name: &str, config: TopicConfig) -> Result<()> {
        if config.partitions == 0 {
            return Err(SsError::Plan("topics need at least one partition".into()));
        }
        if config.capacity == Some(0) {
            return Err(SsError::Plan("topic capacity must be at least 1".into()));
        }
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(SsError::Plan(format!("topic `{name}` already exists")));
        }
        topics.insert(
            name.to_string(),
            Arc::new(Topic {
                partitions: (0..config.partitions).map(|_| PartitionSlot::default()).collect(),
                capacity: config.capacity,
                overflow: config.overflow,
                shed: AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SsError::Plan(format!("unknown topic `{name}`")))
    }

    pub fn has_topic(&self, name: &str) -> bool {
        self.topics.read().contains_key(name)
    }

    pub fn num_partitions(&self, topic: &str) -> Result<u32> {
        Ok(self.topic(topic)?.partitions.len() as u32)
    }

    /// Append rows to a partition with an explicit ingestion timestamp
    /// (deterministic tests / simulated time). Returns the offset of
    /// the first appended record.
    pub fn append_at(
        &self,
        topic: &str,
        partition: u32,
        ingest_time_us: i64,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<u64> {
        let t = self.topic(topic)?;
        let slot = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        // Materialize so the batch size is known before the capacity
        // check (`Reject` refuses atomically, nothing half-appended).
        let rows: Vec<Row> = rows.into_iter().collect();
        let mut p = slot.state.lock();
        let first = p.next_offset();
        match (t.capacity, t.overflow) {
            (Some(cap), OverflowPolicy::Reject) if p.records.len() + rows.len() > cap => {
                return Err(SsError::ResourceExhausted(format!(
                    "topic `{topic}`/{partition} is full ({} of {cap} records retained; \
                     batch of {} rejected)",
                    p.records.len(),
                    rows.len()
                )));
            }
            (Some(cap), OverflowPolicy::Block { timeout_us }) => {
                let clock = self.clock.read().clone();
                let timed_out = || {
                    SsError::ResourceExhausted(format!(
                        "append to `{topic}`/{partition} blocked for {timeout_us}µs \
                         waiting for capacity {cap} to free (consumer stalled?)"
                    ))
                };
                // Offsets are recomputed per push (and the first one
                // re-captured): another producer may append while this
                // one waits with the lock released.
                let mut first_appended = None;
                if clock.is_virtual() {
                    // Virtual time cannot observe a condvar wait, so
                    // poll: release the lock, sleep on the clock (which
                    // is what lets simulated time advance), re-check.
                    let deadline = clock.deadline_us(Duration::from_micros(timeout_us));
                    for row in rows {
                        while p.records.len() >= cap {
                            if clock.monotonic_us() >= deadline {
                                return Err(timed_out());
                            }
                            drop(p);
                            clock.sleep(BLOCK_POLL);
                            p = slot.state.lock();
                        }
                        let offset = p.next_offset();
                        first_appended.get_or_insert(offset);
                        p.records.push(Record {
                            offset,
                            ingest_time_us,
                            row,
                        });
                    }
                    return Ok(first_appended.unwrap_or(first));
                }
                let deadline = Instant::now() + Duration::from_micros(timeout_us);
                for row in rows {
                    while p.records.len() >= cap {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            return Err(timed_out());
                        }
                        let (guard, _) = slot
                            .space_freed
                            .wait_timeout(p, remaining)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        p = guard;
                    }
                    let offset = p.next_offset();
                    first_appended.get_or_insert(offset);
                    p.records.push(Record {
                        offset,
                        ingest_time_us,
                        row,
                    });
                }
                return Ok(first_appended.unwrap_or(first));
            }
            _ => {}
        }
        for (offset, row) in (first..).zip(rows) {
            p.records.push(Record {
                offset,
                ingest_time_us,
                row,
            });
        }
        if let (Some(cap), OverflowPolicy::DropOldest) = (t.capacity, t.overflow) {
            if p.records.len() > cap {
                let shed = p.records.len() - cap;
                p.records.drain(..shed);
                p.base_offset += shed as u64;
                t.shed.fetch_add(shed as u64, Ordering::Relaxed);
            }
        }
        Ok(first)
    }

    /// Records shed by [`OverflowPolicy::DropOldest`] appends since the
    /// topic was created. Always 0 for unbounded or non-shedding topics.
    pub fn shed_records(&self, topic: &str) -> Result<u64> {
        Ok(self.topic(topic)?.shed.load(Ordering::Relaxed))
    }

    /// Append rows stamped with the current wall clock.
    pub fn append(
        &self,
        topic: &str,
        partition: u32,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<u64> {
        self.append_at(topic, partition, now_us(), rows)
    }

    /// Read up to `max` records from `[from_offset, ...)`. Errors if
    /// `from_offset` has been truncated away (retention expired);
    /// reading at/past the end returns an empty vector.
    pub fn read(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
    ) -> Result<Vec<Record>> {
        let t = self.topic(topic)?;
        let slot = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        let p = slot.state.lock();
        if from_offset < p.base_offset {
            return Err(SsError::Execution(format!(
                "offset {from_offset} of {topic}/{partition} is below the retention \
                 horizon {} (data expired)",
                p.base_offset
            )));
        }
        let idx = (from_offset - p.base_offset) as usize;
        if idx >= p.records.len() {
            return Ok(Vec::new());
        }
        let end = (idx + max).min(p.records.len());
        Ok(p.records[idx..end].to_vec())
    }

    /// Visit records `[from_offset, from_offset + max)` in place,
    /// without cloning them out of the log — the zero-copy path the
    /// vectorized source uses to build columns directly.
    pub fn read_with(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
        f: &mut dyn FnMut(&Record),
    ) -> Result<usize> {
        let t = self.topic(topic)?;
        let slot = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        let p = slot.state.lock();
        if from_offset < p.base_offset {
            return Err(SsError::Execution(format!(
                "offset {from_offset} of {topic}/{partition} is below the retention \
                 horizon {} (data expired)",
                p.base_offset
            )));
        }
        let idx = (from_offset - p.base_offset) as usize;
        if idx >= p.records.len() {
            return Ok(0);
        }
        let end = (idx + max).min(p.records.len());
        for rec in &p.records[idx..end] {
            f(rec);
        }
        Ok(end - idx)
    }

    /// Read a half-open offset range `[start, end)` from one partition.
    pub fn read_range(
        &self,
        topic: &str,
        partition: u32,
        start: u64,
        end: u64,
    ) -> Result<Vec<Record>> {
        if end < start {
            return Err(SsError::Internal(format!(
                "read_range end {end} < start {start}"
            )));
        }
        self.read(topic, partition, start, (end - start) as usize)
    }

    /// The next offset to be written, per partition ("latest offsets" in
    /// the epoch protocol, §6.1 step 1).
    pub fn latest_offsets(&self, topic: &str) -> Result<PartitionOffsets> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.state.lock().next_offset()))
            .collect())
    }

    /// Earliest retained offset, per partition.
    pub fn earliest_offsets(&self, topic: &str) -> Result<PartitionOffsets> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.state.lock().base_offset))
            .collect())
    }

    /// Total records currently retained in the topic.
    pub fn retained_records(&self, topic: &str) -> Result<u64> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .map(|p| p.state.lock().records.len() as u64)
            .sum())
    }

    /// Simulate retention: drop records below `offset` in a partition.
    /// Frees capacity in bounded topics, waking blocked producers.
    pub fn truncate_before(&self, topic: &str, partition: u32, offset: u64) -> Result<()> {
        let t = self.topic(topic)?;
        let slot = t
            .partitions
            .get(partition as usize)
            .ok_or_else(|| SsError::Plan(format!("topic `{topic}` has no partition {partition}")))?;
        let mut p = slot.state.lock();
        if offset <= p.base_offset {
            return Ok(());
        }
        let cut = ((offset - p.base_offset) as usize).min(p.records.len());
        p.records.drain(..cut);
        p.base_offset = offset;
        drop(p);
        slot.space_freed.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::row;

    fn bus() -> MessageBus {
        let b = MessageBus::new();
        b.create_topic("events", 2).unwrap();
        b
    }

    #[test]
    fn create_validates() {
        let b = bus();
        assert!(b.create_topic("events", 1).is_err());
        assert!(b.create_topic("zero", 0).is_err());
        assert!(b.has_topic("events"));
        assert_eq!(b.num_partitions("events").unwrap(), 2);
        assert!(b.read("nope", 0, 0, 1).is_err());
    }

    #[test]
    fn append_and_read_back() {
        let b = bus();
        let first = b.append_at("events", 0, 100, vec![row![1i64], row![2i64]]).unwrap();
        assert_eq!(first, 0);
        let next = b.append_at("events", 0, 200, vec![row![3i64]]).unwrap();
        assert_eq!(next, 2);
        let records = b.read("events", 0, 1, 10).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].offset, 1);
        assert_eq!(records[0].row, row![2i64]);
        assert_eq!(records[1].ingest_time_us, 200);
        // Other partition untouched.
        assert!(b.read("events", 1, 0, 10).unwrap().is_empty());
        // Reading past the end is empty, not an error.
        assert!(b.read("events", 0, 3, 10).unwrap().is_empty());
    }

    #[test]
    fn replay_reads_the_same_data_twice() {
        let b = bus();
        b.append_at("events", 0, 0, (0..5).map(|i| row![i])).unwrap();
        let a = b.read_range("events", 0, 1, 4).unwrap();
        let c = b.read_range("events", 0, 1, 4).unwrap();
        assert_eq!(a, c);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn latest_and_earliest_offsets() {
        let b = bus();
        b.append_at("events", 0, 0, vec![row![1i64]]).unwrap();
        b.append_at("events", 1, 0, vec![row![1i64], row![2i64]]).unwrap();
        let latest = b.latest_offsets("events").unwrap();
        assert_eq!(latest[&0], 1);
        assert_eq!(latest[&1], 2);
        assert_eq!(b.earliest_offsets("events").unwrap()[&0], 0);
        assert_eq!(b.retained_records("events").unwrap(), 3);
    }

    #[test]
    fn truncation_expires_old_data() {
        let b = bus();
        b.append_at("events", 0, 0, (0..10).map(|i| row![i])).unwrap();
        b.truncate_before("events", 0, 4).unwrap();
        assert_eq!(b.earliest_offsets("events").unwrap()[&0], 4);
        assert_eq!(b.retained_records("events").unwrap(), 6);
        // Reading expired offsets errors (the rollback-too-far case).
        let err = b.read("events", 0, 2, 10).unwrap_err();
        assert!(err.to_string().contains("retention"));
        // Reading retained offsets still works and keeps numbering.
        let r = b.read("events", 0, 4, 2).unwrap();
        assert_eq!(r[0].offset, 4);
        assert_eq!(r[0].row, row![4i64]);
        // Truncating backwards is a no-op.
        b.truncate_before("events", 0, 1).unwrap();
        assert_eq!(b.earliest_offsets("events").unwrap()[&0], 4);
    }

    fn bounded(capacity: usize, overflow: OverflowPolicy) -> MessageBus {
        let b = MessageBus::new();
        b.create_topic_with(
            "t",
            TopicConfig {
                partitions: 1,
                capacity: Some(capacity),
                overflow,
            },
        )
        .unwrap();
        b
    }

    #[test]
    fn bounded_topic_validates_capacity() {
        let b = MessageBus::new();
        let err = b
            .create_topic_with(
                "t",
                TopicConfig {
                    partitions: 1,
                    capacity: Some(0),
                    overflow: OverflowPolicy::Reject,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn reject_policy_refuses_whole_batch() {
        let b = bounded(3, OverflowPolicy::Reject);
        b.append_at("t", 0, 0, vec![row![1i64], row![2i64]]).unwrap();
        // A batch that would overflow is refused atomically.
        let err = b.append_at("t", 0, 0, vec![row![3i64], row![4i64]]).unwrap_err();
        assert_eq!(err.category(), "resource_exhausted");
        assert_eq!(b.retained_records("t").unwrap(), 2);
        // A batch that fits still lands.
        b.append_at("t", 0, 0, vec![row![3i64]]).unwrap();
        assert_eq!(b.retained_records("t").unwrap(), 3);
        assert_eq!(b.shed_records("t").unwrap(), 0);
    }

    #[test]
    fn drop_oldest_sheds_and_counts() {
        let b = bounded(3, OverflowPolicy::DropOldest);
        b.append_at("t", 0, 0, (0..5).map(|i| row![i])).unwrap();
        // Capacity 3: the two oldest records were shed.
        assert_eq!(b.retained_records("t").unwrap(), 3);
        assert_eq!(b.shed_records("t").unwrap(), 2);
        assert_eq!(b.earliest_offsets("t").unwrap()[&0], 2);
        // Offsets stay dense; shed records read as expired.
        let r = b.read("t", 0, 2, 10).unwrap();
        assert_eq!(r[0].row, row![2i64]);
        assert!(b.read("t", 0, 0, 10).is_err());
        // Shedding accumulates across appends.
        b.append_at("t", 0, 0, vec![row![5i64]]).unwrap();
        assert_eq!(b.shed_records("t").unwrap(), 3);
    }

    #[test]
    fn block_policy_times_out_when_consumer_stalls() {
        let b = bounded(2, OverflowPolicy::Block { timeout_us: 20_000 });
        b.append_at("t", 0, 0, vec![row![1i64], row![2i64]]).unwrap();
        let start = Instant::now();
        let err = b.append_at("t", 0, 0, vec![row![3i64]]).unwrap_err();
        assert_eq!(err.category(), "resource_exhausted");
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(b.retained_records("t").unwrap(), 2);
    }

    #[test]
    fn block_policy_times_out_on_virtual_time() {
        use ss_common::clock::SimClock;
        // An hour-long producer timeout elapses virtually: the blocked
        // producer's polls are the only sleeps, so the clock jumps
        // straight through them and the append fails in wall-microseconds.
        let b = bounded(2, OverflowPolicy::Block { timeout_us: 3_600_000_000 });
        let sim = SimClock::new(7);
        b.set_clock(sim.handle());
        b.append_at("t", 0, 0, vec![row![1i64], row![2i64]]).unwrap();
        let start = Instant::now();
        let err = b.append_at("t", 0, 0, vec![row![3i64]]).unwrap_err();
        assert_eq!(err.category(), "resource_exhausted");
        assert!(sim.now_us() >= 3_600_000_000, "virtual wait ran to the deadline");
        assert!(start.elapsed() < Duration::from_secs(5), "wall time stayed bounded");
        assert_eq!(b.retained_records("t").unwrap(), 2);
    }

    #[test]
    fn block_policy_unblocks_when_retention_frees_space() {
        let b = Arc::new(bounded(2, OverflowPolicy::Block { timeout_us: 5_000_000 }));
        b.append_at("t", 0, 0, vec![row![1i64], row![2i64]]).unwrap();
        let producer = {
            let b = b.clone();
            std::thread::spawn(move || b.append_at("t", 0, 0, vec![row![3i64], row![4i64]]))
        };
        // Consumer catches up: truncating consumed offsets frees
        // capacity and wakes the blocked producer.
        std::thread::sleep(Duration::from_millis(20));
        b.truncate_before("t", 0, 2).unwrap();
        let first = producer.join().unwrap().unwrap();
        assert_eq!(first, 2);
        let r = b.read("t", 0, 2, 10).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[1].row, row![4i64]);
        assert_eq!(b.shed_records("t").unwrap(), 0);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let b = Arc::new(MessageBus::new());
        b.create_topic("t", 4).unwrap();
        let mut handles = Vec::new();
        for p in 0..4u32 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500i64 {
                    b.append_at("t", p, i, vec![row![i]]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for p in 0..4u32 {
            let records = b.read("t", p, 0, 10_000).unwrap();
            assert_eq!(records.len(), 500);
            // Offsets are dense and ordered.
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.offset, i as u64);
            }
        }
    }
}
