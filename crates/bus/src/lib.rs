//! # ss-bus — replayable message bus and connectors
//!
//! The I/O layer of the reproduction:
//!
//! * [`bus`] — an in-process, partitioned, offset-addressed message bus:
//!   the Kafka/Kinesis stand-in. Topics are divided into partitions,
//!   each an ordered log addressable by offset, so any range of recent
//!   input can be re-read after a failure — the *replayability*
//!   requirement the paper places on sources (§3, §6.1). Retention can
//!   be truncated to simulate expired data.
//! * [`source`] — the [`Source`] trait plus connectors: [`BusSource`]
//!   (read a topic), [`GeneratorSource`] (deterministic synthetic data,
//!   replayable by construction), [`FileSource`] (JSON files appearing
//!   in a directory — the paper's §4.1 example).
//! * [`sink`] — the [`Sink`] trait plus connectors with *idempotent
//!   epoch commits* (§3, §6.1): [`MemorySink`] (queryable result table),
//!   [`FileSink`] (epoch-named JSON files; complete mode replaces a
//!   whole result file, as in §4.1), [`BusSink`] (write back to a
//!   topic, the "stream-to-stream transform" deployment of §6.3).
//! * [`json`] — row ⇄ JSON conversion shared by the file connectors and
//!   the Kafka-Streams-style baseline (which pays this cost per hop).
//! * [`dlq`] — the [`DeadLetterQueue`]: an epoch-committed, idempotent
//!   destination for quarantined poison records with failure metadata.
//! * [`scan_cache`] — the multi-query [`ScanCache`] and
//!   [`SharedScanSource`]: N queries over one topic share one bus read
//!   per `(topic, offset-range)`, fanned out through a ref-counted
//!   cache of materialized batches.

pub mod bus;
pub mod dlq;
pub mod json;
pub mod metrics;
pub mod scan_cache;
pub mod sink;
pub mod source;

pub use bus::{MessageBus, OverflowPolicy, Record, TopicConfig};
pub use dlq::{DeadLetterQueue, DeadLetterRecord};
pub use metrics::{InstrumentedSink, SinkMetrics, SourceMetrics};
pub use scan_cache::{ScanCache, ScanCacheStats, SharedScanSource};
pub use sink::{BusSink, CallbackSink, EpochOutput, FenceGuard, FencedSink, FileSink, MemorySink, Sink};
pub use source::{BusSource, FileSource, GeneratorSource, Source};
