//! Sinks: idempotent epoch-committed outputs.
//!
//! Requirement (2) of §3: "Output sinks must support idempotent writes,
//! to ensure reliable recovery if a node fails while writing." Every
//! sink here receives output as whole epochs; committing the same epoch
//! twice leaves exactly one copy, which is what lets recovery re-run
//! the last uncommitted epoch (§6.1 step 4).
//!
//! The three output modes of §4.2 map onto [`EpochOutput`]:
//! * `Append(batch)` — new rows only;
//! * `Update { batch, key_cols }` — upserts keyed by `key_cols`;
//! * `Complete(batch)` — the whole result table.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ss_common::{RecordBatch, Result, Row, SchemaRef, SsError};

use crate::bus::MessageBus;
use crate::json::row_to_json;

/// One epoch's output, in one of the three output modes (§4.2).
#[derive(Debug, Clone)]
pub enum EpochOutput {
    Append(RecordBatch),
    Update {
        batch: RecordBatch,
        /// Column indices forming the upsert key.
        key_cols: Vec<usize>,
    },
    Complete(RecordBatch),
}

impl EpochOutput {
    pub fn batch(&self) -> &RecordBatch {
        match self {
            EpochOutput::Append(b)
            | EpochOutput::Update { batch: b, .. }
            | EpochOutput::Complete(b) => b,
        }
    }

    pub fn num_rows(&self) -> usize {
        self.batch().num_rows()
    }
}

/// An idempotent, epoch-committed output.
pub trait Sink: Send + Sync {
    fn name(&self) -> &str;
    /// Commit one epoch's output. MUST be idempotent: committing the
    /// same `(epoch, output)` again leaves the sink unchanged.
    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()>;
    /// Remove output from epochs after `epoch`, where the sink supports
    /// it (manual rollback, §7.2; footnote 4 notes this is
    /// sink-specific).
    fn truncate_after(&self, _epoch: u64) -> Result<()> {
        Ok(())
    }
    /// Total rows accepted (monitoring, §7.4).
    fn rows_written(&self) -> u64;
}

#[derive(Default)]
struct MemorySinkState {
    schema: Option<SchemaRef>,
    /// Append mode: rows per epoch (keyed by epoch => idempotent).
    appended: BTreeMap<u64, Vec<Row>>,
    /// Update mode: upsert map, key → (epoch, row).
    updated: BTreeMap<Row, (u64, Row)>,
    /// Complete mode: the last full table (epoch, rows).
    complete: Option<(u64, Vec<Row>)>,
}

/// An in-memory queryable result table — the paper's "output to an
/// in-memory Spark table that users can query interactively" (§3).
pub struct MemorySink {
    name: String,
    state: Mutex<MemorySinkState>,
    rows_written: AtomicU64,
}

impl MemorySink {
    pub fn new(name: impl Into<String>) -> Arc<MemorySink> {
        Arc::new(MemorySink {
            name: name.into(),
            state: Mutex::new(MemorySinkState::default()),
            rows_written: AtomicU64::new(0),
        })
    }

    /// A consistent snapshot of the current result table, sorted by
    /// row for update/complete modes (append preserves arrival order).
    pub fn snapshot(&self) -> Vec<Row> {
        let st = self.state.lock();
        if let Some((_, rows)) = &st.complete {
            return rows.clone();
        }
        if !st.updated.is_empty() {
            return st.updated.values().map(|(_, r)| r.clone()).collect();
        }
        st.appended.values().flatten().cloned().collect()
    }

    /// The snapshot as a batch (None before the first commit).
    pub fn to_batch(&self) -> Result<Option<RecordBatch>> {
        let schema = { self.state.lock().schema.clone() };
        match schema {
            None => Ok(None),
            Some(s) => Ok(Some(RecordBatch::from_rows(s, &self.snapshot())?)),
        }
    }

    /// Epochs committed so far (append mode).
    pub fn committed_epochs(&self) -> Vec<u64> {
        self.state.lock().appended.keys().copied().collect()
    }
}

impl Sink for MemorySink {
    fn name(&self) -> &str {
        &self.name
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()> {
        let mut st = self.state.lock();
        st.schema.get_or_insert_with(|| output.batch().schema().clone());
        match output {
            EpochOutput::Append(batch) => {
                // Keyed by epoch: a re-run replaces, never duplicates.
                st.appended.insert(epoch, batch.to_rows());
            }
            EpochOutput::Update { batch, key_cols } => {
                for row in batch.to_rows() {
                    let key = row.project(key_cols);
                    st.updated.insert(key, (epoch, row));
                }
            }
            EpochOutput::Complete(batch) => {
                st.complete = Some((epoch, batch.to_rows()));
            }
        }
        self.rows_written
            .fetch_add(output.num_rows() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn truncate_after(&self, epoch: u64) -> Result<()> {
        let mut st = self.state.lock();
        st.appended.retain(|&e, _| e <= epoch);
        // Upserts from later epochs are dropped; overwritten earlier
        // values cannot be restored (sink-specific limitation, §7.2
        // footnote 4).
        st.updated.retain(|_, (e, _)| *e <= epoch);
        if st.complete.as_ref().is_some_and(|(e, _)| *e > epoch) {
            st.complete = None;
        }
        Ok(())
    }

    fn rows_written(&self) -> u64 {
        self.rows_written.load(Ordering::Relaxed)
    }
}

/// Writes each epoch as a JSON-lines file. Append/update epochs become
/// `part-<epoch>.json` (idempotent: a re-run overwrites the same file);
/// complete mode replaces `result.json` wholesale — "e.g., replacing a
/// whole file in HDFS with a new version" (§4.2).
pub struct FileSink {
    name: String,
    dir: PathBuf,
    rows_written: AtomicU64,
}

impl FileSink {
    pub fn new(dir: impl AsRef<Path>) -> Result<Arc<FileSink>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Arc::new(FileSink {
            name: format!("files:{}", dir.display()),
            dir,
            rows_written: AtomicU64::new(0),
        }))
    }

    fn write_atomic(&self, file: &Path, contents: &str) -> Result<()> {
        let tmp = file.with_extension("tmp");
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, file)?;
        Ok(())
    }

    fn render(batch: &RecordBatch) -> Result<String> {
        let mut out = String::new();
        for row in batch.to_rows() {
            out.push_str(&row_to_json(batch.schema(), &row)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Read everything the sink currently holds (test/demo helper).
    pub fn read_all(&self) -> Result<Vec<String>> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut lines = Vec::new();
        for f in files {
            for line in std::fs::read_to_string(&f)?.lines() {
                if !line.trim().is_empty() {
                    lines.push(line.to_string());
                }
            }
        }
        Ok(lines)
    }
}

impl Sink for FileSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()> {
        match output {
            EpochOutput::Append(batch) | EpochOutput::Update { batch, .. } => {
                let file = self.dir.join(format!("part-{epoch:020}.json"));
                self.write_atomic(&file, &Self::render(batch)?)?;
            }
            EpochOutput::Complete(batch) => {
                let file = self.dir.join("result.json");
                self.write_atomic(&file, &Self::render(batch)?)?;
            }
        }
        self.rows_written
            .fetch_add(output.num_rows() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn truncate_after(&self, epoch: u64) -> Result<()> {
        // "For the file sink [...] it's straightforward to find which
        // files were written in a particular epoch and remove those"
        // (§7.2 footnote 4).
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(e) = name
                .strip_prefix("part-")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                if e > epoch {
                    std::fs::remove_file(&path)?;
                }
            }
        }
        Ok(())
    }

    fn rows_written(&self) -> u64 {
        self.rows_written.load(Ordering::Relaxed)
    }
}

/// Writes output rows back to a bus topic — the "transform data before
/// it is used in other streaming applications" deployment the paper
/// says is the most common low-latency use case (§6.3).
pub struct BusSink {
    name: String,
    bus: Arc<MessageBus>,
    topic: String,
    committed: Mutex<BTreeSet<u64>>,
    rows_written: AtomicU64,
}

impl BusSink {
    pub fn new(bus: Arc<MessageBus>, topic: impl Into<String>) -> Result<Arc<BusSink>> {
        let topic = topic.into();
        if !bus.has_topic(&topic) {
            return Err(SsError::Plan(format!("unknown topic `{topic}`")));
        }
        Ok(Arc::new(BusSink {
            name: format!("bus:{topic}"),
            bus,
            topic,
            committed: Mutex::new(BTreeSet::new()),
            rows_written: AtomicU64::new(0),
        }))
    }
}

impl Sink for BusSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()> {
        {
            // Message buses cannot replace records; idempotence comes
            // from remembering committed epochs and skipping re-runs.
            let mut committed = self.committed.lock();
            if !committed.insert(epoch) {
                return Ok(());
            }
        }
        let batch = output.batch();
        let partitions = self.bus.num_partitions(&self.topic)?;
        let rows = batch.to_rows();
        // Spread rows round-robin across partitions.
        for (i, row) in rows.into_iter().enumerate() {
            self.bus
                .append(&self.topic, (i as u32) % partitions, vec![row])?;
        }
        self.rows_written
            .fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn rows_written(&self) -> u64 {
        self.rows_written.load(Ordering::Relaxed)
    }
}

/// Hands each epoch's output to a user closure — the `foreachBatch`
/// pattern: "users can compute a static table [...] or integrate with
/// arbitrary external systems" while the engine supplies exactly-once
/// epoch semantics. Re-delivery of an already-seen epoch is suppressed
/// (the closure need not be idempotent itself within one process
/// lifetime).
pub struct CallbackSink {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(u64, &EpochOutput) -> Result<()> + Send + Sync>,
    committed: Mutex<BTreeSet<u64>>,
    rows_written: AtomicU64,
}

impl CallbackSink {
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(u64, &EpochOutput) -> Result<()> + Send + Sync + 'static,
    ) -> Arc<CallbackSink> {
        Arc::new(CallbackSink {
            name: name.into(),
            f: Box::new(f),
            committed: Mutex::new(BTreeSet::new()),
            rows_written: AtomicU64::new(0),
        })
    }
}

impl Sink for CallbackSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()> {
        {
            let mut committed = self.committed.lock();
            if !committed.insert(epoch) {
                return Ok(());
            }
        }
        // A failed delivery must stay deliverable: un-mark the epoch so
        // the recovery re-run reaches the callback again.
        if let Err(e) = (self.f)(epoch, output) {
            self.committed.lock().remove(&epoch);
            return Err(e);
        }
        self.rows_written
            .fetch_add(output.num_rows() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn truncate_after(&self, epoch: u64) -> Result<()> {
        // Allow rolled-back epochs to be re-delivered.
        self.committed.lock().retain(|&e| e <= epoch);
        Ok(())
    }

    fn rows_written(&self) -> u64 {
        self.rows_written.load(Ordering::Relaxed)
    }
}

/// The fence predicate a [`FencedSink`] consults before every mutation.
/// Returns the current fencing epoch, or an error (typically
/// `SsError::Fenced`) when the writer's leadership lease is gone. A
/// closure keeps this crate free of a dependency on the lease
/// implementation — the engine passes `LeaseManager::check_fenced`.
pub type FenceGuard = Arc<dyn Fn(&str) -> Result<u64> + Send + Sync>;

/// A [`Sink`] decorator that consults a [`FenceGuard`] before every
/// mutation, so a paused "zombie" leader that wakes after losing its
/// leadership lease cannot push output into the sink. Reads and
/// monitoring pass through untouched.
pub struct FencedSink {
    inner: Arc<dyn Sink>,
    guard: FenceGuard,
}

impl FencedSink {
    pub fn new(inner: Arc<dyn Sink>, guard: FenceGuard) -> Arc<FencedSink> {
        Arc::new(FencedSink { inner, guard })
    }

    /// The wrapped sink.
    pub fn inner(&self) -> Arc<dyn Sink> {
        self.inner.clone()
    }
}

impl Sink for FencedSink {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> Result<()> {
        (self.guard)("sink-commit")?;
        self.inner.commit_epoch(epoch, output)
    }

    fn truncate_after(&self, epoch: u64) -> Result<()> {
        (self.guard)("sink-truncate")?;
        self.inner.truncate_after(epoch)
    }

    fn rows_written(&self) -> u64 {
        self.inner.rows_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::{row, DataType, Field, Schema};

    fn schema() -> SchemaRef {
        Schema::of(vec![
            Field::new("k", DataType::Utf8),
            Field::new("n", DataType::Int64),
        ])
    }

    fn batch(rows: &[Row]) -> RecordBatch {
        RecordBatch::from_rows(schema(), rows).unwrap()
    }

    #[test]
    fn memory_sink_append_is_idempotent_per_epoch() {
        let sink = MemorySink::new("m");
        sink.commit_epoch(1, &EpochOutput::Append(batch(&[row!["a", 1i64]]))).unwrap();
        // Recovery re-runs epoch 1 with the same content.
        sink.commit_epoch(1, &EpochOutput::Append(batch(&[row!["a", 1i64]]))).unwrap();
        sink.commit_epoch(2, &EpochOutput::Append(batch(&[row!["b", 2i64]]))).unwrap();
        assert_eq!(sink.snapshot(), vec![row!["a", 1i64], row!["b", 2i64]]);
        assert_eq!(sink.committed_epochs(), vec![1, 2]);
    }

    #[test]
    fn memory_sink_update_upserts_by_key() {
        let sink = MemorySink::new("m");
        let upd = |rows: &[Row]| EpochOutput::Update {
            batch: batch(rows),
            key_cols: vec![0],
        };
        sink.commit_epoch(1, &upd(&[row!["a", 1i64], row!["b", 1i64]])).unwrap();
        sink.commit_epoch(2, &upd(&[row!["a", 5i64]])).unwrap();
        assert_eq!(sink.snapshot(), vec![row!["a", 5i64], row!["b", 1i64]]);
    }

    #[test]
    fn memory_sink_complete_replaces() {
        let sink = MemorySink::new("m");
        sink.commit_epoch(1, &EpochOutput::Complete(batch(&[row!["a", 1i64]]))).unwrap();
        sink.commit_epoch(2, &EpochOutput::Complete(batch(&[row!["a", 2i64], row!["b", 1i64]])))
            .unwrap();
        assert_eq!(sink.snapshot(), vec![row!["a", 2i64], row!["b", 1i64]]);
        let b = sink.to_batch().unwrap().unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(sink.rows_written(), 3);
    }

    #[test]
    fn memory_sink_update_and_complete_replays_are_idempotent() {
        // Re-delivering the same (epoch, output) — what recovery does
        // after a crash between sink write and commit-log write — must
        // leave the table byte-identical in every output mode.
        let upd = |rows: &[Row]| EpochOutput::Update {
            batch: batch(rows),
            key_cols: vec![0],
        };
        let sink = MemorySink::new("m");
        sink.commit_epoch(1, &upd(&[row!["a", 1i64], row!["b", 2i64]])).unwrap();
        let before = sink.snapshot();
        sink.commit_epoch(1, &upd(&[row!["a", 1i64], row!["b", 2i64]])).unwrap();
        assert_eq!(sink.snapshot(), before);

        let sink = MemorySink::new("m");
        let full = EpochOutput::Complete(batch(&[row!["a", 3i64]]));
        sink.commit_epoch(1, &full).unwrap();
        let before = sink.snapshot();
        sink.commit_epoch(1, &full).unwrap();
        assert_eq!(sink.snapshot(), before);
    }

    #[test]
    fn truncate_then_replay_restores_exactly_once() {
        // Manual rollback (§7.2) followed by the recovery replay of the
        // truncated epochs must converge on exactly one copy of each.
        let sink = MemorySink::new("m");
        for e in 1..=3u64 {
            sink.commit_epoch(e, &EpochOutput::Append(batch(&[row!["x", e as i64]]))).unwrap();
        }
        let original = sink.snapshot();
        sink.truncate_after(1).unwrap();
        assert_eq!(sink.committed_epochs(), vec![1]);
        // Replay epochs 2 and 3 (twice — replays may themselves crash).
        for _ in 0..2 {
            for e in 2..=3u64 {
                sink.commit_epoch(e, &EpochOutput::Append(batch(&[row!["x", e as i64]])))
                    .unwrap();
            }
        }
        assert_eq!(sink.snapshot(), original);
        assert_eq!(sink.committed_epochs(), vec![1, 2, 3]);
    }

    #[test]
    fn memory_sink_truncate_rolls_back_epochs() {
        let sink = MemorySink::new("m");
        for e in 1..=3u64 {
            sink.commit_epoch(e, &EpochOutput::Append(batch(&[row!["x", e as i64]]))).unwrap();
        }
        sink.truncate_after(1).unwrap();
        assert_eq!(sink.snapshot(), vec![row!["x", 1i64]]);
    }

    #[test]
    fn file_sink_epoch_files_and_complete_replacement() {
        let dir = std::env::temp_dir().join(format!("ss-bus-fsink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = FileSink::new(&dir).unwrap();
        sink.commit_epoch(1, &EpochOutput::Append(batch(&[row!["a", 1i64]]))).unwrap();
        // Idempotent re-run.
        sink.commit_epoch(1, &EpochOutput::Append(batch(&[row!["a", 1i64]]))).unwrap();
        sink.commit_epoch(2, &EpochOutput::Append(batch(&[row!["b", 2i64]]))).unwrap();
        assert_eq!(sink.read_all().unwrap().len(), 2);
        sink.truncate_after(1).unwrap();
        assert_eq!(sink.read_all().unwrap().len(), 1);
        // Complete mode rewrites one file.
        sink.commit_epoch(3, &EpochOutput::Complete(batch(&[row!["c", 3i64]]))).unwrap();
        sink.commit_epoch(4, &EpochOutput::Complete(batch(&[row!["d", 4i64]]))).unwrap();
        let lines = sink.read_all().unwrap();
        assert!(lines.iter().any(|l| l.contains("\"d\"")));
        assert!(!lines.iter().any(|l| l.contains("\"c\"")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn callback_sink_delivers_once_and_replays_after_rollback() {
        let seen = Arc::new(Mutex::new(Vec::<(u64, usize)>::new()));
        let seen2 = seen.clone();
        let sink = CallbackSink::new("cb", move |epoch, out| {
            seen2.lock().push((epoch, out.num_rows()));
            Ok(())
        });
        let out = EpochOutput::Append(batch(&[row!["a", 1i64]]));
        sink.commit_epoch(1, &out).unwrap();
        sink.commit_epoch(1, &out).unwrap(); // recovery re-run: suppressed
        sink.commit_epoch(2, &out).unwrap();
        assert_eq!(seen.lock().as_slice(), &[(1, 1), (2, 1)]);
        assert_eq!(sink.rows_written(), 2);
        // Rollback re-opens later epochs for delivery.
        sink.truncate_after(1).unwrap();
        sink.commit_epoch(2, &out).unwrap();
        assert_eq!(seen.lock().len(), 3);
        // Callback errors propagate (the engine will not commit), and
        // the failed epoch stays deliverable for the recovery re-run.
        let attempts = Arc::new(AtomicU64::new(0));
        let a2 = attempts.clone();
        let flaky = CallbackSink::new("flaky", move |_, _| {
            if a2.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(ss_common::SsError::Execution("downstream down".into()))
            } else {
                Ok(())
            }
        });
        assert!(flaky.commit_epoch(1, &out).is_err());
        flaky.commit_epoch(1, &out).unwrap(); // recovery re-run delivers
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        assert_eq!(flaky.rows_written(), 1);
    }

    #[test]
    fn bus_sink_skips_duplicate_epochs() {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("out", 2).unwrap();
        let sink = BusSink::new(bus.clone(), "out").unwrap();
        let out = EpochOutput::Append(batch(&[row!["a", 1i64], row!["b", 2i64]]));
        sink.commit_epoch(1, &out).unwrap();
        sink.commit_epoch(1, &out).unwrap();
        assert_eq!(bus.retained_records("out").unwrap(), 2);
        assert_eq!(sink.rows_written(), 2);
        assert!(BusSink::new(bus, "missing").is_err());
    }

    #[test]
    fn fenced_sink_blocks_mutations_once_the_guard_trips() {
        let inner = MemorySink::new("out");
        let fenced_flag = Arc::new(AtomicU64::new(0));
        let flag = fenced_flag.clone();
        let guard: FenceGuard = Arc::new(move |ctx: &str| {
            if flag.load(Ordering::SeqCst) == 0 {
                Ok(7)
            } else {
                Err(ss_common::SsError::Fenced(format!(
                    "durable write `{ctx}` rejected"
                )))
            }
        });
        let sink = FencedSink::new(inner.clone(), guard);
        let out = EpochOutput::Append(batch(&[row!["a", 1i64]]));
        sink.commit_epoch(1, &out).unwrap();
        assert_eq!(sink.rows_written(), 1);
        // Leadership lost: every mutation bounces, the sink is frozen.
        fenced_flag.store(1, Ordering::SeqCst);
        let err = sink.commit_epoch(2, &out).unwrap_err();
        assert_eq!(err.category(), "fenced");
        assert!(err.to_string().contains("sink-commit"), "{err}");
        assert!(sink.truncate_after(0).is_err());
        assert_eq!(inner.snapshot().len(), 1);
        assert_eq!(sink.name(), "out");
    }
}
