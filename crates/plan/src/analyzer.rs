//! Analysis (§5.1): attribute/type resolution and query validation.
//!
//! `analyze` walks the plan bottom-up, type-checking every expression
//! against its child's schema and enforcing structural rules (window
//! placement, watermark columns, join key compatibility, stateful-op
//! key types). A plan that passes analysis evaluates without type
//! errors; output-mode compatibility is checked separately by
//! [`crate::streaming::validate_streaming`] because it depends on the
//! sink configuration, not just the query.

use std::sync::Arc;

use ss_common::{DataType, Result, SsError};
use ss_expr::Expr;

use crate::plan::{strip_alias, LogicalPlan};

/// Validate and resolve a logical plan. Returns the plan unchanged on
/// success (resolution is by name; this pass is a checker).
pub fn analyze(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    check(plan)?;
    Ok(plan.clone())
}

fn check(plan: &LogicalPlan) -> Result<()> {
    for child in plan.children() {
        check(child)?;
    }
    match plan {
        LogicalPlan::Scan { schema, projection, .. } => {
            if let Some(idx) = projection {
                schema.project(idx)?;
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let s = input.schema()?;
            no_window(predicate, "a WHERE predicate")?;
            let t = predicate.data_type(&s)?;
            if t != DataType::Boolean {
                return Err(SsError::Plan(format!(
                    "filter predicate `{predicate}` must be BOOLEAN, got {t}"
                )));
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let s = input.schema()?;
            if exprs.is_empty() {
                return Err(SsError::Plan("projection with no expressions".into()));
            }
            for e in exprs {
                e.data_type(&s)?;
                // Tumbling windows are fine in projections (they're just
                // bucketing); sliding windows multiply rows and are only
                // meaningful as grouping keys.
                if let Some(w) = find_window(e) {
                    if let Expr::Window {
                        size_us, slide_us, ..
                    } = w
                    {
                        if slide_us != size_us {
                            return Err(SsError::Plan(format!(
                                "sliding window `{w}` is only valid as a grouping key"
                            )));
                        }
                    }
                }
            }
            // Surfaces duplicate output names.
            plan.schema()?;
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            let s = input.schema()?;
            if aggregates.is_empty() {
                return Err(SsError::Plan(
                    "aggregation requires at least one aggregate expression".into(),
                ));
            }
            let mut window_keys = 0;
            for g in group_exprs {
                g.data_type(&s)?;
                if let Expr::Window { .. } = strip_alias(g) {
                    window_keys += 1;
                } else if g.contains_window() {
                    return Err(SsError::Plan(format!(
                        "window() must be a top-level grouping key, not nested in `{g}`"
                    )));
                }
            }
            if window_keys > 1 {
                return Err(SsError::Plan(
                    "at most one window() grouping key is supported".into(),
                ));
            }
            for a in aggregates {
                if let Some(arg) = &a.arg {
                    no_window(arg, "an aggregate argument")?;
                }
                a.result_type(&s)?;
            }
            plan.schema()?;
        }
        LogicalPlan::Join {
            left, right, on, ..
        } => {
            if on.is_empty() {
                return Err(SsError::Plan(
                    "joins require at least one equality condition".into(),
                ));
            }
            let ls = left.schema()?;
            let rs = right.schema()?;
            for (le, re) in on {
                no_window(le, "a join key")?;
                no_window(re, "a join key")?;
                let lt = le.data_type(&ls).map_err(|e| {
                    SsError::Plan(format!("left join key `{le}`: {e}"))
                })?;
                let rt = re.data_type(&rs).map_err(|e| {
                    SsError::Plan(format!("right join key `{re}`: {e}"))
                })?;
                lt.common_type(rt).map_err(|_| {
                    SsError::Plan(format!(
                        "join keys `{le}` ({lt}) and `{re}` ({rt}) are not comparable"
                    ))
                })?;
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let s = input.schema()?;
            if keys.is_empty() {
                return Err(SsError::Plan("ORDER BY requires at least one key".into()));
            }
            for k in keys {
                no_window(&k.expr, "a sort key")?;
                k.expr.data_type(&s)?;
            }
        }
        LogicalPlan::Limit { .. } | LogicalPlan::Distinct { .. } => {}
        LogicalPlan::Watermark {
            input,
            column,
            delay_us,
        } => {
            let s = input.schema()?;
            let f = s.field_by_name(column)?;
            if f.data_type != DataType::Timestamp {
                return Err(SsError::Plan(format!(
                    "withWatermark column `{column}` must be TIMESTAMP, got {}",
                    f.data_type
                )));
            }
            if *delay_us < 0 {
                return Err(SsError::Plan("watermark delay must be non-negative".into()));
            }
        }
        LogicalPlan::MapGroupsWithState { input, op } => {
            let s = input.schema()?;
            if op.key_exprs.is_empty() {
                return Err(SsError::Plan(format!(
                    "stateful operator `{}` requires at least one grouping key",
                    op.name
                )));
            }
            for k in &op.key_exprs {
                no_window(k, "a groupByKey expression")?;
                k.data_type(&s)?;
            }
        }
    }
    Ok(())
}

fn find_window(e: &Expr) -> Option<&Expr> {
    if let Expr::Window { .. } = e {
        return Some(e);
    }
    e.children().iter().find_map(|c| find_window(c))
}

fn no_window(e: &Expr, place: &str) -> Result<()> {
    if e.contains_window() {
        return Err(SsError::Plan(format!(
            "window() is not allowed in {place}: `{e}`"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LogicalPlanBuilder;
    use crate::plan::{JoinType, SortKey};

    use ss_common::{Field, Schema};
    use ss_expr::{avg, col, count_star, lit, sum, window, window_sliding};

    fn events() -> LogicalPlanBuilder {
        LogicalPlanBuilder::scan(
            "events",
            Schema::of(vec![
                Field::new("country", DataType::Utf8),
                Field::new("time", DataType::Timestamp),
                Field::new("latency", DataType::Float64),
            ]),
            true,
        )
    }

    #[test]
    fn valid_plan_passes() {
        let plan = events()
            .filter(col("country").eq(lit("CA")))
            .aggregate(
                vec![window(col("time"), "30s").unwrap()],
                vec![avg(col("latency"))],
            )
            .build();
        analyze(&plan).unwrap();
    }

    #[test]
    fn unknown_column_rejected() {
        let plan = events().filter(col("nope").eq(lit(1i64))).build();
        let err = analyze(&plan).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn non_boolean_filter_rejected() {
        let plan = events().filter(col("latency").add(lit(1.0f64))).build();
        assert!(analyze(&plan).is_err());
    }

    #[test]
    fn sum_of_string_rejected() {
        let plan = events()
            .aggregate(vec![col("country")], vec![sum(col("country"))])
            .build();
        assert!(analyze(&plan).is_err());
    }

    #[test]
    fn sliding_window_in_projection_rejected_but_group_key_ok() {
        let sliding = window_sliding(col("time"), "1 hour", "5 minutes").unwrap();
        let proj = events().project(vec![sliding.clone()]).build();
        assert!(analyze(&proj).is_err());
        let agg = events()
            .aggregate(vec![sliding], vec![count_star()])
            .build();
        analyze(&agg).unwrap();
    }

    #[test]
    fn window_in_filter_and_join_keys_rejected() {
        let w = window(col("time"), "10s").unwrap();
        let plan = events().filter(w.clone().eq(lit(0i64))).build();
        assert!(analyze(&plan).is_err());
        let join = events()
            .join(events(), JoinType::Inner, vec![(w, col("time"))])
            .build();
        assert!(analyze(&join).is_err());
    }

    #[test]
    fn two_window_keys_rejected() {
        let plan = events()
            .aggregate(
                vec![
                    window(col("time"), "10s").unwrap(),
                    window(col("time"), "20s").unwrap(),
                ],
                vec![count_star()],
            )
            .build();
        assert!(analyze(&plan).is_err());
    }

    #[test]
    fn join_key_type_mismatch_rejected() {
        let other = LogicalPlanBuilder::scan(
            "ads",
            Schema::of(vec![Field::new("ad_id", DataType::Int64)]),
            false,
        );
        let plan = events()
            .join(other, JoinType::Inner, vec![(col("country"), col("ad_id"))])
            .build();
        let err = analyze(&plan).unwrap_err();
        assert!(err.to_string().contains("not comparable"));
    }

    #[test]
    fn join_without_condition_rejected() {
        let plan = events().join(events(), JoinType::Inner, vec![]).build();
        assert!(analyze(&plan).is_err());
    }

    #[test]
    fn watermark_on_non_timestamp_rejected() {
        let plan = events()
            .with_watermark("country", "10 minutes")
            .unwrap()
            .build();
        assert!(analyze(&plan).is_err());
        let ok = events().with_watermark("time", "10 minutes").unwrap().build();
        analyze(&ok).unwrap();
    }

    #[test]
    fn empty_projection_and_empty_aggregation_rejected() {
        let plan = events().project(vec![]).build();
        assert!(analyze(&plan).is_err());
        let plan = events().aggregate(vec![col("country")], vec![]).build();
        assert!(analyze(&plan).is_err());
    }

    #[test]
    fn duplicate_projection_names_rejected() {
        let plan = events().project(vec![col("country"), col("country")]).build();
        assert!(analyze(&plan).is_err());
        let ok = events()
            .project(vec![col("country"), col("country").alias("c2")])
            .build();
        analyze(&ok).unwrap();
    }

    #[test]
    fn sort_keys_typecheck() {
        let plan = events().sort(vec![SortKey::asc(col("zzz"))]).build();
        assert!(analyze(&plan).is_err());
        let ok = events().sort(vec![SortKey::desc(col("latency"))]).build();
        analyze(&ok).unwrap();
    }
}
