//! # ss-plan — logical plans, analysis and optimization
//!
//! The Catalyst stand-in (§5 of the paper). Query planning proceeds in
//! the paper's three stages:
//!
//! 1. **Analysis** ([`analyzer`]): resolve attributes and types, check
//!    the query is valid, and — for streaming plans — check the chosen
//!    output mode is compatible with the query shape (§5.1).
//! 2. **Incrementalization** happens in `ss-core`, which maps analyzed
//!    logical plans onto stateful physical operators.
//! 3. **Optimization** ([`optimizer`]): rule-based rewrites (predicate
//!    pushdown, projection pruning, constant folding, filter merging),
//!    applied to fixpoint.
//!
//! [`LogicalPlan`] is the tree both the DataFrame builder
//! ([`builder::LogicalPlanBuilder`]) and the SQL front end produce.

pub mod analyzer;
pub mod builder;
pub mod fingerprint;
pub mod optimizer;
pub mod plan;
pub mod sharing;
pub mod stateful;
pub mod streaming;

pub use analyzer::analyze;
pub use fingerprint::{
    canonical_expr, operator_signatures, plan_fingerprint, AggregateSig, KeySig,
    OperatorSignature, WindowSig,
};
pub use builder::LogicalPlanBuilder;
pub use optimizer::{optimize, Optimizer};
pub use plan::{JoinType, LogicalPlan, SortKey};
pub use sharing::{contains_stateful, sharing_split, SharingSplit, SuffixOp};
pub use stateful::{GroupState, StateTimeout, StatefulOpDef, StatefulOutputMode};
pub use streaming::{validate_streaming, OutputMode};
