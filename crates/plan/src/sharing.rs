//! Sharing-key extraction for multi-query execution.
//!
//! Two queries can share one incremental execution when their
//! *stateful* work is structurally equal. The canonical fingerprints
//! of [`crate::fingerprint`] already normalize representational noise
//! (aliases, commutative order, mirrored comparisons), so the sharing
//! key falls out of the same machinery: split a plan into a **stateful
//! prefix** — everything up to and including the topmost stateful
//! operator — and a **stateless suffix** of `Project`/`Filter` nodes
//! above it, then key the prefix by its canonical plan fingerprint.
//!
//! Queries with equal prefix keys attach to one shared execution; each
//! query's suffix is applied per-epoch to the shared output at
//! fan-out. Only `Project` and `Filter` qualify as suffix operators:
//! they are row-local, so applying them to each epoch's output batch
//! commutes with epoch boundaries. `Sort`/`Limit` above the stateful
//! prefix do **not** commute (a per-epoch top-k is not a global
//! top-k), so a plan carrying them shares only on whole-plan equality.

use std::sync::Arc;

use ss_expr::Expr;

use crate::fingerprint::plan_fingerprint;
use crate::plan::LogicalPlan;

/// One stateless post-processing step a query applies to the shared
/// prefix's output, in application order (outermost last).
#[derive(Debug, Clone)]
pub enum SuffixOp {
    Project(Vec<Expr>),
    Filter(Expr),
}

/// A plan split at the sharing boundary.
#[derive(Debug, Clone)]
pub struct SharingSplit {
    /// The shared part: everything up to and including the topmost
    /// stateful operator (or the whole plan when nothing qualifies for
    /// the suffix).
    pub prefix: Arc<LogicalPlan>,
    /// Stateless steps the owning query applies to the prefix output,
    /// in application order (innermost first).
    pub suffix: Vec<SuffixOp>,
    /// Canonical fingerprint of the prefix — the sharing key.
    pub key: String,
}

/// True if the subtree contains a stateful operator (aggregate,
/// stream–stream join, distinct, mapGroupsWithState).
pub fn contains_stateful(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Aggregate { .. }
        | LogicalPlan::Distinct { .. }
        | LogicalPlan::MapGroupsWithState { .. } => true,
        LogicalPlan::Join { left, right, .. } => {
            if left.is_streaming() && right.is_streaming() {
                true
            } else {
                contains_stateful(left) || contains_stateful(right)
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Watermark { input, .. } => contains_stateful(input),
    }
}

/// Split `plan` (ideally already analyzed + optimized, so fingerprints
/// match what the engine records) at the sharing boundary.
///
/// `allow_suffix = false` forces whole-plan sharing — used for output
/// modes where post-processing the shared output is not sound (update
/// mode's upsert keys are positional in the *full* plan's output).
pub fn sharing_split(plan: &Arc<LogicalPlan>, allow_suffix: bool) -> SharingSplit {
    let mut suffix_rev: Vec<SuffixOp> = Vec::new();
    let mut current = plan.clone();
    if allow_suffix {
        loop {
            let next = match current.as_ref() {
                LogicalPlan::Project { input, exprs } if contains_stateful(input) => {
                    suffix_rev.push(SuffixOp::Project(exprs.clone()));
                    input.clone()
                }
                LogicalPlan::Filter { input, predicate } if contains_stateful(input) => {
                    suffix_rev.push(SuffixOp::Filter(predicate.clone()));
                    input.clone()
                }
                _ => break,
            };
            current = next;
        }
    }
    suffix_rev.reverse();
    let key = plan_fingerprint(&current);
    SharingSplit {
        prefix: current,
        suffix: suffix_rev,
        key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::{DataType, Field, Schema};
    use ss_expr::{col, count_star, lit};

    fn scan() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            name: "events".into(),
            schema: Schema::of(vec![
                Field::new("country", DataType::Utf8),
                Field::new("latency", DataType::Int64),
            ]),
            streaming: true,
            projection: None,
        })
    }

    fn agg() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Aggregate {
            input: scan(),
            group_exprs: vec![col("country")],
            aggregates: vec![count_star()],
        })
    }

    #[test]
    fn stateless_suffix_peels_to_the_stateful_prefix() {
        let plan = Arc::new(LogicalPlan::Filter {
            input: Arc::new(LogicalPlan::Project {
                input: agg(),
                exprs: vec![col("country")],
            }),
            predicate: col("country").eq(lit("CA")),
        });
        let split = sharing_split(&plan, true);
        assert_eq!(split.suffix.len(), 2);
        assert!(matches!(split.suffix[0], SuffixOp::Project(_)));
        assert!(matches!(split.suffix[1], SuffixOp::Filter(_)));
        assert_eq!(split.key, plan_fingerprint(&agg()));
    }

    #[test]
    fn equal_prefixes_key_equal_despite_different_suffixes() {
        let a = Arc::new(LogicalPlan::Filter {
            input: agg(),
            predicate: col("country").eq(lit("CA")),
        });
        let b = Arc::new(LogicalPlan::Filter {
            input: agg(),
            predicate: col("country").eq(lit("US")),
        });
        let sa = sharing_split(&a, true);
        let sb = sharing_split(&b, true);
        assert_eq!(sa.key, sb.key);
        // Whole-plan fingerprints differ; only the prefix keys match.
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&b));
    }

    #[test]
    fn suffix_disabled_keys_the_whole_plan() {
        let a = Arc::new(LogicalPlan::Filter {
            input: agg(),
            predicate: col("country").eq(lit("CA")),
        });
        let split = sharing_split(&a, false);
        assert!(split.suffix.is_empty());
        assert_eq!(split.key, plan_fingerprint(&a));
    }

    #[test]
    fn fully_stateless_plans_do_not_peel() {
        let plan = Arc::new(LogicalPlan::Filter {
            input: scan(),
            predicate: col("latency").gt(lit(5i64)),
        });
        let split = sharing_split(&plan, true);
        assert!(split.suffix.is_empty());
        assert_eq!(split.key, plan_fingerprint(&plan));
    }

    #[test]
    fn sort_above_the_prefix_blocks_suffix_peeling() {
        let plan = Arc::new(LogicalPlan::Limit {
            input: agg(),
            n: 3,
        });
        let split = sharing_split(&plan, true);
        assert!(split.suffix.is_empty());
        assert_eq!(split.key, plan_fingerprint(&plan));
    }
}
