//! Stateful processing operators (§4.3.2): "UDFs with state".
//!
//! [`StatefulOpDef`] is the plan-level definition of a
//! `mapGroupsWithState` / `flatMapGroupsWithState` call: a grouping key,
//! a user function, an output schema, and a timeout configuration.
//! [`GroupState`] is the handle the user function receives — it mirrors
//! Spark's `GroupState[S]`: get/update/remove the per-key state and
//! arrange timeouts in processing or event time.
//!
//! The state type `S` is a [`Row`]; the engine checkpoints it to the
//! state store without user code (§6.1: "all of the state management in
//! this design is transparent to user code").

use std::fmt;
use std::sync::Arc;

use ss_common::{Result, Row, SchemaRef, SsError};
use ss_expr::Expr;

/// Which clock, if any, can fire timeouts for a stateful operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StateTimeout {
    /// No timeouts; the function is only called when new data arrives
    /// for the key.
    #[default]
    None,
    /// Timeouts fire when processing time passes the deadline set with
    /// [`GroupState::set_timeout_duration`].
    ProcessingTime,
    /// Timeouts fire when the event-time watermark passes the timestamp
    /// set with [`GroupState::set_timeout_timestamp`].
    EventTime,
}

/// Per-operator internal output mode, inferred during incrementalization
/// (§5.2: "users do not have to specify these intra-DAG modes
/// manually").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatefulOutputMode {
    /// The operator only ever emits new rows.
    Append,
    /// The operator may re-emit rows for a key, replacing earlier ones.
    Update,
}

/// The per-key state handle passed to the user's update function.
#[derive(Debug, Clone)]
pub struct GroupState {
    state: Option<Row>,
    removed: bool,
    updated: bool,
    timeout_conf: StateTimeout,
    timeout_at: Option<i64>,
    timed_out: bool,
    /// Current event-time watermark (µs); -inf before any data.
    watermark_us: i64,
    /// Current processing time (µs).
    processing_time_us: i64,
}

impl GroupState {
    /// Build the handle the engine passes into the user function.
    pub fn for_invocation(
        state: Option<Row>,
        timeout_conf: StateTimeout,
        existing_timeout_at: Option<i64>,
        timed_out: bool,
        watermark_us: i64,
        processing_time_us: i64,
    ) -> GroupState {
        GroupState {
            state,
            removed: false,
            updated: false,
            timeout_conf,
            timeout_at: existing_timeout_at,
            timed_out,
            watermark_us,
            processing_time_us,
        }
    }

    /// Does state exist for this key?
    pub fn exists(&self) -> bool {
        self.state.is_some() && !self.removed
    }

    /// The current state, if any.
    pub fn get(&self) -> Option<&Row> {
        if self.removed {
            None
        } else {
            self.state.as_ref()
        }
    }

    /// Replace the state for this key.
    pub fn update(&mut self, state: Row) {
        self.state = Some(state);
        self.removed = false;
        self.updated = true;
    }

    /// Drop this key from state tracking.
    pub fn remove(&mut self) {
        self.state = None;
        self.removed = true;
        self.updated = true;
        self.timeout_at = None;
    }

    /// Was this invocation triggered by a timeout rather than new data?
    pub fn has_timed_out(&self) -> bool {
        self.timed_out
    }

    /// Set a processing-time timeout `duration_us` from now. Requires
    /// the operator to be configured with
    /// [`StateTimeout::ProcessingTime`].
    pub fn set_timeout_duration(&mut self, duration_us: i64) -> Result<()> {
        if self.timeout_conf != StateTimeout::ProcessingTime {
            return Err(SsError::Plan(
                "set_timeout_duration requires StateTimeout::ProcessingTime".into(),
            ));
        }
        if duration_us <= 0 {
            return Err(SsError::Plan("timeout duration must be positive".into()));
        }
        self.timeout_at = Some(self.processing_time_us + duration_us);
        Ok(())
    }

    /// Set an event-time timeout at `timestamp_us`. Requires
    /// [`StateTimeout::EventTime`] and a timestamp not yet past the
    /// watermark.
    pub fn set_timeout_timestamp(&mut self, timestamp_us: i64) -> Result<()> {
        if self.timeout_conf != StateTimeout::EventTime {
            return Err(SsError::Plan(
                "set_timeout_timestamp requires StateTimeout::EventTime".into(),
            ));
        }
        if timestamp_us <= self.watermark_us {
            return Err(SsError::Plan(format!(
                "event-time timeout {timestamp_us} is not after the current watermark {}",
                self.watermark_us
            )));
        }
        self.timeout_at = Some(timestamp_us);
        Ok(())
    }

    /// The current event-time watermark (µs since epoch; `i64::MIN`
    /// before any data has been seen).
    pub fn current_watermark(&self) -> i64 {
        self.watermark_us
    }

    /// The current processing time (µs since epoch).
    pub fn current_processing_time(&self) -> i64 {
        self.processing_time_us
    }

    // -- engine-side accessors (not part of the user API) --

    /// (engine) The state to persist after the invocation, or `None` if
    /// the key was removed / never set.
    pub fn final_state(&self) -> Option<&Row> {
        self.get()
    }

    /// (engine) Did the function change the state?
    pub fn was_updated(&self) -> bool {
        self.updated
    }

    /// (engine) Was the key explicitly removed?
    pub fn was_removed(&self) -> bool {
        self.removed
    }

    /// (engine) The timeout deadline after the invocation, if any.
    pub fn timeout_at(&self) -> Option<i64> {
        if self.removed {
            None
        } else {
            self.timeout_at
        }
    }
}

/// The user update function: `(key, new_values, state) -> output rows`.
///
/// For `mapGroupsWithState` the engine expects exactly one output row
/// per invocation; `flatMapGroupsWithState` may return zero or more.
pub type StatefulFn = Arc<dyn Fn(&Row, &[Row], &mut GroupState) -> Result<Vec<Row>> + Send + Sync>;

/// Plan-level definition of a stateful operator.
#[derive(Clone)]
pub struct StatefulOpDef {
    /// Name used in plan display and error messages.
    pub name: String,
    /// Grouping key expressions (the `groupByKey` argument).
    pub key_exprs: Vec<Expr>,
    /// Schema of the rows the update function returns.
    pub output_schema: SchemaRef,
    /// Timeout configuration.
    pub timeout: StateTimeout,
    /// `true` for `flatMapGroupsWithState` (0..n outputs per call);
    /// `false` for `mapGroupsWithState` (exactly 1).
    pub flat: bool,
    /// The user function.
    pub func: StatefulFn,
}

impl fmt::Debug for StatefulOpDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StatefulOpDef")
            .field("name", &self.name)
            .field("key_exprs", &self.key_exprs)
            .field("output_schema", &self.output_schema)
            .field("timeout", &self.timeout)
            .field("flat", &self.flat)
            .finish()
    }
}

impl PartialEq for StatefulOpDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.key_exprs == other.key_exprs
            && self.output_schema == other.output_schema
            && self.timeout == other.timeout
            && self.flat == other.flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::row;

    fn fresh(conf: StateTimeout) -> GroupState {
        GroupState::for_invocation(None, conf, None, false, 0, 1_000_000)
    }

    #[test]
    fn state_lifecycle() {
        let mut gs = fresh(StateTimeout::None);
        assert!(!gs.exists());
        assert_eq!(gs.get(), None);
        gs.update(row![3i64]);
        assert!(gs.exists());
        assert_eq!(gs.get(), Some(&row![3i64]));
        assert!(gs.was_updated());
        gs.remove();
        assert!(!gs.exists());
        assert!(gs.was_removed());
        assert_eq!(gs.final_state(), None);
    }

    #[test]
    fn processing_time_timeout() {
        let mut gs = fresh(StateTimeout::ProcessingTime);
        gs.set_timeout_duration(30 * 60 * 1_000_000).unwrap();
        assert_eq!(gs.timeout_at(), Some(1_000_000 + 30 * 60 * 1_000_000));
        assert!(gs.set_timeout_duration(0).is_err());
        // Wrong clock.
        assert!(gs.set_timeout_timestamp(99).is_err());
    }

    #[test]
    fn event_time_timeout_must_beat_watermark() {
        let mut gs = GroupState::for_invocation(
            Some(row![1i64]),
            StateTimeout::EventTime,
            None,
            false,
            5_000_000,
            0,
        );
        assert!(gs.set_timeout_timestamp(4_000_000).is_err());
        gs.set_timeout_timestamp(6_000_000).unwrap();
        assert_eq!(gs.timeout_at(), Some(6_000_000));
        // Wrong clock.
        assert!(gs.set_timeout_duration(10).is_err());
    }

    #[test]
    fn remove_clears_timeout() {
        let mut gs = fresh(StateTimeout::ProcessingTime);
        gs.update(row![1i64]);
        gs.set_timeout_duration(1_000).unwrap();
        gs.remove();
        assert_eq!(gs.timeout_at(), None);
    }

    #[test]
    fn timed_out_invocation_flag() {
        let gs = GroupState::for_invocation(
            Some(row![9i64]),
            StateTimeout::ProcessingTime,
            Some(500),
            true,
            i64::MIN,
            1_000,
        );
        assert!(gs.has_timed_out());
        assert!(gs.exists());
        assert_eq!(gs.current_processing_time(), 1_000);
        assert_eq!(gs.current_watermark(), i64::MIN);
    }
}
