//! Output modes and the §5.1 streaming-validity rules.
//!
//! "The first stage of query planning is analysis, where the engine
//! validates the user's query [...] It also checks that the user's
//! chosen output mode is valid for this specific query." This module is
//! that check. The rules implemented here follow §5.1 and the Spark
//! 2.3 documentation the paper cites:
//!
//! * at most **one aggregation** per streaming query;
//! * **Complete** mode only for aggregation queries (state bounded by
//!   the number of result keys), sorting allowed only here;
//! * **Append** mode only for monotone output: no aggregation unless
//!   grouped (at least in part) by a watermarked event-time key, since
//!   only then can a group ever be finalized;
//! * **Update** mode for aggregations and most other queries;
//! * `mapGroupsWithState` only in Update mode,
//!   `flatMapGroupsWithState` in Append or Update;
//! * stream–stream **outer** joins require a watermark so buffered
//!   join state can be evicted and NULL-extended rows emitted;
//! * `LIMIT`/`ORDER BY` rejected outside Complete mode.

use std::fmt;

use ss_common::{Result, SsError};

use crate::plan::{strip_alias, JoinType, LogicalPlan};
use ss_expr::Expr;

/// How the result table is written to the sink (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputMode {
    /// Only newly-finalized rows are written; rows are never retracted.
    Append,
    /// Changed keys are rewritten in place.
    Update,
    /// The entire result table is rewritten on every trigger.
    Complete,
}

impl fmt::Display for OutputMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OutputMode::Append => "append",
            OutputMode::Update => "update",
            OutputMode::Complete => "complete",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for OutputMode {
    type Err = SsError;
    fn from_str(s: &str) -> Result<OutputMode> {
        match s.to_ascii_lowercase().as_str() {
            "append" => Ok(OutputMode::Append),
            "update" => Ok(OutputMode::Update),
            "complete" => Ok(OutputMode::Complete),
            other => Err(SsError::Plan(format!(
                "unknown output mode `{other}` (expected append/update/complete)"
            ))),
        }
    }
}

/// Validate that `mode` is a legal output mode for the streaming query
/// `plan` (§5.1). Assumes `plan.is_streaming()`.
pub fn validate_streaming(plan: &LogicalPlan, mode: OutputMode) -> Result<()> {
    let n_aggs = plan.count_aggregates();
    if n_aggs > 1 {
        return Err(SsError::Plan(format!(
            "streaming queries support at most one aggregation, found {n_aggs}"
        )));
    }
    let watermarks = plan.watermarks();

    let mut err: Option<SsError> = None;
    plan.visit(&mut |node| {
        if err.is_some() {
            return;
        }
        match node {
            LogicalPlan::Sort { .. } => {
                if mode != OutputMode::Complete {
                    err = Some(SsError::Plan(
                        "sorting a streaming query is only allowed in complete output mode \
                         after an aggregation (§5.1)"
                            .into(),
                    ));
                } else if n_aggs == 0 {
                    err = Some(SsError::Plan(
                        "sorting a streaming query requires an aggregation (§5.1)".into(),
                    ));
                }
            }
            LogicalPlan::Limit { .. }
                if mode != OutputMode::Complete => {
                    err = Some(SsError::Plan(
                        "LIMIT on a streaming query is only allowed in complete output mode"
                            .into(),
                    ));
                }
            LogicalPlan::Aggregate { group_exprs, .. }
                if mode == OutputMode::Append => {
                    // Append requires monotone output: a group's row may
                    // only be written once it can never change, which
                    // requires an event-time key bounded by a watermark.
                    let keyed_by_event_time = group_exprs.iter().any(|g| {
                        match strip_alias(g) {
                            Expr::Window { time, .. } => {
                                time.referenced_columns()
                                    .iter()
                                    .any(|c| watermarks.iter().any(|(wc, _)| wc == c))
                            }
                            Expr::Column(c) => watermarks.iter().any(|(wc, _)| wc == c),
                            _ => false,
                        }
                    });
                    if !keyed_by_event_time {
                        err = Some(SsError::Plan(
                            "append output mode requires the aggregation to be keyed by a \
                             watermarked event-time column (e.g. groupBy(window(...)) after \
                             withWatermark), because other groups can never be finalized (§5.1)"
                                .into(),
                        ));
                    }
                }
            LogicalPlan::MapGroupsWithState { op, .. } => {
                if mode == OutputMode::Complete {
                    err = Some(SsError::Plan(format!(
                        "stateful operator `{}` is not allowed in complete output mode",
                        op.name
                    )));
                } else if !op.flat && mode != OutputMode::Update {
                    err = Some(SsError::Plan(format!(
                        "mapGroupsWithState `{}` requires update output mode \
                         (use flatMapGroupsWithState for append)",
                        op.name
                    )));
                }
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                let both_streaming = left.is_streaming() && right.is_streaming();
                if both_streaming && *join_type != JoinType::Inner && watermarks.is_empty() {
                    err = Some(SsError::Plan(format!(
                        "{join_type} join between two streams requires a watermark so \
                         buffered rows can be finalized (§5.2)"
                    )));
                }
                if both_streaming && mode == OutputMode::Complete {
                    err = Some(SsError::Plan(
                        "stream-stream joins are not supported in complete output mode".into(),
                    ));
                }
            }
            _ => {}
        }
    });
    if let Some(e) = err {
        return Err(e);
    }

    if mode == OutputMode::Complete && n_aggs == 0 {
        return Err(SsError::Plan(
            "complete output mode requires an aggregation: the result table must stay \
             proportional to the number of keys (§5.1)"
                .into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LogicalPlanBuilder;
    use crate::plan::SortKey;
    use crate::stateful::{StateTimeout, StatefulOpDef};
    use std::sync::Arc;

    use ss_common::{DataType, Field, Schema};
    use ss_expr::{col, count_star, lit, window};

    fn events() -> LogicalPlanBuilder {
        LogicalPlanBuilder::scan(
            "events",
            Schema::of(vec![
                Field::new("country", DataType::Utf8),
                Field::new("time", DataType::Timestamp),
            ]),
            true,
        )
    }

    fn stateful(flat: bool) -> StatefulOpDef {
        StatefulOpDef {
            name: "sess".into(),
            key_exprs: vec![col("country")],
            output_schema: Schema::of(vec![Field::new("n", DataType::Int64)]),
            timeout: StateTimeout::None,
            flat,
            func: Arc::new(|_, _, _| Ok(vec![])),
        }
    }

    #[test]
    fn paper_example_complete_count_by_country_ok() {
        // §4.1: groupBy(country).count() with complete mode.
        let plan = events()
            .aggregate(vec![col("country")], vec![count_star()])
            .build();
        validate_streaming(&plan, OutputMode::Complete).unwrap();
        validate_streaming(&plan, OutputMode::Update).unwrap();
    }

    #[test]
    fn paper_example_append_count_by_country_rejected() {
        // §4.2: "suppose we are aggregating counts by country [...] and
        // we want to use the append output mode [...] this combination
        // will not be allowed".
        let plan = events()
            .aggregate(vec![col("country")], vec![count_star()])
            .build();
        let err = validate_streaming(&plan, OutputMode::Append).unwrap_err();
        assert!(err.to_string().contains("append"));
    }

    #[test]
    fn append_windowed_watermarked_aggregation_ok() {
        let plan = events()
            .with_watermark("time", "10 minutes")
            .unwrap()
            .aggregate(
                vec![window(col("time"), "10 seconds").unwrap(), col("country")],
                vec![count_star()],
            )
            .build();
        validate_streaming(&plan, OutputMode::Append).unwrap();
    }

    #[test]
    fn append_windowed_without_watermark_rejected() {
        let plan = events()
            .aggregate(
                vec![window(col("time"), "10 seconds").unwrap()],
                vec![count_star()],
            )
            .build();
        assert!(validate_streaming(&plan, OutputMode::Append).is_err());
    }

    #[test]
    fn complete_without_aggregation_rejected() {
        let plan = events().filter(col("country").eq(lit("CA"))).build();
        assert!(validate_streaming(&plan, OutputMode::Complete).is_err());
        // But append of a map-only query is fine (monotone output).
        validate_streaming(&plan, OutputMode::Append).unwrap();
    }

    #[test]
    fn sort_only_in_complete_after_aggregation() {
        let sorted_agg = events()
            .aggregate(vec![col("country")], vec![count_star()])
            .sort(vec![SortKey::desc(col("count(*)"))])
            .build();
        validate_streaming(&sorted_agg, OutputMode::Complete).unwrap();
        assert!(validate_streaming(&sorted_agg, OutputMode::Update).is_err());
        let sorted_plain = events().sort(vec![SortKey::asc(col("time"))]).build();
        assert!(validate_streaming(&sorted_plain, OutputMode::Complete).is_err());
    }

    #[test]
    fn at_most_one_aggregation() {
        let plan = events()
            .aggregate(vec![col("country")], vec![count_star()])
            .aggregate(vec![], vec![count_star()])
            .build();
        let err = validate_streaming(&plan, OutputMode::Complete).unwrap_err();
        assert!(err.to_string().contains("at most one aggregation"));
    }

    #[test]
    fn map_groups_with_state_update_only() {
        let plan = events().map_groups_with_state(stateful(false)).build();
        validate_streaming(&plan, OutputMode::Update).unwrap();
        assert!(validate_streaming(&plan, OutputMode::Append).is_err());
        assert!(validate_streaming(&plan, OutputMode::Complete).is_err());
        let flat = events().map_groups_with_state(stateful(true)).build();
        validate_streaming(&flat, OutputMode::Append).unwrap();
        validate_streaming(&flat, OutputMode::Update).unwrap();
    }

    #[test]
    fn stream_stream_outer_join_needs_watermark() {
        let left = events();
        let right = events();
        let no_wm = left
            .clone()
            .join(
                right.clone(),
                crate::plan::JoinType::LeftOuter,
                vec![(col("country"), col("country"))],
            )
            .build();
        assert!(validate_streaming(&no_wm, OutputMode::Append).is_err());
        let with_wm = events()
            .with_watermark("time", "1 min")
            .unwrap()
            .join(
                right,
                crate::plan::JoinType::LeftOuter,
                vec![(col("country"), col("country"))],
            )
            .build();
        validate_streaming(&with_wm, OutputMode::Append).unwrap();
    }

    #[test]
    fn limit_only_in_complete() {
        let plan = events()
            .aggregate(vec![col("country")], vec![count_star()])
            .limit(5)
            .build();
        validate_streaming(&plan, OutputMode::Complete).unwrap();
        assert!(validate_streaming(&plan, OutputMode::Update).is_err());
    }

    #[test]
    fn output_mode_parsing() {
        assert_eq!("APPEND".parse::<OutputMode>().unwrap(), OutputMode::Append);
        assert_eq!(
            "complete".parse::<OutputMode>().unwrap(),
            OutputMode::Complete
        );
        assert!("delta".parse::<OutputMode>().is_err());
        assert_eq!(OutputMode::Update.to_string(), "update");
    }
}
