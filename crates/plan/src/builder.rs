//! A fluent builder for [`LogicalPlan`]s — the plan-level backbone of
//! the DataFrame API (`ss-core` wraps it with sources and sinks).
//!
//! Construction is unchecked; [`crate::analyze`] validates the finished
//! plan, mirroring Spark where DataFrame operations build an unresolved
//! plan and analysis runs when the query executes.

use std::sync::Arc;

use ss_common::time::parse_duration;
use ss_common::{Result, SchemaRef};
use ss_expr::{AggregateExpr, Expr};

use crate::plan::{JoinType, LogicalPlan, SortKey};
use crate::stateful::StatefulOpDef;

/// Fluent [`LogicalPlan`] construction.
#[derive(Debug, Clone)]
pub struct LogicalPlanBuilder {
    plan: Arc<LogicalPlan>,
}

impl LogicalPlanBuilder {
    /// Start from an existing plan.
    pub fn from_plan(plan: Arc<LogicalPlan>) -> LogicalPlanBuilder {
        LogicalPlanBuilder { plan }
    }

    /// Start from a named table/stream scan.
    pub fn scan(name: impl Into<String>, schema: SchemaRef, streaming: bool) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Scan {
                name: name.into(),
                schema,
                streaming,
                projection: None,
            }),
        }
    }

    /// `WHERE predicate`.
    pub fn filter(self, predicate: Expr) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Filter {
                input: self.plan,
                predicate,
            }),
        }
    }

    /// `SELECT exprs`.
    pub fn project(self, exprs: Vec<Expr>) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Project {
                input: self.plan,
                exprs,
            }),
        }
    }

    /// `GROUP BY group_exprs` with aggregate expressions.
    pub fn aggregate(
        self,
        group_exprs: Vec<Expr>,
        aggregates: Vec<AggregateExpr>,
    ) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Aggregate {
                input: self.plan,
                group_exprs,
                aggregates,
            }),
        }
    }

    /// Equi-join with another plan on `left_expr = right_expr` pairs.
    pub fn join(
        self,
        right: LogicalPlanBuilder,
        join_type: JoinType,
        on: Vec<(Expr, Expr)>,
    ) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Join {
                left: self.plan,
                right: right.plan,
                join_type,
                on,
            }),
        }
    }

    /// `ORDER BY keys`.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Sort {
                input: self.plan,
                keys,
            }),
        }
    }

    /// `LIMIT n`.
    pub fn limit(self, n: usize) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Limit {
                input: self.plan,
                n,
            }),
        }
    }

    /// `SELECT DISTINCT`.
    pub fn distinct(self) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Distinct { input: self.plan }),
        }
    }

    /// `withWatermark(column, delay)` — e.g.
    /// `.with_watermark("time", "10 minutes")` (§4.3.1).
    pub fn with_watermark(
        self,
        column: impl Into<String>,
        delay: &str,
    ) -> Result<LogicalPlanBuilder> {
        let delay_us = parse_duration(delay)?;
        Ok(LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Watermark {
                input: self.plan,
                column: column.into(),
                delay_us,
            }),
        })
    }

    /// `mapGroupsWithState` / `flatMapGroupsWithState` (§4.3.2).
    pub fn map_groups_with_state(self, op: StatefulOpDef) -> LogicalPlanBuilder {
        LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::MapGroupsWithState {
                input: self.plan,
                op,
            }),
        }
    }

    /// The built plan.
    pub fn build(self) -> Arc<LogicalPlan> {
        self.plan
    }

    /// Peek at the current plan without consuming the builder.
    pub fn plan(&self) -> &Arc<LogicalPlan> {
        &self.plan
    }

    /// The current output schema.
    pub fn schema(&self) -> Result<SchemaRef> {
        self.plan.schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::{DataType, Field, Schema};
    use ss_expr::{col, count_star, lit, window};

    fn events() -> LogicalPlanBuilder {
        LogicalPlanBuilder::scan(
            "events",
            Schema::of(vec![
                Field::new("country", DataType::Utf8),
                Field::new("time", DataType::Timestamp),
                Field::new("latency", DataType::Float64),
            ]),
            true,
        )
    }

    #[test]
    fn paper_section_3_example_builds() {
        // data.where($"state" === "CA").groupBy(window($"time","30s")).avg("latency")
        let plan = events()
            .filter(col("country").eq(lit("CA")))
            .aggregate(
                vec![window(col("time"), "30s").unwrap()],
                vec![ss_expr::avg(col("latency"))],
            )
            .build();
        assert!(plan.is_streaming());
        assert_eq!(plan.count_aggregates(), 1);
        let s = plan.schema().unwrap();
        assert_eq!(
            s.field_names(),
            vec!["window_start", "window_end", "avg(latency)"]
        );
    }

    #[test]
    fn chained_operators_nest() {
        let plan = events()
            .filter(col("latency").gt(lit(0.0f64)))
            .project(vec![col("country")])
            .distinct()
            .limit(10)
            .build();
        assert!(matches!(*plan, LogicalPlan::Limit { .. }));
        assert_eq!(plan.schema().unwrap().field_names(), vec!["country"]);
    }

    #[test]
    fn watermark_parses_duration() {
        let plan = events()
            .with_watermark("time", "10 minutes")
            .unwrap()
            .aggregate(vec![col("country")], vec![count_star()])
            .build();
        assert_eq!(
            plan.watermarks(),
            vec![("time".to_string(), 600_000_000)]
        );
        assert!(events().with_watermark("time", "banana").is_err());
    }

    #[test]
    fn join_builder() {
        let static_side = LogicalPlanBuilder::scan(
            "campaigns",
            Schema::of(vec![
                Field::new("ad_id", DataType::Int64),
                Field::new("campaign_id", DataType::Int64),
            ]),
            false,
        );
        let plan = events()
            .join(
                static_side,
                JoinType::Inner,
                vec![(col("country"), col("ad_id"))],
            )
            .build();
        assert_eq!(plan.schema().unwrap().len(), 5);
        assert!(plan.is_streaming());
    }
}
