//! Canonical plan fingerprinting for upgrade safety.
//!
//! A restarted query may resume from a checkpoint written by an *older
//! build* of the same application (§3's operational requirement that
//! queries survive code updates). To decide whether the stateful
//! operators of the new plan may adopt the old plan's state, the
//! checkpoint manifest records, per operator, a **canonical semantic
//! signature** ([`OperatorSignature`]) plus a stable fingerprint hash.
//!
//! Canonicalization normalizes the representational noise that build-
//! to-build refactors introduce without changing semantics:
//!
//! * aliases are stripped (`col("v").alias("x")` ≡ `col("v")`),
//! * commutative operands are ordered (`a AND b` ≡ `b AND a`,
//!   `a = 5` ≡ `5 = a`),
//! * mirrored comparisons are flipped to one direction
//!   (`a > 5` ≡ `5 < a`),
//! * projection attribute order is normalized, and join key pairs are
//!   order-insensitive,
//! * tumbling windows are rendered as sliding windows with
//!   `slide = size`, so both constructions hash equal.
//!
//! Columns are canonicalized **by name**, not position: an upstream
//! projection that adds a column must not change a downstream
//! aggregate's signature. Order that *is* semantic — grouping-key
//! order (it defines the state-row key layout), aggregate order (it
//! defines the partial-state layout), CASE branch order — is preserved.
//!
//! Hashes are FNV-1a 64 over the canonical encoding, rendered as a
//! fixed-width hex string so they survive a JSON round trip exactly.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use ss_common::{DataType, Result, Row, Schema};
use ss_expr::{AggregateExpr, Expr};

use crate::plan::{strip_alias, LogicalPlan};

/// FNV-1a 64-bit hash; hand-rolled so fingerprints need no external
/// dependency and are identical on every platform.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Render a hash the way manifests store it: fixed-width hex.
fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// True when swapping the operands never changes the result.
fn is_commutative(op: ss_expr::BinaryOp) -> bool {
    use ss_expr::BinaryOp::*;
    matches!(op, Eq | NotEq | And | Or | Plus | Multiply)
}

/// The canonical text of an expression (see module docs for the
/// normalization rules). Two expressions with equal canonical text are
/// treated as semantically identical by the upgrade checker.
pub fn canonical_expr(e: &Expr) -> String {
    match e {
        Expr::Alias { expr, .. } => canonical_expr(expr),
        Expr::Column(name) => name.clone(),
        Expr::Literal(v) => format!("lit:{}:{v}", v.data_type().map(|t| t.to_string()).unwrap_or_else(|| "NULL".into())),
        Expr::BinaryOp { left, op, right } => {
            let mut l = canonical_expr(left);
            let mut r = canonical_expr(right);
            let mut op = *op;
            if r < l {
                // Commutative ops just reorder; mirrored comparisons
                // flip the operator along with the operands.
                if is_commutative(op) || op != op.flip() {
                    std::mem::swap(&mut l, &mut r);
                    op = op.flip();
                }
            }
            format!("({l} {} {r})", op.symbol())
        }
        Expr::Not(inner) => format!("(NOT {})", canonical_expr(inner)),
        Expr::IsNull(inner) => format!("({} IS NULL)", canonical_expr(inner)),
        Expr::IsNotNull(inner) => format!("({} IS NOT NULL)", canonical_expr(inner)),
        Expr::Cast { expr, to } => format!("CAST({} AS {to})", canonical_expr(expr)),
        // Branch order is semantic (first match wins): preserved.
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            for (c, v) in branches {
                s.push_str(&format!(
                    " WHEN {} THEN {}",
                    canonical_expr(c),
                    canonical_expr(v)
                ));
            }
            if let Some(e) = else_expr {
                s.push_str(&format!(" ELSE {}", canonical_expr(e)));
            }
            s.push_str(" END");
            s
        }
        // A tumbling window is a sliding window with slide == size;
        // both constructions canonicalize identically.
        Expr::Window {
            time,
            size_us,
            slide_us,
        } => format!(
            "window({}, {size_us}us, {slide_us}us)",
            canonical_expr(time)
        ),
        Expr::Function { name, args } => format!(
            "{name}({})",
            args.iter().map(canonical_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Udf { udf, args } => format!(
            "udf:{}({})",
            udf.name,
            args.iter().map(canonical_expr).collect::<Vec<_>>().join(", ")
        ),
    }
}

/// Canonical text of one aggregate call (alias stripped, argument
/// canonicalized). `count(*)` has no argument.
pub fn canonical_aggregate(a: &AggregateExpr) -> String {
    match &a.arg {
        Some(arg) => format!("{}({})", a.func.name(), canonical_expr(arg)),
        None => format!("{}(*)", a.func.name()),
    }
}

fn canonical_schema(schema: &Schema) -> String {
    schema
        .fields()
        .iter()
        .map(|f| {
            format!(
                "{}:{}{}",
                f.name,
                f.data_type,
                if f.nullable { "?" } else { "" }
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Append the canonical encoding of a plan subtree to `out`.
fn canonical_plan_into(plan: &LogicalPlan, out: &mut String) {
    match plan {
        LogicalPlan::Scan {
            name,
            schema,
            projection,
            ..
        } => {
            // Attribute-order normalization: the pruned column set,
            // sorted by name, not the pushdown's index order.
            let mut cols: Vec<String> = match projection {
                Some(idx) => idx.iter().map(|&i| schema.field(i).name.clone()).collect(),
                None => schema.fields().iter().map(|f| f.name.clone()).collect(),
            };
            cols.sort();
            out.push_str(&format!("scan({name},[{}])", cols.join(",")));
        }
        LogicalPlan::Filter { input, predicate } => {
            out.push_str(&format!("filter({})<", canonical_expr(predicate)));
            canonical_plan_into(input, out);
            out.push('>');
        }
        LogicalPlan::Project { input, exprs } => {
            // Output attribute order is normalized: `select(a, b)` and
            // `select(b, a)` describe the same attribute set.
            let mut entries: Vec<String> = exprs
                .iter()
                .map(|e| format!("{}={}", e.output_name(), canonical_expr(e)))
                .collect();
            entries.sort();
            out.push_str(&format!("project([{}])<", entries.join(",")));
            canonical_plan_into(input, out);
            out.push('>');
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            // Key and aggregate order define the state layout: kept.
            let keys: Vec<String> = group_exprs.iter().map(canonical_expr).collect();
            let aggs: Vec<String> = aggregates.iter().map(canonical_aggregate).collect();
            out.push_str(&format!(
                "aggregate(keys=[{}],aggs=[{}])<",
                keys.join(","),
                aggs.join(",")
            ));
            canonical_plan_into(input, out);
            out.push('>');
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => {
            // Conjunction order of the equi-join pairs is irrelevant.
            let mut pairs: Vec<String> = on
                .iter()
                .map(|(l, r)| format!("{}={}", canonical_expr(l), canonical_expr(r)))
                .collect();
            pairs.sort();
            out.push_str(&format!("join({join_type},on=[{}])<", pairs.join(",")));
            canonical_plan_into(left, out);
            out.push_str("><");
            canonical_plan_into(right, out);
            out.push('>');
        }
        LogicalPlan::Sort { input, keys } => {
            let rendered: Vec<String> = keys
                .iter()
                .map(|k| {
                    format!(
                        "{} {}",
                        canonical_expr(&k.expr),
                        if k.ascending { "ASC" } else { "DESC" }
                    )
                })
                .collect();
            out.push_str(&format!("sort([{}])<", rendered.join(",")));
            canonical_plan_into(input, out);
            out.push('>');
        }
        LogicalPlan::Limit { input, n } => {
            out.push_str(&format!("limit({n})<"));
            canonical_plan_into(input, out);
            out.push('>');
        }
        LogicalPlan::Distinct { input } => {
            out.push_str("distinct<");
            canonical_plan_into(input, out);
            out.push('>');
        }
        LogicalPlan::Watermark {
            input,
            column,
            delay_us,
        } => {
            out.push_str(&format!("watermark({column},{delay_us}us)<"));
            canonical_plan_into(input, out);
            out.push('>');
        }
        LogicalPlan::MapGroupsWithState { input, op } => {
            let keys: Vec<String> = op.key_exprs.iter().map(canonical_expr).collect();
            out.push_str(&format!(
                "mapGroupsWithState({},keys=[{}],timeout={:?},flat={},out=[{}])<",
                op.name,
                keys.join(","),
                op.timeout,
                op.flat,
                canonical_schema(&op.output_schema)
            ));
            canonical_plan_into(input, out);
            out.push('>');
        }
    }
}

/// Fingerprint of a whole plan: FNV-1a 64 over the canonical encoding,
/// as fixed-width hex. Recorded in the checkpoint manifest so "the plan
/// changed at all" is cheap to detect; per-operator compatibility is
/// judged on [`OperatorSignature`]s, which ignore upstream map-side
/// edits.
pub fn plan_fingerprint(plan: &LogicalPlan) -> String {
    let mut enc = String::new();
    canonical_plan_into(plan, &mut enc);
    hex(fnv1a64(enc.as_bytes()))
}

/// One grouping key of a stateful operator: canonical expression text
/// plus the key column's type (a type change re-keys the state map,
/// which silently orphans every stored row — the checker refuses it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeySig {
    pub expr: String,
    pub data_type: DataType,
}

/// Event-time window geometry of a windowed aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSig {
    pub size_us: i64,
    pub slide_us: i64,
}

/// One aggregate call of an `Aggregate` operator, including its
/// partial-state layout: `empty_state` is the accumulator's initial
/// partial-state row, which doubles as the default used when state
/// migration adds this aggregate to restored entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSig {
    /// Function name (`count`, `sum`, `min`, `max`, `avg`).
    pub func: String,
    /// Canonical argument text; `None` for `count(*)`.
    pub arg: Option<String>,
    /// Result type against the operator's input schema.
    pub output_type: DataType,
    /// The accumulator's initial partial state (also the migration
    /// default for state rows that predate this aggregate).
    pub empty_state: Row,
}

/// The manifest entry for one stateful operator: a stable id (matching
/// the incrementalizer's operator numbering), the operator's semantic
/// fields, and a fingerprint over them. Map-side fields that are `None`
/// or empty simply don't apply to the operator's kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSignature {
    /// Stable operator id, e.g. `agg-0`, `join-1` — assigned by the
    /// same depth-first numbering the incrementalizer uses, so it names
    /// the operator's keyspace in the state store.
    pub op_id: String,
    /// `aggregate` | `join` | `mapGroupsWithState` | `distinct`.
    pub kind: String,
    /// FNV-1a 64 (hex) over the fields below; stable under upstream
    /// filter/projection edits.
    pub fingerprint: String,
    /// Grouping keys (aggregate / mapGroupsWithState), in state-layout
    /// order.
    pub group_keys: Vec<KeySig>,
    /// Window geometry, for windowed aggregations.
    pub window: Option<WindowSig>,
    /// Aggregate calls, in partial-state-layout order.
    pub aggregates: Vec<AggregateSig>,
    /// Join type (`INNER`, `LEFT OUTER`, `RIGHT OUTER`), for joins.
    pub join_type: Option<String>,
    /// Canonical left-side join keys, position-matched with
    /// `right_keys`.
    pub left_keys: Vec<String>,
    /// Canonical right-side join keys.
    pub right_keys: Vec<String>,
    /// Timeout kind, for `mapGroupsWithState`.
    pub timeout: Option<String>,
    /// `flatMap` vs `map`, for `mapGroupsWithState`.
    pub flat: Option<bool>,
    /// The operator's row schema: output schema for
    /// `mapGroupsWithState`, input schema for `distinct` (its state
    /// keys are whole input rows).
    pub schema: Option<Schema>,
}

impl OperatorSignature {
    fn finish(mut self) -> OperatorSignature {
        let mut enc = format!("{}|{}", self.kind, self.op_id);
        for k in &self.group_keys {
            enc.push_str(&format!("|key:{}:{}", k.expr, k.data_type));
        }
        if let Some(w) = &self.window {
            enc.push_str(&format!("|window:{}:{}", w.size_us, w.slide_us));
        }
        for a in &self.aggregates {
            enc.push_str(&format!(
                "|agg:{}:{}:{}",
                a.func,
                a.arg.as_deref().unwrap_or("*"),
                a.output_type
            ));
        }
        if let Some(jt) = &self.join_type {
            enc.push_str(&format!("|jt:{jt}"));
        }
        for (l, r) in self.left_keys.iter().zip(&self.right_keys) {
            enc.push_str(&format!("|on:{l}={r}"));
        }
        if let Some(t) = &self.timeout {
            enc.push_str(&format!("|timeout:{t}"));
        }
        if let Some(fl) = self.flat {
            enc.push_str(&format!("|flat:{fl}"));
        }
        if let Some(s) = &self.schema {
            enc.push_str(&format!("|schema:{}", canonical_schema(s)));
        }
        self.fingerprint = hex(fnv1a64(enc.as_bytes()));
        self
    }

    fn blank(op_id: String, kind: &str) -> OperatorSignature {
        OperatorSignature {
            op_id,
            kind: kind.to_string(),
            fingerprint: String::new(),
            group_keys: Vec::new(),
            window: None,
            aggregates: Vec::new(),
            join_type: None,
            left_keys: Vec::new(),
            right_keys: Vec::new(),
            timeout: None,
            flat: None,
            schema: None,
        }
    }
}

/// Extract the signature of every stateful operator in `plan`, with ids
/// assigned exactly as the incrementalizer assigns them: one shared
/// counter, consumed depth-first (inputs before the operator itself;
/// for joins, left before right), only by stateful operators. Run this
/// on the **optimized** plan — the same tree the incrementalizer sees.
pub fn operator_signatures(plan: &LogicalPlan) -> Result<Vec<OperatorSignature>> {
    let mut counter = 0usize;
    let mut out = Vec::new();
    collect_signatures(plan, &mut counter, &mut out)?;
    Ok(out)
}

fn next_id(prefix: &str, counter: &mut usize) -> String {
    let id = format!("{prefix}-{counter}");
    *counter += 1;
    id
}

fn collect_signatures(
    plan: &LogicalPlan,
    counter: &mut usize,
    out: &mut Vec<OperatorSignature>,
) -> Result<()> {
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Watermark { input, .. } => collect_signatures(input, counter, out)?,
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            collect_signatures(input, counter, out)?;
            let in_schema = input.schema()?;
            let mut sig = OperatorSignature::blank(next_id("agg", counter), "aggregate");
            for g in group_exprs {
                if let Expr::Window {
                    size_us, slide_us, ..
                } = strip_alias(g)
                {
                    sig.window = Some(WindowSig {
                        size_us: *size_us,
                        slide_us: *slide_us,
                    });
                    sig.group_keys.push(KeySig {
                        expr: canonical_expr(g),
                        data_type: DataType::Timestamp,
                    });
                } else {
                    sig.group_keys.push(KeySig {
                        expr: canonical_expr(g),
                        data_type: g.data_type(&in_schema)?,
                    });
                }
            }
            for a in aggregates {
                sig.aggregates.push(AggregateSig {
                    func: a.func.name().to_string(),
                    arg: a.arg.as_ref().map(canonical_expr),
                    output_type: a.result_type(&in_schema)?,
                    empty_state: a.create_accumulator().state(),
                });
            }
            out.push(sig.finish());
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => {
            if left.is_streaming() && right.is_streaming() {
                collect_signatures(left, counter, out)?;
                collect_signatures(right, counter, out)?;
                let mut sig = OperatorSignature::blank(next_id("join", counter), "join");
                sig.join_type = Some(join_type.to_string());
                // Pair order in the ON clause is not semantic, but the
                // left/right pairing within each equality is: sort the
                // pairs as units.
                let mut pairs: Vec<(String, String)> = on
                    .iter()
                    .map(|(l, r)| (canonical_expr(l), canonical_expr(r)))
                    .collect();
                pairs.sort();
                for (l, r) in pairs {
                    sig.left_keys.push(l);
                    sig.right_keys.push(r);
                }
                out.push(sig.finish());
            } else {
                // Stream–static join: only the stream side is stateful
                // (the static side is a cached lookup table consuming no
                // operator id).
                let stream = if left.is_streaming() { left } else { right };
                collect_signatures(stream, counter, out)?;
            }
        }
        LogicalPlan::MapGroupsWithState { input, op } => {
            collect_signatures(input, counter, out)?;
            let in_schema = input.schema()?;
            let mut sig =
                OperatorSignature::blank(next_id("mgws", counter), "mapGroupsWithState");
            for k in &op.key_exprs {
                sig.group_keys.push(KeySig {
                    expr: canonical_expr(k),
                    data_type: k.data_type(&in_schema)?,
                });
            }
            sig.timeout = Some(format!("{:?}", op.timeout));
            sig.flat = Some(op.flat);
            sig.schema = Some((*op.output_schema).clone());
            out.push(sig.finish());
        }
        LogicalPlan::Distinct { input } => {
            collect_signatures(input, counter, out)?;
            let mut sig = OperatorSignature::blank(next_id("dedup", counter), "distinct");
            sig.schema = Some((*input.schema()?).clone());
            out.push(sig.finish());
        }
    }
    Ok(())
}

/// Signatures indexed by operator id (manifest lookups).
pub fn signatures_by_id(sigs: &[OperatorSignature]) -> BTreeMap<String, &OperatorSignature> {
    sigs.iter().map(|s| (s.op_id.clone(), s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ss_common::Field;
    use ss_expr::{col, count_star, lit, sum, window, window_sliding};
    use std::sync::Arc;

    fn schema() -> ss_common::SchemaRef {
        Schema::of(vec![
            Field::new("country", DataType::Utf8),
            Field::new("time", DataType::Timestamp),
            Field::new("latency", DataType::Int64),
        ])
    }

    fn scan() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            name: "events".into(),
            schema: schema(),
            streaming: true,
            projection: None,
        })
    }

    fn agg_plan(group: Vec<Expr>, aggs: Vec<AggregateExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: scan(),
            group_exprs: group,
            aggregates: aggs,
        }
    }

    #[test]
    fn aliases_and_commutative_order_do_not_change_canonical_text() {
        let a = col("country").eq(lit("CA"));
        let b = lit("CA").eq(col("country")).alias("pred");
        assert_eq!(canonical_expr(&a), canonical_expr(&b));

        let a = col("a").and(col("b"));
        let b = col("b").and(col("a"));
        assert_eq!(canonical_expr(&a), canonical_expr(&b));
    }

    #[test]
    fn mirrored_comparisons_canonicalize_together() {
        let a = col("latency").gt(lit(5i64));
        let b = lit(5i64).lt(col("latency"));
        assert_eq!(canonical_expr(&a), canonical_expr(&b));
        // ...but the comparison itself is still directional.
        let c = col("latency").lt(lit(5i64));
        assert_ne!(canonical_expr(&a), canonical_expr(&c));
    }

    #[test]
    fn non_commutative_arithmetic_keeps_operand_order() {
        let a = col("a").sub(col("b"));
        let b = col("b").sub(col("a"));
        assert_ne!(canonical_expr(&a), canonical_expr(&b));
    }

    #[test]
    fn tumbling_and_explicit_sliding_windows_match() {
        let a = window(col("time"), "10 seconds").unwrap();
        let b = window_sliding(col("time"), "10 seconds", "10 seconds").unwrap();
        assert_eq!(canonical_expr(&a), canonical_expr(&b));
        let c = window_sliding(col("time"), "10 seconds", "5 seconds").unwrap();
        assert_ne!(canonical_expr(&a), canonical_expr(&c));
    }

    #[test]
    fn literals_distinguish_type_not_just_text() {
        // 5 (BIGINT) and 5.0 (DOUBLE) may render similarly but must not
        // canonicalize together.
        assert_ne!(
            canonical_expr(&lit(5i64)),
            canonical_expr(&lit(5.0f64))
        );
    }

    #[test]
    fn signatures_assign_incrementalizer_ids() {
        let plan = LogicalPlan::Distinct {
            input: Arc::new(agg_plan(vec![col("country")], vec![count_star()])),
        };
        let sigs = operator_signatures(&plan).unwrap();
        assert_eq!(sigs.len(), 2);
        assert_eq!(sigs[0].op_id, "agg-0");
        assert_eq!(sigs[0].kind, "aggregate");
        assert_eq!(sigs[1].op_id, "dedup-1");
        assert_eq!(sigs[1].kind, "distinct");
    }

    #[test]
    fn aggregate_signature_captures_state_layout() {
        let plan = agg_plan(
            vec![col("country")],
            vec![count_star(), sum(col("latency"))],
        );
        let sigs = operator_signatures(&plan).unwrap();
        let s = &sigs[0];
        assert_eq!(s.group_keys.len(), 1);
        assert_eq!(s.group_keys[0].expr, "country");
        assert_eq!(s.group_keys[0].data_type, DataType::Utf8);
        assert_eq!(s.aggregates.len(), 2);
        assert_eq!(s.aggregates[0].func, "count");
        assert_eq!(s.aggregates[0].arg, None);
        assert_eq!(s.aggregates[1].func, "sum");
        assert_eq!(s.aggregates[1].arg.as_deref(), Some("latency"));
        assert_eq!(s.aggregates[1].output_type, DataType::Int64);
        // The empty partial state doubles as the migration default.
        assert_eq!(s.aggregates[0].empty_state, Row::new(vec![ss_common::Value::Int64(0)]));
    }

    #[test]
    fn upstream_filter_edit_keeps_operator_fingerprint() {
        let filtered = LogicalPlan::Aggregate {
            input: Arc::new(LogicalPlan::Filter {
                input: scan(),
                predicate: col("country").eq(lit("CA")),
            }),
            group_exprs: vec![col("country")],
            aggregates: vec![count_star()],
        };
        let bare = agg_plan(vec![col("country")], vec![count_star()]);
        let a = operator_signatures(&filtered).unwrap();
        let b = operator_signatures(&bare).unwrap();
        assert_eq!(a[0].fingerprint, b[0].fingerprint);
        // The whole-plan fingerprint *does* see the filter.
        assert_ne!(plan_fingerprint(&filtered), plan_fingerprint(&bare));
    }

    #[test]
    fn group_key_change_changes_fingerprint() {
        let a = agg_plan(vec![col("country")], vec![count_star()]);
        let b = agg_plan(vec![col("latency")], vec![count_star()]);
        let sa = operator_signatures(&a).unwrap();
        let sb = operator_signatures(&b).unwrap();
        assert_ne!(sa[0].fingerprint, sb[0].fingerprint);
    }

    #[test]
    fn signature_round_trips_through_json() {
        let plan = agg_plan(
            vec![window(col("time"), "10 seconds").unwrap(), col("country")],
            vec![count_star(), sum(col("latency"))],
        );
        let sigs = operator_signatures(&plan).unwrap();
        let json = serde_json::to_string(&sigs).unwrap();
        let back: Vec<OperatorSignature> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sigs);
    }

    #[test]
    fn join_pair_order_is_normalized() {
        let mk = |on: Vec<(Expr, Expr)>| LogicalPlan::Join {
            left: scan(),
            right: Arc::new(LogicalPlan::Scan {
                name: "other".into(),
                schema: Schema::of(vec![
                    Field::new("c2", DataType::Utf8),
                    Field::new("t2", DataType::Timestamp),
                ]),
                streaming: true,
                projection: None,
            }),
            join_type: crate::JoinType::Inner,
            on,
        };
        let a = mk(vec![
            (col("country"), col("c2")),
            (col("time"), col("t2")),
        ]);
        let b = mk(vec![
            (col("time"), col("t2")),
            (col("country"), col("c2")),
        ]);
        let sa = operator_signatures(&a).unwrap();
        let sb = operator_signatures(&b).unwrap();
        assert_eq!(sa[0].fingerprint, sb[0].fingerprint);
        assert_eq!(sa[0].kind, "join");
        // Swapping which column joins to which IS semantic.
        let c = mk(vec![
            (col("country"), col("t2")),
            (col("time"), col("c2")),
        ]);
        let sc = operator_signatures(&c).unwrap();
        assert_ne!(sa[0].fingerprint, sc[0].fingerprint);
    }

    // --- fingerprint stability proptests -------------------------------

    fn arb_column() -> impl Strategy<Value = Expr> {
        prop_oneof![
            Just(col("country")),
            Just(col("time")),
            Just(col("latency")),
        ]
    }

    fn arb_literal() -> impl Strategy<Value = Expr> {
        prop_oneof![
            any::<i64>().prop_map(lit),
            any::<bool>().prop_map(lit),
            any::<u16>().prop_map(|n| lit(format!("s{n}"))),
        ]
    }

    fn arb_cmp() -> impl Strategy<Value = ss_expr::BinaryOp> {
        use ss_expr::BinaryOp::*;
        prop_oneof![
            Just(Eq),
            Just(NotEq),
            Just(Lt),
            Just(LtEq),
            Just(Gt),
            Just(GtEq)
        ]
    }

    proptest! {
        /// Equivalent constructions hash equal: mirrored comparisons,
        /// swapped commutative conjuncts, and inserted aliases never
        /// change the canonical text.
        #[test]
        fn equivalent_predicates_hash_equal(
            c in arb_column(),
            v in arb_literal(),
            op in arb_cmp(),
            alias_n in any::<u16>(),
        ) {
            let alias = format!("a{alias_n}");
            let forward = Expr::BinaryOp {
                left: Box::new(c.clone()),
                op,
                right: Box::new(v.clone()),
            };
            let mirrored = Expr::BinaryOp {
                left: Box::new(v.clone()),
                op: op.flip(),
                right: Box::new(c.clone()),
            };
            prop_assert_eq!(canonical_expr(&forward), canonical_expr(&mirrored));
            prop_assert_eq!(
                canonical_expr(&forward),
                canonical_expr(&forward.clone().alias(alias))
            );

            let and_ab = forward.clone().and(c.clone().is_not_null());
            let and_ba = c.is_not_null().and(forward);
            prop_assert_eq!(canonical_expr(&and_ab), canonical_expr(&and_ba));
        }

        /// Semantic edits hash differently: changing a window size or a
        /// grouping key always moves the operator fingerprint.
        #[test]
        fn semantic_edits_hash_differently(
            secs_a in 1i64..3600,
            secs_b in 1i64..3600,
        ) {
            // No prop_assume in the vendored runner: fold equal draws
            // into adjacent distinct sizes instead of discarding.
            let secs_b = if secs_a == secs_b { (secs_b % 3600) + 1 } else { secs_b };
            if secs_a == secs_b { return Ok(()); }
            let mk = |secs: i64| agg_plan(
                vec![Expr::Window {
                    time: Box::new(col("time")),
                    size_us: secs * 1_000_000,
                    slide_us: secs * 1_000_000,
                }],
                vec![count_star()],
            );
            let sa = operator_signatures(&mk(secs_a)).unwrap();
            let sb = operator_signatures(&mk(secs_b)).unwrap();
            prop_assert_ne!(&sa[0].fingerprint, &sb[0].fingerprint);
            prop_assert_eq!(sa[0].window.unwrap().size_us, secs_a * 1_000_000);
        }
    }
}
