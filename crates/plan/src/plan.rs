//! The logical plan tree.
//!
//! Nodes mirror the operator classes the paper says the incrementalizer
//! supports (§5.2): selections/projections, `SELECT DISTINCT`, joins
//! (inner/left-outer/right-outer; stream–table and stream–stream),
//! stateful operators (`mapGroupsWithState`), up to one aggregation, and
//! sorting after aggregation in complete mode. `Watermark` is the
//! `withWatermark` operator from §4.3.1.

use std::fmt;
use std::sync::Arc;

use ss_common::{Field, Result, Schema, SchemaRef, SsError};
use ss_expr::{AggregateExpr, Expr};

use crate::stateful::StatefulOpDef;

/// Join types the incrementalizer supports (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    Inner,
    LeftOuter,
    RightOuter,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinType::Inner => "INNER",
            JoinType::LeftOuter => "LEFT OUTER",
            JoinType::RightOuter => "RIGHT OUTER",
        };
        f.write_str(s)
    }
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub ascending: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> SortKey {
        SortKey {
            expr,
            ascending: true,
        }
    }
    pub fn desc(expr: Expr) -> SortKey {
        SortKey {
            expr,
            ascending: false,
        }
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// A leaf: a named table or stream with a known schema. `streaming`
    /// marks whether this scan reads an unbounded source; the planner
    /// treats the plan as a streaming query iff any scan is streaming.
    Scan {
        name: String,
        schema: SchemaRef,
        streaming: bool,
        /// Pushed-down column projection (indices into `schema`), filled
        /// in by the optimizer's pruning rule.
        projection: Option<Vec<usize>>,
    },
    /// `WHERE predicate`.
    Filter {
        input: Arc<LogicalPlan>,
        predicate: Expr,
    },
    /// `SELECT exprs`.
    Project {
        input: Arc<LogicalPlan>,
        exprs: Vec<Expr>,
    },
    /// `GROUP BY group_exprs AGG aggregates`. A `window()` grouping
    /// expression expands into `window_start`/`window_end` output
    /// columns.
    Aggregate {
        input: Arc<LogicalPlan>,
        group_exprs: Vec<Expr>,
        aggregates: Vec<AggregateExpr>,
    },
    /// Equi-join: `left.on[i].0 = right.on[i].1` for all i.
    Join {
        left: Arc<LogicalPlan>,
        right: Arc<LogicalPlan>,
        join_type: JoinType,
        on: Vec<(Expr, Expr)>,
    },
    /// `ORDER BY`.
    Sort {
        input: Arc<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    /// `LIMIT n`.
    Limit {
        input: Arc<LogicalPlan>,
        n: usize,
    },
    /// `SELECT DISTINCT`.
    Distinct { input: Arc<LogicalPlan> },
    /// `withWatermark(column, delay)` (§4.3.1): declares `column` as
    /// event time with a lateness bound of `delay_us`.
    Watermark {
        input: Arc<LogicalPlan>,
        column: String,
        delay_us: i64,
    },
    /// `mapGroupsWithState` / `flatMapGroupsWithState` (§4.3.2).
    MapGroupsWithState {
        input: Arc<LogicalPlan>,
        op: StatefulOpDef,
    },
}

impl LogicalPlan {
    /// The output schema of this node.
    pub fn schema(&self) -> Result<SchemaRef> {
        match self {
            LogicalPlan::Scan {
                schema, projection, ..
            } => match projection {
                None => Ok(schema.clone()),
                Some(idx) => Ok(Arc::new(schema.project(idx)?)),
            },
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Watermark { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for e in exprs {
                    fields.push(Field {
                        name: e.output_name(),
                        data_type: e.data_type(&in_schema)?,
                        nullable: e.nullable(&in_schema),
                    });
                }
                Ok(Arc::new(Schema::new(fields)?))
            }
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                aggregates,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::new();
                for g in group_exprs {
                    if let Expr::Window { .. } = strip_alias(g) {
                        // Window keys expand to [start, end), as Spark's
                        // window struct does.
                        fields.push(Field::not_null(
                            "window_start",
                            ss_common::DataType::Timestamp,
                        ));
                        fields.push(Field::not_null(
                            "window_end",
                            ss_common::DataType::Timestamp,
                        ));
                    } else {
                        fields.push(Field {
                            name: g.output_name(),
                            data_type: g.data_type(&in_schema)?,
                            nullable: g.nullable(&in_schema),
                        });
                    }
                }
                for a in aggregates {
                    fields.push(Field::new(a.output_name(), a.result_type(&in_schema)?));
                }
                Ok(Arc::new(Schema::new(fields)?))
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                let ls = left.schema()?;
                let rs = right.schema()?;
                // The null-extended side of an outer join becomes
                // nullable.
                let lf: Vec<Field> = ls
                    .fields()
                    .iter()
                    .map(|f| {
                        if *join_type == JoinType::RightOuter {
                            f.as_nullable()
                        } else {
                            f.clone()
                        }
                    })
                    .collect();
                let rf: Vec<Field> = rs
                    .fields()
                    .iter()
                    .map(|f| {
                        if *join_type == JoinType::LeftOuter {
                            f.as_nullable()
                        } else {
                            f.clone()
                        }
                    })
                    .collect();
                let joined = Schema::from(lf).join(&Schema::from(rf));
                Ok(Arc::new(joined))
            }
            LogicalPlan::MapGroupsWithState { op, .. } => Ok(op.output_schema.clone()),
        }
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Watermark { input, .. }
            | LogicalPlan::MapGroupsWithState { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Rebuild this node with new children (same order as
    /// [`Self::children`]).
    pub fn with_children(&self, mut children: Vec<Arc<LogicalPlan>>) -> Result<LogicalPlan> {
        let want = self.children().len();
        if children.len() != want {
            return Err(SsError::Internal(format!(
                "with_children: expected {want} children, got {}",
                children.len()
            )));
        }
        let mut next = || children.remove(0);
        Ok(match self {
            LogicalPlan::Scan { .. } => self.clone(),
            LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                input: next(),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { exprs, .. } => LogicalPlan::Project {
                input: next(),
                exprs: exprs.clone(),
            },
            LogicalPlan::Aggregate {
                group_exprs,
                aggregates,
                ..
            } => LogicalPlan::Aggregate {
                input: next(),
                group_exprs: group_exprs.clone(),
                aggregates: aggregates.clone(),
            },
            LogicalPlan::Join { join_type, on, .. } => LogicalPlan::Join {
                left: next(),
                right: next(),
                join_type: *join_type,
                on: on.clone(),
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                input: next(),
                keys: keys.clone(),
            },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
                input: next(),
                n: *n,
            },
            LogicalPlan::Distinct { .. } => LogicalPlan::Distinct { input: next() },
            LogicalPlan::Watermark { column, delay_us, .. } => LogicalPlan::Watermark {
                input: next(),
                column: column.clone(),
                delay_us: *delay_us,
            },
            LogicalPlan::MapGroupsWithState { op, .. } => LogicalPlan::MapGroupsWithState {
                input: next(),
                op: op.clone(),
            },
        })
    }

    /// True if any scan in the tree is a streaming source.
    pub fn is_streaming(&self) -> bool {
        match self {
            LogicalPlan::Scan { streaming, .. } => *streaming,
            other => other.children().iter().any(|c| c.is_streaming()),
        }
    }

    /// Number of `Aggregate` nodes in the tree (§5.2: "up to one
    /// aggregation" is supported for incremental execution).
    pub fn count_aggregates(&self) -> usize {
        let own = matches!(self, LogicalPlan::Aggregate { .. }) as usize;
        own + self
            .children()
            .iter()
            .map(|c| c.count_aggregates())
            .sum::<usize>()
    }

    /// All watermark declarations in the tree as `(column, delay_us)`.
    pub fn watermarks(&self) -> Vec<(String, i64)> {
        let mut out = Vec::new();
        self.collect_watermarks(&mut out);
        out
    }

    fn collect_watermarks(&self, out: &mut Vec<(String, i64)>) {
        if let LogicalPlan::Watermark {
            column, delay_us, ..
        } = self
        {
            out.push((column.clone(), *delay_us));
        }
        for c in self.children() {
            c.collect_watermarks(out);
        }
    }

    /// All streaming scan names in the tree.
    pub fn streaming_scans(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let LogicalPlan::Scan {
                name,
                streaming: true,
                ..
            } = p
            {
                out.push(name.clone());
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut dyn FnMut(&LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Bottom-up transformation: rewrite children first, then apply `f`
    /// to the rebuilt node.
    pub fn transform_up(
        &self,
        f: &dyn Fn(LogicalPlan) -> Result<LogicalPlan>,
    ) -> Result<LogicalPlan> {
        let new_children = self
            .children()
            .iter()
            .map(|c| c.transform_up(f).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        let rebuilt = if new_children.is_empty() {
            self.clone()
        } else {
            self.with_children(new_children)?
        };
        f(rebuilt)
    }

    /// One-line description of this node (no children).
    pub fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan {
                name,
                streaming,
                projection,
                schema,
            } => {
                let cols = match projection {
                    Some(idx) => idx
                        .iter()
                        .map(|&i| schema.field(i).name.clone())
                        .collect::<Vec<_>>()
                        .join(", "),
                    None => "*".into(),
                };
                format!(
                    "Scan{} {name} [{cols}]",
                    if *streaming { " (stream)" } else { "" }
                )
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Project { exprs, .. } => format!(
                "Project [{}]",
                exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Aggregate {
                group_exprs,
                aggregates,
                ..
            } => format!(
                "Aggregate group=[{}] aggs=[{}]",
                group_exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                aggregates
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Join { join_type, on, .. } => format!(
                "Join {join_type} on [{}]",
                on.iter()
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect::<Vec<_>>()
                    .join(" AND ")
            ),
            LogicalPlan::Sort { keys, .. } => format!(
                "Sort [{}]",
                keys.iter()
                    .map(|k| format!(
                        "{} {}",
                        k.expr,
                        if k.ascending { "ASC" } else { "DESC" }
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::Watermark {
                column, delay_us, ..
            } => format!("Watermark {column} delay={delay_us}us"),
            LogicalPlan::MapGroupsWithState { op, .. } => {
                format!("MapGroupsWithState {}", op.name)
            }
        }
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        writeln!(f, "{}{}", "  ".repeat(indent), self.describe())?;
        for c in self.children() {
            c.fmt_tree(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}

/// Unwrap any `Alias` layers.
pub fn strip_alias(e: &Expr) -> &Expr {
    match e {
        Expr::Alias { expr, .. } => strip_alias(expr),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::DataType;
    use ss_expr::{col, count_star, lit, window};

    fn scan(streaming: bool) -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            name: "events".into(),
            schema: Schema::of(vec![
                Field::new("country", DataType::Utf8),
                Field::new("time", DataType::Timestamp),
                Field::new("latency", DataType::Float64),
            ]),
            streaming,
            projection: None,
        })
    }

    #[test]
    fn project_schema_uses_output_names() {
        let p = LogicalPlan::Project {
            input: scan(false),
            exprs: vec![col("country"), col("latency").mul(lit(2.0f64)).alias("l2")],
        };
        let s = p.schema().unwrap();
        assert_eq!(s.field_names(), vec!["country", "l2"]);
        assert_eq!(s.field(1).data_type, DataType::Float64);
    }

    #[test]
    fn aggregate_schema_expands_window_keys() {
        let agg = LogicalPlan::Aggregate {
            input: scan(true),
            group_exprs: vec![window(col("time"), "10 seconds").unwrap(), col("country")],
            aggregates: vec![count_star()],
        };
        let s = agg.schema().unwrap();
        assert_eq!(
            s.field_names(),
            vec!["window_start", "window_end", "country", "count(*)"]
        );
    }

    #[test]
    fn join_schema_concats_and_nullifies_outer_side() {
        let j = LogicalPlan::Join {
            left: scan(true),
            right: scan(false),
            join_type: JoinType::LeftOuter,
            on: vec![(col("country"), col("country"))],
        };
        let s = j.schema().unwrap();
        assert_eq!(s.len(), 6);
        // Right side becomes nullable under a left-outer join.
        assert!(s.field(3).nullable && s.field(4).nullable);
    }

    #[test]
    fn streaming_propagates() {
        let f = LogicalPlan::Filter {
            input: scan(true),
            predicate: col("country").eq(lit("CA")),
        };
        assert!(f.is_streaming());
        let f = LogicalPlan::Filter {
            input: scan(false),
            predicate: col("country").eq(lit("CA")),
        };
        assert!(!f.is_streaming());
    }

    #[test]
    fn watermarks_collected() {
        let w = LogicalPlan::Watermark {
            input: scan(true),
            column: "time".into(),
            delay_us: 5_000_000,
        };
        let agg = LogicalPlan::Aggregate {
            input: Arc::new(w),
            group_exprs: vec![col("country")],
            aggregates: vec![count_star()],
        };
        assert_eq!(agg.watermarks(), vec![("time".to_string(), 5_000_000)]);
        assert_eq!(agg.count_aggregates(), 1);
    }

    #[test]
    fn transform_up_rewrites() {
        let f = LogicalPlan::Filter {
            input: scan(false),
            predicate: lit(true),
        };
        // Replace trivially-true filters with their input.
        let rewritten = f
            .transform_up(&|p| {
                Ok(match p {
                    LogicalPlan::Filter { input, predicate }
                        if predicate == lit(true) =>
                    {
                        (*input).clone()
                    }
                    other => other,
                })
            })
            .unwrap();
        assert!(matches!(rewritten, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn display_renders_tree() {
        let f = LogicalPlan::Filter {
            input: scan(true),
            predicate: col("country").eq(lit("CA")),
        };
        let out = f.to_string();
        assert!(out.contains("Filter (country = 'CA')"));
        assert!(out.contains("  Scan (stream) events [*]"));
    }

    #[test]
    fn scan_projection_narrows_schema() {
        let mut s = (*scan(false)).clone();
        if let LogicalPlan::Scan { projection, .. } = &mut s {
            *projection = Some(vec![2, 0]);
        }
        assert_eq!(s.schema().unwrap().field_names(), vec!["latency", "country"]);
    }

    #[test]
    fn streaming_scan_names() {
        let j = LogicalPlan::Join {
            left: scan(true),
            right: scan(false),
            join_type: JoinType::Inner,
            on: vec![],
        };
        assert_eq!(j.streaming_scans(), vec!["events".to_string()]);
    }
}
