//! Rule-based optimizer (§5.3).
//!
//! "Structured Streaming applies most of the optimization rules in Spark
//! SQL, such as predicate pushdown, projection pushdown, expression
//! simplification and others." The rules here are the ones that matter
//! for this engine:
//!
//! * [`SimplifyExpressions`] — constant folding + boolean algebra;
//! * [`MergeFilters`] — collapse stacked filters into one conjunction;
//! * [`PushDownFilters`] — move predicates below projections,
//!   watermarks, joins (side-aware for outer joins) and aggregations
//!   (group-key conjuncts only);
//! * [`CollapseProjects`] — merge stacked projections;
//! * column pruning ([`prune_columns`]) — push required-column sets down
//!   to scans, which then read only those columns.
//!
//! Rules run to fixpoint; every rule must be semantics-preserving for
//! both batch and streaming plans (the incrementalizer runs after
//! optimization, so a rule that changed results would break the prefix
//! consistency guarantee of §4.2).

use std::collections::BTreeSet;
use std::sync::Arc;

use ss_common::{Result, Row, Schema, Value};
use ss_expr::eval::evaluate_row;
use ss_expr::{BinaryOp, Expr};

use crate::plan::{strip_alias, JoinType, LogicalPlan};

/// An optimizer rule: a semantics-preserving whole-plan rewrite.
pub trait OptimizerRule {
    fn name(&self) -> &'static str;
    fn apply(&self, plan: &LogicalPlan) -> Result<LogicalPlan>;
}

/// The rule driver: applies all rules repeatedly until the plan stops
/// changing (or a fixed iteration cap, to guard against rule cycles).
pub struct Optimizer {
    rules: Vec<Box<dyn OptimizerRule + Send + Sync>>,
    max_iterations: usize,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            rules: vec![
                Box::new(SimplifyExpressions),
                Box::new(MergeFilters),
                Box::new(PushDownFilters),
                Box::new(CollapseProjects),
            ],
            max_iterations: 10,
        }
    }
}

impl Optimizer {
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// Optimize a plan: rule fixpoint, then column pruning.
    pub fn optimize(&self, plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
        let mut current = (**plan).clone();
        for _ in 0..self.max_iterations {
            let mut changed = false;
            for rule in &self.rules {
                let next = rule.apply(&current)?;
                if next != current {
                    changed = true;
                    current = next;
                }
            }
            if !changed {
                break;
            }
        }
        let pruned = prune_columns(&current, None)?;
        Ok(Arc::new(pruned))
    }
}

/// Optimize with the default rule set.
pub fn optimize(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    Optimizer::default().optimize(plan)
}

// ---------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------

/// Split a predicate into its top-level AND conjuncts.
pub fn split_conjunction(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::BinaryOp {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut v = split_conjunction(left);
            v.extend(split_conjunction(right));
            v
        }
        other => vec![other.clone()],
    }
}

/// AND a list of conjuncts back together (`None` if empty).
pub fn conjoin(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let first = if conjuncts.is_empty() {
        return None;
    } else {
        conjuncts.remove(0)
    };
    Some(conjuncts.into_iter().fold(first, |acc, c| acc.and(c)))
}

fn is_foldable(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Column(_) | Expr::Window { .. } | Expr::Udf { .. } => false,
        other => other.children().iter().all(|c| is_foldable(c)),
    }
}

/// Fold constant subexpressions and simplify boolean algebra,
/// bottom-up.
pub fn simplify_expr(e: &Expr) -> Expr {
    // Rebuild with simplified children first.
    let rebuilt = match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(simplify_expr(left)),
            op: *op,
            right: Box::new(simplify_expr(right)),
        },
        Expr::Not(x) => Expr::Not(Box::new(simplify_expr(x))),
        Expr::IsNull(x) => Expr::IsNull(Box::new(simplify_expr(x))),
        Expr::IsNotNull(x) => Expr::IsNotNull(Box::new(simplify_expr(x))),
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(simplify_expr(expr)),
            to: *to,
        },
        Expr::Alias { expr, name } => Expr::Alias {
            expr: Box::new(simplify_expr(expr)),
            name: name.clone(),
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (simplify_expr(c), simplify_expr(v)))
                .collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(simplify_expr(x))),
        },
        Expr::Window {
            time,
            size_us,
            slide_us,
        } => Expr::Window {
            time: Box::new(simplify_expr(time)),
            size_us: *size_us,
            slide_us: *slide_us,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(simplify_expr).collect(),
        },
        Expr::Udf { udf, args } => Expr::Udf {
            udf: udf.clone(),
            args: args.iter().map(simplify_expr).collect(),
        },
    };

    // Boolean algebra on the rebuilt node. These identities are safe
    // under three-valued logic: `x AND false` is false and `x OR true`
    // is true even when x is NULL.
    let t = Expr::Literal(Value::Boolean(true));
    let f = Expr::Literal(Value::Boolean(false));
    let simplified = match &rebuilt {
        Expr::BinaryOp { left, op, right } => match op {
            BinaryOp::And => {
                if **left == t {
                    (**right).clone()
                } else if **right == t {
                    (**left).clone()
                } else if **left == f || **right == f {
                    f.clone()
                } else {
                    rebuilt.clone()
                }
            }
            BinaryOp::Or => {
                if **left == f {
                    (**right).clone()
                } else if **right == f {
                    (**left).clone()
                } else if **left == t || **right == t {
                    t.clone()
                } else {
                    rebuilt.clone()
                }
            }
            _ => rebuilt.clone(),
        },
        Expr::Not(inner) => match &**inner {
            Expr::Not(x) => (**x).clone(),
            Expr::Literal(Value::Boolean(b)) => Expr::Literal(Value::Boolean(!b)),
            _ => rebuilt.clone(),
        },
        _ => rebuilt.clone(),
    };

    // Constant folding: literal-only subtrees evaluate now. Failures
    // (e.g. a bad string cast) leave the expression for runtime, where
    // it will produce the same error.
    if !matches!(simplified, Expr::Literal(_)) && is_foldable(&simplified) {
        let empty_schema = Schema::default();
        if let Ok(v) = evaluate_row(&simplified, &empty_schema, &Row::empty()) {
            return Expr::Literal(v);
        }
    }
    simplified
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// Constant folding + boolean simplification across all plan
/// expressions.
pub struct SimplifyExpressions;

impl OptimizerRule for SimplifyExpressions {
    fn name(&self) -> &'static str {
        "simplify_expressions"
    }

    fn apply(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        plan.transform_up(&|node| {
            Ok(match node {
                LogicalPlan::Filter { input, predicate } => {
                    let p = simplify_expr(&predicate);
                    // A literally-true filter is a no-op.
                    if p == Expr::Literal(Value::Boolean(true)) {
                        (*input).clone()
                    } else {
                        LogicalPlan::Filter {
                            input,
                            predicate: p,
                        }
                    }
                }
                LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                    input,
                    exprs: exprs.iter().map(simplify_expr).collect(),
                },
                other => other,
            })
        })
    }
}

/// `Filter(Filter(x, p1), p2)` → `Filter(x, p2 AND p1)`.
pub struct MergeFilters;

impl OptimizerRule for MergeFilters {
    fn name(&self) -> &'static str {
        "merge_filters"
    }

    fn apply(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        plan.transform_up(&|node| {
            Ok(match node {
                LogicalPlan::Filter {
                    input,
                    predicate: outer,
                } => match &*input {
                    LogicalPlan::Filter {
                        input: inner_input,
                        predicate: inner,
                    } => LogicalPlan::Filter {
                        input: inner_input.clone(),
                        predicate: outer.and(inner.clone()),
                    },
                    _ => LogicalPlan::Filter {
                        input,
                        predicate: outer,
                    },
                },
                other => other,
            })
        })
    }
}

/// Push filters toward scans: through projections (rewriting references
/// through aliases), watermarks, join sides, and aggregation group
/// keys.
pub struct PushDownFilters;

impl PushDownFilters {
    /// Can a predicate be answered using only columns from `schema`?
    fn covered_by(pred: &Expr, schema: &Schema) -> bool {
        pred.referenced_columns()
            .iter()
            .all(|c| schema.contains(c))
    }
}

impl OptimizerRule for PushDownFilters {
    fn name(&self) -> &'static str {
        "push_down_filters"
    }

    fn apply(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        plan.transform_up(&|node| {
            let LogicalPlan::Filter { input, predicate } = &node else {
                return Ok(node);
            };
            match &**input {
                // Filter(Project) -> Project(Filter) with references
                // rewritten through the projection, when every
                // referenced output column maps to a UDF-free
                // expression (UDFs should not be re-evaluated or
                // reordered past other operators).
                LogicalPlan::Project {
                    input: proj_input,
                    exprs,
                } => {
                    let mapping: Vec<(String, &Expr)> = exprs
                        .iter()
                        .map(|e| (e.output_name(), strip_alias(e)))
                        .collect();
                    let referenced = predicate.referenced_columns();
                    let ok = referenced.iter().all(|c| {
                        mapping.iter().any(|(n, e)| {
                            n == c && !matches!(e, Expr::Udf { .. }) && !e.contains_window()
                        })
                    });
                    if !ok {
                        return Ok(node.clone());
                    }
                    let rewritten = predicate.rewrite_columns(&|name| {
                        mapping
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, e)| (*e).clone())
                    });
                    Ok(LogicalPlan::Project {
                        input: Arc::new(LogicalPlan::Filter {
                            input: proj_input.clone(),
                            predicate: rewritten,
                        }),
                        exprs: exprs.clone(),
                    })
                }
                // Filter(Watermark) -> Watermark(Filter): the watermark
                // op only tracks metadata.
                LogicalPlan::Watermark {
                    input: wm_input,
                    column,
                    delay_us,
                } => Ok(LogicalPlan::Watermark {
                    input: Arc::new(LogicalPlan::Filter {
                        input: wm_input.clone(),
                        predicate: predicate.clone(),
                    }),
                    column: column.clone(),
                    delay_us: *delay_us,
                }),
                // Filter(Join): push conjuncts covered by one side to
                // that side, respecting outer-join semantics (pushing a
                // predicate into the null-extended side would change
                // results).
                LogicalPlan::Join {
                    left,
                    right,
                    join_type,
                    on,
                } => {
                    let ls = left.schema()?;
                    let rs = right.schema()?;
                    let mut to_left = Vec::new();
                    let mut to_right = Vec::new();
                    let mut kept = Vec::new();
                    for c in split_conjunction(predicate) {
                        let can_left = *join_type != JoinType::RightOuter
                            && Self::covered_by(&c, &ls);
                        let can_right = *join_type != JoinType::LeftOuter
                            && Self::covered_by(&c, &rs)
                            // Ambiguous names resolve to the left side;
                            // only push right when unambiguous.
                            && !Self::covered_by(&c, &ls);
                        if can_left {
                            to_left.push(c);
                        } else if can_right {
                            to_right.push(c);
                        } else {
                            kept.push(c);
                        }
                    }
                    if to_left.is_empty() && to_right.is_empty() {
                        return Ok(node.clone());
                    }
                    let mut new_left = left.clone();
                    if let Some(p) = conjoin(to_left) {
                        new_left = Arc::new(LogicalPlan::Filter {
                            input: new_left,
                            predicate: p,
                        });
                    }
                    let mut new_right = right.clone();
                    if let Some(p) = conjoin(to_right) {
                        new_right = Arc::new(LogicalPlan::Filter {
                            input: new_right,
                            predicate: p,
                        });
                    }
                    let join = LogicalPlan::Join {
                        left: new_left,
                        right: new_right,
                        join_type: *join_type,
                        on: on.clone(),
                    };
                    Ok(match conjoin(kept) {
                        Some(p) => LogicalPlan::Filter {
                            input: Arc::new(join),
                            predicate: p,
                        },
                        None => join,
                    })
                }
                // Filter(Aggregate): conjuncts that reference only
                // plain (non-window, non-aggregate) group-key columns
                // can be applied to the input rows instead.
                LogicalPlan::Aggregate {
                    input: agg_input,
                    group_exprs,
                    aggregates,
                } => {
                    let plain_keys: Vec<String> = group_exprs
                        .iter()
                        .filter_map(|g| match strip_alias(g) {
                            Expr::Column(n) => Some(n.clone()),
                            _ => None,
                        })
                        .collect();
                    let mut pushed = Vec::new();
                    let mut kept = Vec::new();
                    for c in split_conjunction(predicate) {
                        if c.referenced_columns().iter().all(|r| plain_keys.contains(r)) {
                            pushed.push(c);
                        } else {
                            kept.push(c);
                        }
                    }
                    if pushed.is_empty() {
                        return Ok(node.clone());
                    }
                    let new_input = Arc::new(LogicalPlan::Filter {
                        input: agg_input.clone(),
                        predicate: conjoin(pushed).expect("non-empty"),
                    });
                    let agg = LogicalPlan::Aggregate {
                        input: new_input,
                        group_exprs: group_exprs.clone(),
                        aggregates: aggregates.clone(),
                    };
                    Ok(match conjoin(kept) {
                        Some(p) => LogicalPlan::Filter {
                            input: Arc::new(agg),
                            predicate: p,
                        },
                        None => agg,
                    })
                }
                _ => Ok(node.clone()),
            }
        })
    }
}

/// `Project(Project(x, inner), outer)` → `Project(x, outer∘inner)` when
/// the inner projection is UDF-free (to avoid duplicating UDF calls).
pub struct CollapseProjects;

impl OptimizerRule for CollapseProjects {
    fn name(&self) -> &'static str {
        "collapse_projects"
    }

    fn apply(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        plan.transform_up(&|node| {
            let LogicalPlan::Project {
                input,
                exprs: outer,
            } = &node
            else {
                return Ok(node);
            };
            let LogicalPlan::Project {
                input: inner_input,
                exprs: inner,
            } = &**input
            else {
                return Ok(node.clone());
            };
            let mapping: Vec<(String, &Expr)> = inner
                .iter()
                .map(|e| (e.output_name(), strip_alias(e)))
                .collect();
            if mapping
                .iter()
                .any(|(_, e)| matches!(e, Expr::Udf { .. }) || e.contains_window())
            {
                return Ok(node.clone());
            }
            let composed: Vec<Expr> = outer
                .iter()
                .map(|e| {
                    let rewritten = e.rewrite_columns(&|name| {
                        mapping
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, x)| (*x).clone())
                    });
                    // Keep the outer output name stable.
                    if rewritten.output_name() == e.output_name() {
                        rewritten
                    } else {
                        rewritten.alias(e.output_name())
                    }
                })
                .collect();
            Ok(LogicalPlan::Project {
                input: inner_input.clone(),
                exprs: composed,
            })
        })
    }
}

// ---------------------------------------------------------------------
// Column pruning
// ---------------------------------------------------------------------

/// Push required-column sets down to scans. `required = None` means
/// "all columns". Runs top-down once, after the rule fixpoint.
pub fn prune_columns(
    plan: &LogicalPlan,
    required: Option<&BTreeSet<String>>,
) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Scan {
            name,
            schema,
            streaming,
            projection,
        } => {
            let Some(req) = required else {
                return Ok(plan.clone());
            };
            // Keep schema order; only narrow when it actually helps.
            let base = match projection {
                Some(idx) => idx.clone(),
                None => (0..schema.len()).collect(),
            };
            let narrowed: Vec<usize> = base
                .iter()
                .copied()
                .filter(|&i| req.contains(&schema.field(i).name))
                .collect();
            if narrowed.is_empty() || narrowed.len() == base.len() {
                return Ok(plan.clone());
            }
            Ok(LogicalPlan::Scan {
                name: name.clone(),
                schema: schema.clone(),
                streaming: *streaming,
                projection: Some(narrowed),
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let child_req = required.map(|r| {
                let mut r = r.clone();
                r.extend(predicate.referenced_columns());
                r
            });
            Ok(LogicalPlan::Filter {
                input: Arc::new(prune_columns(input, child_req.as_ref())?),
                predicate: predicate.clone(),
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let mut req = BTreeSet::new();
            for e in exprs {
                req.extend(e.referenced_columns());
            }
            Ok(LogicalPlan::Project {
                input: Arc::new(prune_columns(input, Some(&req))?),
                exprs: exprs.clone(),
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            let mut req = BTreeSet::new();
            for g in group_exprs {
                req.extend(g.referenced_columns());
            }
            for a in aggregates {
                if let Some(arg) = &a.arg {
                    req.extend(arg.referenced_columns());
                }
            }
            Ok(LogicalPlan::Aggregate {
                input: Arc::new(prune_columns(input, Some(&req))?),
                group_exprs: group_exprs.clone(),
                aggregates: aggregates.clone(),
            })
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => {
            let ls = left.schema()?;
            let rs = right.schema()?;
            let disjoint = ls
                .field_names()
                .iter()
                .all(|n| !rs.contains(n));
            if !disjoint || required.is_none() {
                // Ambiguous names or full requirement: recurse without
                // narrowing.
                return Ok(LogicalPlan::Join {
                    left: Arc::new(prune_columns(left, None)?),
                    right: Arc::new(prune_columns(right, None)?),
                    join_type: *join_type,
                    on: on.clone(),
                });
            }
            let req = required.unwrap();
            let mut lreq = BTreeSet::new();
            let mut rreq = BTreeSet::new();
            for n in req {
                if ls.contains(n) {
                    lreq.insert(n.clone());
                } else if rs.contains(n) {
                    rreq.insert(n.clone());
                }
            }
            for (le, re) in on {
                lreq.extend(le.referenced_columns());
                rreq.extend(re.referenced_columns());
            }
            Ok(LogicalPlan::Join {
                left: Arc::new(prune_columns(left, Some(&lreq))?),
                right: Arc::new(prune_columns(right, Some(&rreq))?),
                join_type: *join_type,
                on: on.clone(),
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let child_req = required.map(|r| {
                let mut r = r.clone();
                for k in keys {
                    r.extend(k.expr.referenced_columns());
                }
                r
            });
            Ok(LogicalPlan::Sort {
                input: Arc::new(prune_columns(input, child_req.as_ref())?),
                keys: keys.clone(),
            })
        }
        LogicalPlan::Limit { input, n } => Ok(LogicalPlan::Limit {
            input: Arc::new(prune_columns(input, required)?),
            n: *n,
        }),
        // DISTINCT compares whole rows; every input column matters.
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Arc::new(prune_columns(input, None)?),
        }),
        LogicalPlan::Watermark {
            input,
            column,
            delay_us,
        } => {
            let child_req = required.map(|r| {
                let mut r = r.clone();
                r.insert(column.clone());
                r
            });
            Ok(LogicalPlan::Watermark {
                input: Arc::new(prune_columns(input, child_req.as_ref())?),
                column: column.clone(),
                delay_us: *delay_us,
            })
        }
        // The user function sees whole input rows.
        LogicalPlan::MapGroupsWithState { input, op } => Ok(LogicalPlan::MapGroupsWithState {
            input: Arc::new(prune_columns(input, None)?),
            op: op.clone(),
        }),
    }
}

// Keep the unused-variable lint honest for rules that never fail.
#[allow(dead_code)]
fn _assert_rules_are_object_safe(_: &dyn OptimizerRule) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LogicalPlanBuilder;

    use ss_common::{DataType, Field};
    use ss_expr::{col, count_star, lit, sum};

    fn events() -> LogicalPlanBuilder {
        LogicalPlanBuilder::scan(
            "events",
            Schema::of(vec![
                Field::new("ad_id", DataType::Int64),
                Field::new("event_type", DataType::Utf8),
                Field::new("event_time", DataType::Timestamp),
                Field::new("ip", DataType::Utf8),
            ]),
            true,
        )
    }

    fn campaigns() -> LogicalPlanBuilder {
        LogicalPlanBuilder::scan(
            "campaigns",
            Schema::of(vec![
                Field::new("c_ad_id", DataType::Int64),
                Field::new("campaign_id", DataType::Int64),
            ]),
            false,
        )
    }

    #[test]
    fn constant_folding() {
        let e = lit(1i64).add(lit(2i64)).mul(lit(3i64));
        assert_eq!(simplify_expr(&e), lit(9i64));
        // x AND true -> x; x AND false -> false.
        let x = col("a").gt(lit(0i64));
        assert_eq!(simplify_expr(&x.clone().and(lit(true))), x);
        assert_eq!(simplify_expr(&x.clone().and(lit(false))), lit(false));
        assert_eq!(simplify_expr(&x.clone().or(lit(true))), lit(true));
        assert_eq!(simplify_expr(&x.clone().not().not()), x);
    }

    #[test]
    fn folding_leaves_failing_expressions_alone() {
        let e = lit("nope").cast(DataType::Int64);
        assert_eq!(simplify_expr(&e), e);
    }

    #[test]
    fn trivially_true_filter_removed() {
        let plan = events().filter(lit(1i64).lt(lit(2i64))).build();
        let opt = optimize(&plan).unwrap();
        assert!(matches!(*opt, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn merge_filters_conjoins() {
        let plan = events()
            .filter(col("event_type").eq(lit("view")))
            .filter(col("ad_id").gt(lit(0i64)))
            .build();
        let merged = MergeFilters.apply(&plan).unwrap();
        match merged {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert_eq!(split_conjunction(&predicate).len(), 2);
            }
            other => panic!("expected Filter, got {other}"),
        }
    }

    #[test]
    fn filter_pushes_through_project() {
        let plan = events()
            .project(vec![col("ad_id").alias("a"), col("event_type")])
            .filter(col("a").gt(lit(10i64)))
            .build();
        let opt = optimize(&plan).unwrap();
        // Filter should now sit below the projection, rewritten to the
        // underlying column.
        match &*opt {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, .. } => {
                    assert_eq!(*predicate, col("ad_id").gt(lit(10i64)));
                }
                other => panic!("expected Filter under Project, got {other}"),
            },
            other => panic!("expected Project on top, got {other}"),
        }
    }

    #[test]
    fn filter_splits_across_join_sides() {
        let plan = events()
            .join(
                campaigns(),
                JoinType::Inner,
                vec![(col("ad_id"), col("c_ad_id"))],
            )
            .filter(
                col("event_type")
                    .eq(lit("view"))
                    .and(col("campaign_id").gt(lit(5i64))),
            )
            .build();
        let opt = optimize(&plan).unwrap();
        let LogicalPlan::Join { left, right, .. } = &*opt else {
            panic!("expected Join on top, got {opt}");
        };
        // Each side got its conjunct.
        fn has_filter(p: &LogicalPlan) -> bool {
            matches!(p, LogicalPlan::Filter { .. })
                || p.children().iter().any(|c| has_filter(c))
        }
        assert!(has_filter(left), "left side should have the view filter");
        assert!(has_filter(right), "right side should have the campaign filter");
    }

    #[test]
    fn outer_join_keeps_null_extended_side_filters_above() {
        let plan = events()
            .join(
                campaigns(),
                JoinType::LeftOuter,
                vec![(col("ad_id"), col("c_ad_id"))],
            )
            .filter(col("campaign_id").gt(lit(5i64)))
            .build();
        let opt = PushDownFilters.apply(&plan).unwrap();
        // The right side is null-extended under a left-outer join; the
        // predicate must stay above the join.
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn filter_on_group_keys_pushes_below_aggregate() {
        let plan = events()
            .aggregate(vec![col("event_type")], vec![count_star()])
            .filter(col("event_type").eq(lit("view")))
            .build();
        let opt = optimize(&plan).unwrap();
        let LogicalPlan::Aggregate { input, .. } = &*opt else {
            panic!("expected Aggregate on top, got {opt}");
        };
        assert!(matches!(**input, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn filter_on_aggregate_result_stays_above() {
        let plan = events()
            .aggregate(vec![col("event_type")], vec![count_star()])
            .filter(col("count(*)").gt(lit(10i64)))
            .build();
        let opt = optimize(&plan).unwrap();
        assert!(matches!(&*opt, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn collapse_projects_composes_exprs() {
        let plan = events()
            .project(vec![col("ad_id").add(lit(1i64)).alias("x"), col("ip")])
            .project(vec![col("x").mul(lit(2i64)).alias("y")])
            .build();
        let opt = CollapseProjects.apply(&plan).unwrap();
        match &opt {
            LogicalPlan::Project { input, exprs } => {
                assert!(matches!(**input, LogicalPlan::Scan { .. }));
                assert_eq!(exprs.len(), 1);
                assert_eq!(exprs[0].output_name(), "y");
            }
            other => panic!("expected collapsed Project, got {other}"),
        }
    }

    #[test]
    fn pruning_narrows_scan() {
        let plan = events()
            .filter(col("event_type").eq(lit("view")))
            .project(vec![col("ad_id")])
            .build();
        let opt = optimize(&plan).unwrap();
        let mut scan_cols = None;
        opt.visit(&mut |p| {
            if let LogicalPlan::Scan { projection, schema, .. } = p {
                scan_cols = projection.as_ref().map(|idx| {
                    idx.iter().map(|&i| schema.field(i).name.clone()).collect::<Vec<_>>()
                });
            }
        });
        assert_eq!(
            scan_cols,
            Some(vec!["ad_id".to_string(), "event_type".to_string()])
        );
        // The optimized plan must keep the same output schema.
        assert_eq!(
            opt.schema().unwrap().field_names(),
            plan.schema().unwrap().field_names()
        );
    }

    #[test]
    fn pruning_through_join_with_disjoint_names() {
        let plan = events()
            .join(
                campaigns(),
                JoinType::Inner,
                vec![(col("ad_id"), col("c_ad_id"))],
            )
            .project(vec![col("campaign_id"), col("event_time")])
            .build();
        let opt = optimize(&plan).unwrap();
        let mut scans = Vec::new();
        opt.visit(&mut |p| {
            if let LogicalPlan::Scan {
                name, projection, schema, ..
            } = p
            {
                let cols: Vec<String> = match projection {
                    Some(idx) => idx.iter().map(|&i| schema.field(i).name.clone()).collect(),
                    None => schema.field_names(),
                };
                scans.push((name.clone(), cols));
            }
        });
        let ev = scans.iter().find(|(n, _)| n == "events").unwrap();
        assert_eq!(ev.1, vec!["ad_id", "event_time"]);
        assert_eq!(opt.schema().unwrap().field_names(), vec!["campaign_id", "event_time"]);
    }

    #[test]
    fn optimizer_is_idempotent() {
        let plan = events()
            .filter(col("event_type").eq(lit("view")).and(lit(true)))
            .project(vec![col("ad_id"), col("event_time")])
            .build();
        let once = optimize(&plan).unwrap();
        let twice = optimize(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn split_and_conjoin_round_trip() {
        let p = col("a")
            .gt(lit(1i64))
            .and(col("b").lt(lit(2i64)))
            .and(col("c").eq(lit(3i64)));
        let parts = split_conjunction(&p);
        assert_eq!(parts.len(), 3);
        let back = conjoin(parts).unwrap();
        assert_eq!(split_conjunction(&back).len(), 3);
        assert!(conjoin(vec![]).is_none());
    }

    #[test]
    fn aggregate_sum_arg_is_pruned_into_requirement() {
        let plan = events()
            .aggregate(vec![col("event_type")], vec![sum(col("ad_id"))])
            .build();
        let opt = optimize(&plan).unwrap();
        let mut cols = None;
        opt.visit(&mut |p| {
            if let LogicalPlan::Scan { projection, schema, .. } = p {
                cols = projection.as_ref().map(|idx| {
                    idx.iter().map(|&i| schema.field(i).name.clone()).collect::<Vec<_>>()
                });
            }
        });
        assert_eq!(cols, Some(vec!["ad_id".to_string(), "event_type".to_string()]));
    }
}
