//! # ss-expr — expressions and vectorized evaluation
//!
//! The expression layer of the relational engine:
//!
//! * [`Expr`] — the expression AST produced by the DataFrame DSL and the
//!   SQL front end, consumed by the planner and the evaluator.
//! * [`dsl`] — `col("x").gt(lit(5))`-style builders, mirroring Spark's
//!   `Column` API from the paper's examples.
//! * [`eval`] — the vectorized evaluator: expressions run as tight typed
//!   loops over [`ss_common::Column`]s. This is the reproduction's
//!   analogue of Spark SQL's Tungsten code generation (§5.3): the point
//!   is that no per-record boxing, hashing or virtual dispatch happens on
//!   the hot path.
//! * [`agg`] — aggregate functions with *mergeable partial states*, the
//!   property the incremental engine relies on to keep running aggregates
//!   in the state store (§5.2).

pub mod agg;
pub mod dsl;
pub mod eval;
pub mod expr;
pub mod kernels;

pub use agg::{AggState, AggregateExpr, AggregateFunction};
pub use dsl::{avg, col, count, count_star, func, lit, max, min, sum, window, window_sliding};
pub use eval::{evaluate, evaluate_guarded, evaluate_row};
pub use expr::{BinaryOp, Expr};
