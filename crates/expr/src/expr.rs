//! The expression AST.
//!
//! Expressions are name-resolved lazily against a batch's schema at
//! evaluation time; the analyzer in `ss-plan` checks up front that every
//! reference resolves and every operator is well-typed, so evaluation
//! failures on analyzed plans indicate engine bugs.

use std::fmt;
use std::sync::Arc;

use ss_common::{Column, DataType, Result, Schema, SsError, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }

    /// Mirror a comparison across its operands: `a < b` ⇔ `b > a`.
    pub fn flip(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }

    /// SQL rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
        }
    }
}

/// The callable body of a [`ScalarUdf`].
pub type ScalarUdfFn = Arc<dyn Fn(&[Column]) -> Result<Column> + Send + Sync>;

/// A scalar user-defined function: a named, pure function from columns
/// to a column. Equality is by name (the engine never needs structural
/// equality of function bodies).
#[derive(Clone)]
pub struct ScalarUdf {
    pub name: String,
    pub return_type: DataType,
    pub func: ScalarUdfFn,
}

impl fmt::Debug for ScalarUdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalarUdf")
            .field("name", &self.name)
            .field("return_type", &self.return_type)
            .finish()
    }
}

impl PartialEq for ScalarUdf {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.return_type == other.return_type
    }
}

/// The expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by name.
    Column(String),
    /// A literal scalar.
    Literal(Value),
    /// A binary operation with SQL NULL semantics.
    BinaryOp {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// NULL test (never NULL itself).
    IsNull(Box<Expr>),
    IsNotNull(Box<Expr>),
    /// Type cast.
    Cast { expr: Box<Expr>, to: DataType },
    /// Rename the output column.
    Alias { expr: Box<Expr>, name: String },
    /// `CASE WHEN c1 THEN v1 [WHEN ...] ELSE e END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Event-time window assignment (§4.1): buckets a timestamp column
    /// into `[start, end)` windows of `size_us`, sliding every
    /// `slide_us`. Evaluates to the window *start* timestamp. Sliding
    /// windows (`slide < size`) are only valid as grouping keys, where
    /// the aggregation operator expands each row into its `size/slide`
    /// windows; the analyzer enforces this.
    Window {
        time: Box<Expr>,
        size_us: i64,
        slide_us: i64,
    },
    /// Built-in scalar function by name (`lower`, `upper`, `length`,
    /// `abs`, `coalesce`, `concat`).
    Function { name: String, args: Vec<Expr> },
    /// User-defined scalar function.
    Udf { udf: ScalarUdf, args: Vec<Expr> },
}

impl Expr {
    /// The name this expression's output column gets (Spark-style).
    pub fn output_name(&self) -> String {
        match self {
            Expr::Column(n) => n.clone(),
            Expr::Alias { name, .. } => name.clone(),
            Expr::Window { .. } => "window".to_string(),
            other => other.to_string(),
        }
    }

    /// The result type of this expression against `schema`.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(name) => Ok(schema.field_by_name(name)?.data_type),
            Expr::Literal(v) => Ok(v.data_type().unwrap_or(DataType::Utf8)),
            Expr::BinaryOp { left, op, right } => {
                let lt = left.data_type(schema)?;
                let rt = right.data_type(schema)?;
                if op.is_comparison() {
                    lt.common_type(rt).map_err(|_| {
                        SsError::Type(format!("cannot compare {lt} with {rt} in `{self}`"))
                    })?;
                    Ok(DataType::Boolean)
                } else if op.is_logical() {
                    if lt != DataType::Boolean || rt != DataType::Boolean {
                        return Err(SsError::Type(format!(
                            "{} requires BOOLEAN operands, got {lt} and {rt}",
                            op.symbol()
                        )));
                    }
                    Ok(DataType::Boolean)
                } else {
                    let common = lt.common_type(rt).map_err(|_| {
                        SsError::Type(format!("cannot apply {} to {lt} and {rt}", op.symbol()))
                    })?;
                    if !common.is_numeric() && common != DataType::Timestamp {
                        return Err(SsError::Type(format!(
                            "arithmetic requires numeric operands, got {common} in `{self}`"
                        )));
                    }
                    // Division always yields a double, like Spark SQL's `/`.
                    if *op == BinaryOp::Divide {
                        Ok(DataType::Float64)
                    } else {
                        Ok(common)
                    }
                }
            }
            Expr::Not(e) => {
                if e.data_type(schema)? != DataType::Boolean {
                    return Err(SsError::Type(format!("NOT requires BOOLEAN in `{self}`")));
                }
                Ok(DataType::Boolean)
            }
            Expr::IsNull(e) | Expr::IsNotNull(e) => {
                e.data_type(schema)?;
                Ok(DataType::Boolean)
            }
            Expr::Cast { expr, to } => {
                expr.data_type(schema)?;
                Ok(*to)
            }
            Expr::Alias { expr, .. } => expr.data_type(schema),
            Expr::Case {
                branches,
                else_expr,
            } => {
                let mut ty: Option<DataType> = else_expr
                    .as_ref()
                    .map(|e| e.data_type(schema))
                    .transpose()?;
                for (cond, val) in branches {
                    if cond.data_type(schema)? != DataType::Boolean {
                        return Err(SsError::Type("CASE condition must be BOOLEAN".into()));
                    }
                    let vt = val.data_type(schema)?;
                    ty = Some(match ty {
                        None => vt,
                        Some(t) => t.common_type(vt)?,
                    });
                }
                ty.ok_or_else(|| SsError::Type("CASE with no branches".into()))
            }
            Expr::Window { time, .. } => {
                let tt = time.data_type(schema)?;
                if tt != DataType::Timestamp && tt != DataType::Int64 {
                    return Err(SsError::Type(format!(
                        "window() requires a TIMESTAMP column, got {tt}"
                    )));
                }
                Ok(DataType::Timestamp)
            }
            Expr::Function { name, args } => {
                let arg_types: Vec<DataType> = args
                    .iter()
                    .map(|a| a.data_type(schema))
                    .collect::<Result<_>>()?;
                builtin_return_type(name, &arg_types)
            }
            Expr::Udf { udf, .. } => Ok(udf.return_type),
        }
    }

    /// Whether the output may contain NULLs.
    pub fn nullable(&self, schema: &Schema) -> bool {
        match self {
            Expr::Column(name) => schema
                .field_by_name(name)
                .map(|f| f.nullable)
                .unwrap_or(true),
            Expr::Literal(v) => v.is_null(),
            Expr::IsNull(_) | Expr::IsNotNull(_) => false,
            Expr::Alias { expr, .. } => expr.nullable(schema),
            Expr::Window { time, .. } => time.nullable(schema),
            _ => true,
        }
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Column(_) | Expr::Literal(_) => vec![],
            Expr::BinaryOp { left, right, .. } => vec![left, right],
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => vec![e],
            Expr::Cast { expr, .. } | Expr::Alias { expr, .. } => vec![expr],
            Expr::Case {
                branches,
                else_expr,
            } => {
                let mut v: Vec<&Expr> = Vec::with_capacity(branches.len() * 2 + 1);
                for (c, val) in branches {
                    v.push(c);
                    v.push(val);
                }
                if let Some(e) = else_expr {
                    v.push(e);
                }
                v
            }
            Expr::Window { time, .. } => vec![time],
            Expr::Function { args, .. } | Expr::Udf { args, .. } => args.iter().collect(),
        }
    }

    /// All column names referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        if let Expr::Column(n) = self {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        for c in self.children() {
            c.collect_columns(out);
        }
    }

    /// True if this expression (or a descendant) is a `window()` call.
    pub fn contains_window(&self) -> bool {
        matches!(self, Expr::Window { .. }) || self.children().iter().any(|c| c.contains_window())
    }

    /// Rewrite column references through a rename map (used when pushing
    /// predicates through projections).
    pub fn rewrite_columns(&self, rename: &dyn Fn(&str) -> Option<Expr>) -> Expr {
        match self {
            Expr::Column(n) => rename(n).unwrap_or_else(|| self.clone()),
            Expr::Literal(_) => self.clone(),
            Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
                left: Box::new(left.rewrite_columns(rename)),
                op: *op,
                right: Box::new(right.rewrite_columns(rename)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.rewrite_columns(rename))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.rewrite_columns(rename))),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.rewrite_columns(rename))),
            Expr::Cast { expr, to } => Expr::Cast {
                expr: Box::new(expr.rewrite_columns(rename)),
                to: *to,
            },
            Expr::Alias { expr, name } => Expr::Alias {
                expr: Box::new(expr.rewrite_columns(rename)),
                name: name.clone(),
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.rewrite_columns(rename), v.rewrite_columns(rename)))
                    .collect(),
                else_expr: else_expr
                    .as_ref()
                    .map(|e| Box::new(e.rewrite_columns(rename))),
            },
            Expr::Window {
                time,
                size_us,
                slide_us,
            } => Expr::Window {
                time: Box::new(time.rewrite_columns(rename)),
                size_us: *size_us,
                slide_us: *slide_us,
            },
            Expr::Function { name, args } => Expr::Function {
                name: name.clone(),
                args: args.iter().map(|a| a.rewrite_columns(rename)).collect(),
            },
            Expr::Udf { udf, args } => Expr::Udf {
                udf: udf.clone(),
                args: args.iter().map(|a| a.rewrite_columns(rename)).collect(),
            },
        }
    }

    // ---- fluent builder methods (the Spark `Column` API) ----

    fn binary(self, op: BinaryOp, rhs: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(self),
            op,
            right: Box::new(rhs),
        }
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Eq, rhs)
    }
    pub fn not_eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::NotEq, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Lt, rhs)
    }
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Gt, rhs)
    }
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::And, rhs)
    }
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Or, rhs)
    }
    #[allow(clippy::should_implement_trait)] // Spark Column API naming
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Plus, rhs)
    }
    #[allow(clippy::should_implement_trait)] // Spark Column API naming
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Minus, rhs)
    }
    #[allow(clippy::should_implement_trait)] // Spark Column API naming
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Multiply, rhs)
    }
    #[allow(clippy::should_implement_trait)] // Spark Column API naming
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Divide, rhs)
    }
    pub fn modulo(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Modulo, rhs)
    }

    #[allow(clippy::should_implement_trait)] // Spark Column API naming
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }
    pub fn cast(self, to: DataType) -> Expr {
        Expr::Cast {
            expr: Box::new(self),
            to,
        }
    }
    pub fn alias(self, name: impl Into<String>) -> Expr {
        Expr::Alias {
            expr: Box::new(self),
            name: name.into(),
        }
    }
}

/// Return type of a built-in function.
pub fn builtin_return_type(name: &str, arg_types: &[DataType]) -> Result<DataType> {
    let arity_err = |want: &str| {
        Err(SsError::Type(format!(
            "{name}() expects {want} argument(s), got {}",
            arg_types.len()
        )))
    };
    match name {
        "lower" | "upper" => {
            if arg_types.len() != 1 {
                return arity_err("1 STRING");
            }
            if arg_types[0] != DataType::Utf8 {
                return Err(SsError::Type(format!("{name}() requires STRING")));
            }
            Ok(DataType::Utf8)
        }
        "length" => {
            if arg_types.len() != 1 {
                return arity_err("1 STRING");
            }
            Ok(DataType::Int64)
        }
        "abs" => {
            if arg_types.len() != 1 {
                return arity_err("1 numeric");
            }
            if !arg_types[0].is_numeric() {
                return Err(SsError::Type("abs() requires a numeric argument".into()));
            }
            Ok(arg_types[0])
        }
        "coalesce" => {
            if arg_types.is_empty() {
                return arity_err("at least 1");
            }
            let mut ty = arg_types[0];
            for t in &arg_types[1..] {
                ty = ty.common_type(*t)?;
            }
            Ok(ty)
        }
        "concat" => {
            if arg_types.is_empty() {
                return arity_err("at least 1");
            }
            Ok(DataType::Utf8)
        }
        "like" => {
            if arg_types.len() != 2 {
                return arity_err("2 STRING");
            }
            if arg_types[0] != DataType::Utf8 || arg_types[1] != DataType::Utf8 {
                return Err(SsError::Type("like() requires STRING arguments".into()));
            }
            Ok(DataType::Boolean)
        }
        "to_int" => {
            if arg_types.len() != 1 {
                return arity_err("1 STRING");
            }
            if arg_types[0] != DataType::Utf8 {
                return Err(SsError::Type("to_int() requires a STRING argument".into()));
            }
            Ok(DataType::Int64)
        }
        other => Err(SsError::Type(format!("unknown function `{other}`"))),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(n) => write!(f, "{n}"),
            Expr::Literal(v) => match v {
                Value::Utf8(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::BinaryOp { left, op, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Alias { expr, name } => write!(f, "{expr} AS {name}"),
            Expr::Case {
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Window {
                time,
                size_us,
                slide_us,
            } => {
                if size_us == slide_us {
                    write!(f, "window({time}, {}us)", size_us)
                } else {
                    write!(f, "window({time}, {}us, {}us)", size_us, slide_us)
                }
            }
            Expr::Function { name, args } | Expr::Udf {
                udf: ScalarUdf { name, .. },
                args,
            } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{col, lit};
    use ss_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::not_null("s", DataType::Utf8),
            Field::new("t", DataType::Timestamp),
            Field::new("f", DataType::Float64),
            Field::new("b", DataType::Boolean),
        ])
        .unwrap()
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(col("a").add(lit(1i64)).data_type(&s).unwrap(), DataType::Int64);
        assert_eq!(col("a").add(col("f")).data_type(&s).unwrap(), DataType::Float64);
        assert_eq!(col("a").div(lit(2i64)).data_type(&s).unwrap(), DataType::Float64);
        assert_eq!(col("a").gt(lit(0i64)).data_type(&s).unwrap(), DataType::Boolean);
        assert_eq!(col("s").is_null().data_type(&s).unwrap(), DataType::Boolean);
        assert_eq!(
            col("a").cast(DataType::Utf8).data_type(&s).unwrap(),
            DataType::Utf8
        );
    }

    #[test]
    fn type_errors() {
        let s = schema();
        assert!(col("s").add(lit(1i64)).data_type(&s).is_err());
        assert!(col("a").and(col("b")).data_type(&s).is_err());
        assert!(col("s").gt(lit(1i64)).data_type(&s).is_err());
        assert!(col("missing").data_type(&s).is_err());
        assert!(Expr::Function {
            name: "nope".into(),
            args: vec![]
        }
        .data_type(&s)
        .is_err());
    }

    #[test]
    fn window_requires_timestamp() {
        let s = schema();
        let w = crate::dsl::window(col("t"), "10 seconds").unwrap();
        assert_eq!(w.data_type(&s).unwrap(), DataType::Timestamp);
        assert!(crate::dsl::window(col("s"), "10 seconds")
            .unwrap()
            .data_type(&s)
            .is_err());
    }

    #[test]
    fn output_names() {
        assert_eq!(col("x").output_name(), "x");
        assert_eq!(col("x").alias("y").output_name(), "y");
        assert_eq!(
            crate::dsl::window(col("t"), "1 min").unwrap().output_name(),
            "window"
        );
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = col("a").add(col("b")).mul(col("a"));
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn nullable_tracking() {
        let s = schema();
        assert!(col("a").nullable(&s));
        assert!(!col("s").nullable(&s));
        assert!(!col("a").is_null().nullable(&s));
        assert!(!lit(1i64).nullable(&s));
        assert!(lit(Value::Null).nullable(&s));
    }

    #[test]
    fn display_round_readable() {
        let e = col("a").gt(lit(5i64)).and(col("s").eq(lit("view")));
        assert_eq!(e.to_string(), "((a > 5) AND (s = 'view'))");
    }

    #[test]
    fn rewrite_columns_substitutes() {
        let e = col("a").add(col("b"));
        let rewritten = e.rewrite_columns(&|n| (n == "a").then(|| lit(7i64)));
        assert_eq!(rewritten, lit(7i64).add(col("b")));
    }

    #[test]
    fn contains_window_walks_tree() {
        let w = crate::dsl::window(col("t"), "10 seconds").unwrap();
        assert!(w.clone().alias("w").contains_window());
        assert!(!col("t").contains_window());
    }

    #[test]
    fn case_type_inference() {
        let s = schema();
        let e = Expr::Case {
            branches: vec![(col("b"), lit(1i64))],
            else_expr: Some(Box::new(lit(2.5f64))),
        };
        assert_eq!(e.data_type(&s).unwrap(), DataType::Float64);
        let bad = Expr::Case {
            branches: vec![(lit(1i64), lit(1i64))],
            else_expr: None,
        };
        assert!(bad.data_type(&s).is_err());
    }
}
