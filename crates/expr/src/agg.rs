//! Aggregate functions with mergeable partial states.
//!
//! The streaming engine keeps one [`AggState`] per group key in the state
//! store and merges per-epoch partial aggregates into it (§5.2 of the
//! paper: "an aggregation in the user query might be mapped to a
//! StatefulAggregate operator"). Requirements this module satisfies:
//!
//! * partial states are **mergeable** (`merge(a, b)` is associative and
//!   commutative), so per-partition partials combine in any order;
//! * partial states are **serializable** ([`Row`]s of [`Value`]s), so
//!   the state store can checkpoint them;
//! * batch and streaming produce identical results, because a final
//!   state is independent of how the input was split into epochs —
//!   property-tested below.

use std::fmt;

use ss_common::{Column, DataType, Result, Row, Schema, SsError, Value};

use crate::expr::Expr;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `count(expr)` counts non-NULL values; `count(*)` counts rows.
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggregateFunction {
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunction::Count => "count",
            AggregateFunction::Sum => "sum",
            AggregateFunction::Min => "min",
            AggregateFunction::Max => "max",
            AggregateFunction::Avg => "avg",
        }
    }
}

/// An aggregate call site: function + optional argument + optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    pub func: AggregateFunction,
    /// `None` only for `count(*)`.
    pub arg: Option<Expr>,
    pub alias: Option<String>,
}

impl AggregateExpr {
    pub fn new(func: AggregateFunction, arg: Option<Expr>) -> AggregateExpr {
        AggregateExpr {
            func,
            arg,
            alias: None,
        }
    }

    pub fn alias(mut self, name: impl Into<String>) -> AggregateExpr {
        self.alias = Some(name.into());
        self
    }

    /// The output column name.
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.arg {
            Some(e) => format!("{}({e})", self.func.name()),
            None => format!("{}(*)", self.func.name()),
        }
    }

    /// The result type against an input schema.
    pub fn result_type(&self, schema: &Schema) -> Result<DataType> {
        let arg_type = match &self.arg {
            Some(e) => Some(e.data_type(schema)?),
            None => None,
        };
        match self.func {
            AggregateFunction::Count => Ok(DataType::Int64),
            AggregateFunction::Avg => {
                let t = arg_type
                    .ok_or_else(|| SsError::Type("avg() requires an argument".into()))?;
                if !t.is_numeric() {
                    return Err(SsError::Type(format!("avg() requires numeric, got {t}")));
                }
                Ok(DataType::Float64)
            }
            AggregateFunction::Sum => {
                let t = arg_type
                    .ok_or_else(|| SsError::Type("sum() requires an argument".into()))?;
                if !t.is_numeric() {
                    return Err(SsError::Type(format!("sum() requires numeric, got {t}")));
                }
                Ok(t)
            }
            AggregateFunction::Min | AggregateFunction::Max => arg_type.ok_or_else(|| {
                SsError::Type(format!("{}() requires an argument", self.func.name()))
            }),
        }
    }

    /// A fresh accumulator for this aggregate.
    pub fn create_accumulator(&self) -> Accumulator {
        match self.func {
            AggregateFunction::Count => Accumulator::Count { n: 0 },
            AggregateFunction::Sum => Accumulator::Sum { sum: Value::Null },
            AggregateFunction::Min => Accumulator::Min { min: Value::Null },
            AggregateFunction::Max => Accumulator::Max { max: Value::Null },
            AggregateFunction::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Rehydrate an accumulator from a checkpointed state row.
    pub fn accumulator_from_state(&self, state: &Row) -> Result<Accumulator> {
        let mut acc = self.create_accumulator();
        acc.merge(state)?;
        Ok(acc)
    }
}

impl fmt::Display for AggregateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.output_name())
    }
}

/// A serializable partial aggregate state. The layout is
/// function-specific (documented on each [`Accumulator`] variant).
pub type AggState = Row;

/// A running aggregate.
///
/// State layouts (as [`Row`]s):
/// * `Count` → `[Int64 n]`
/// * `Sum`   → `[sum]` (NULL until the first non-NULL input)
/// * `Min`   → `[min]`
/// * `Max`   → `[max]`
/// * `Avg`   → `[Float64 sum, Int64 count]`
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    Count { n: i64 },
    Sum { sum: Value },
    Min { min: Value },
    Max { max: Value },
    Avg { sum: f64, count: i64 },
}

impl Accumulator {
    /// Vectorized update from a column (or, for `count(*)`, a bare row
    /// count with `col = None`).
    pub fn update_column(&mut self, col: Option<&Column>, num_rows: usize) -> Result<()> {
        match (self, col) {
            (Accumulator::Count { n }, None) => {
                *n += num_rows as i64;
            }
            (Accumulator::Count { n }, Some(c)) => {
                *n += (0..c.len()).filter(|&i| c.is_valid(i)).count() as i64;
            }
            (acc, Some(c)) => {
                // Typed fast paths for the numeric kernels.
                match (acc, c) {
                    (Accumulator::Sum { sum }, Column::Int64(tc)) => {
                        let mut s = 0i64;
                        let mut any = false;
                        for i in 0..tc.len() {
                            if let Some(v) = tc.get(i) {
                                s = s.wrapping_add(*v);
                                any = true;
                            }
                        }
                        if any {
                            *sum = match sum {
                                Value::Null => Value::Int64(s),
                                Value::Int64(old) => Value::Int64(old.wrapping_add(s)),
                                other => {
                                    return Err(SsError::Internal(format!(
                                        "sum state {other} for Int64 column"
                                    )))
                                }
                            };
                        }
                    }
                    (Accumulator::Sum { sum }, Column::Float64(tc)) => {
                        let mut s = 0f64;
                        let mut any = false;
                        for i in 0..tc.len() {
                            if let Some(v) = tc.get(i) {
                                s += *v;
                                any = true;
                            }
                        }
                        if any {
                            *sum = match sum {
                                Value::Null => Value::Float64(s),
                                Value::Float64(old) => Value::Float64(*old + s),
                                other => {
                                    return Err(SsError::Internal(format!(
                                        "sum state {other} for Float64 column"
                                    )))
                                }
                            };
                        }
                    }
                    (Accumulator::Sum { .. }, other) => {
                        return Err(SsError::Type(format!(
                            "sum() requires numeric, got {}",
                            other.data_type()
                        )))
                    }
                    (Accumulator::Avg { sum, count }, c) => {
                        let tc = match c {
                            Column::Float64(_) => c.as_f64().map(|t| {
                                t.iter().map(|v| v.copied()).collect::<Vec<Option<f64>>>()
                            })?,
                            Column::Int64(t) => {
                                t.iter().map(|v| v.map(|&x| x as f64)).collect()
                            }
                            other => {
                                return Err(SsError::Type(format!(
                                    "avg() requires numeric, got {}",
                                    other.data_type()
                                )))
                            }
                        };
                        for v in tc.into_iter().flatten() {
                            *sum += v;
                            *count += 1;
                        }
                    }
                    (Accumulator::Min { min }, c) => {
                        for i in 0..c.len() {
                            let v = c.value(i);
                            if !v.is_null() && (min.is_null() || v < *min) {
                                *min = v;
                            }
                        }
                    }
                    (Accumulator::Max { max }, c) => {
                        for i in 0..c.len() {
                            let v = c.value(i);
                            if !v.is_null() && (max.is_null() || v > *max) {
                                *max = v;
                            }
                        }
                    }
                    (Accumulator::Count { .. }, _) => unreachable!("handled above"),
                }
            }
            (acc, None) => {
                return Err(SsError::Internal(format!(
                    "{acc:?} requires an argument column"
                )))
            }
        }
        Ok(())
    }

    /// Scalar update (continuous mode / stateful operators).
    pub fn update_value(&mut self, v: &Value) -> Result<()> {
        match self {
            Accumulator::Count { n } => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::Sum { sum } => {
                if !v.is_null() {
                    *sum = match (&sum, v) {
                        (Value::Null, v) => v.clone(),
                        (Value::Int64(a), Value::Int64(b)) => Value::Int64(a.wrapping_add(*b)),
                        (Value::Float64(a), Value::Float64(b)) => Value::Float64(a + b),
                        (Value::Int64(a), Value::Float64(b)) => Value::Float64(*a as f64 + b),
                        (Value::Float64(a), Value::Int64(b)) => Value::Float64(*a + *b as f64),
                        (s, v) => {
                            return Err(SsError::Type(format!("cannot sum {v} into {s}")))
                        }
                    };
                }
            }
            Accumulator::Min { min } => {
                if !v.is_null() && (min.is_null() || *v < *min) {
                    *min = v.clone();
                }
            }
            Accumulator::Max { max } => {
                if !v.is_null() && (max.is_null() || *v > *max) {
                    *max = v.clone();
                }
            }
            Accumulator::Avg { sum, count } => {
                if let Some(x) = v.as_f64()? {
                    *sum += x;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Merge a checkpointed/partial state into this accumulator.
    pub fn merge(&mut self, state: &Row) -> Result<()> {
        let wrong = || SsError::Serde(format!("bad aggregate state {state}"));
        match self {
            Accumulator::Count { n } => {
                let m = state.values().first().ok_or_else(wrong)?;
                *n += m.as_i64()?.ok_or_else(wrong)?;
            }
            Accumulator::Sum { sum } => {
                let other = state.values().first().ok_or_else(wrong)?;
                if !other.is_null() {
                    let mut tmp = Accumulator::Sum { sum: sum.clone() };
                    tmp.update_value(other)?;
                    if let Accumulator::Sum { sum: s } = tmp {
                        *sum = s;
                    }
                }
            }
            Accumulator::Min { min } => {
                let other = state.values().first().ok_or_else(wrong)?;
                if !other.is_null() && (min.is_null() || *other < *min) {
                    *min = other.clone();
                }
            }
            Accumulator::Max { max } => {
                let other = state.values().first().ok_or_else(wrong)?;
                if !other.is_null() && (max.is_null() || *other > *max) {
                    *max = other.clone();
                }
            }
            Accumulator::Avg { sum, count } => {
                if state.len() != 2 {
                    return Err(wrong());
                }
                *sum += state.get(0).as_f64()?.ok_or_else(wrong)?;
                *count += state.get(1).as_i64()?.ok_or_else(wrong)?;
            }
        }
        Ok(())
    }

    /// The checkpointable partial state.
    pub fn state(&self) -> AggState {
        match self {
            Accumulator::Count { n } => Row::new(vec![Value::Int64(*n)]),
            Accumulator::Sum { sum } => Row::new(vec![sum.clone()]),
            Accumulator::Min { min } => Row::new(vec![min.clone()]),
            Accumulator::Max { max } => Row::new(vec![max.clone()]),
            Accumulator::Avg { sum, count } => {
                Row::new(vec![Value::Float64(*sum), Value::Int64(*count)])
            }
        }
    }

    /// The final aggregate value.
    pub fn evaluate(&self) -> Value {
        match self {
            Accumulator::Count { n } => Value::Int64(*n),
            Accumulator::Sum { sum } => sum.clone(),
            Accumulator::Min { min } => min.clone(),
            Accumulator::Max { max } => max.clone(),
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(*sum / *count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{avg, col, count, count_star, max, min, sum};
    use ss_common::{row, Field, Schema};

    fn int_column(vals: &[Option<i64>]) -> Column {
        let values: Vec<Value> = vals.iter().map(|v| Value::from(*v)).collect();
        Column::from_values(DataType::Int64, &values).unwrap()
    }

    #[test]
    fn count_star_counts_rows_count_col_skips_nulls() {
        let c = int_column(&[Some(1), None, Some(3)]);
        let mut star = count_star().create_accumulator();
        star.update_column(None, 3).unwrap();
        assert_eq!(star.evaluate(), Value::Int64(3));
        let mut cnt = count(col("x")).create_accumulator();
        cnt.update_column(Some(&c), 3).unwrap();
        assert_eq!(cnt.evaluate(), Value::Int64(2));
    }

    #[test]
    fn sum_min_max_avg() {
        let c = int_column(&[Some(5), None, Some(-2), Some(10)]);
        let mut s = sum(col("x")).create_accumulator();
        s.update_column(Some(&c), 4).unwrap();
        assert_eq!(s.evaluate(), Value::Int64(13));
        let mut mn = min(col("x")).create_accumulator();
        mn.update_column(Some(&c), 4).unwrap();
        assert_eq!(mn.evaluate(), Value::Int64(-2));
        let mut mx = max(col("x")).create_accumulator();
        mx.update_column(Some(&c), 4).unwrap();
        assert_eq!(mx.evaluate(), Value::Int64(10));
        let mut av = avg(col("x")).create_accumulator();
        av.update_column(Some(&c), 4).unwrap();
        assert_eq!(av.evaluate(), Value::Float64(13.0 / 3.0));
    }

    #[test]
    fn empty_input_yields_null_or_zero() {
        assert_eq!(count_star().create_accumulator().evaluate(), Value::Int64(0));
        assert_eq!(sum(col("x")).create_accumulator().evaluate(), Value::Null);
        assert_eq!(min(col("x")).create_accumulator().evaluate(), Value::Null);
        assert_eq!(avg(col("x")).create_accumulator().evaluate(), Value::Null);
    }

    #[test]
    fn merge_equals_single_pass() {
        // Split input across two accumulators, merge, compare with a
        // single-pass accumulator — the property the incremental engine
        // relies on.
        let all = int_column(&[Some(1), Some(2), None, Some(4), Some(5)]);
        let left = int_column(&[Some(1), Some(2)]);
        let right = int_column(&[None, Some(4), Some(5)]);
        for agg in [sum(col("x")), min(col("x")), max(col("x")), avg(col("x")), count(col("x"))] {
            let mut single = agg.create_accumulator();
            single.update_column(Some(&all), 5).unwrap();
            let mut a = agg.create_accumulator();
            a.update_column(Some(&left), 2).unwrap();
            let mut b = agg.create_accumulator();
            b.update_column(Some(&right), 3).unwrap();
            a.merge(&b.state()).unwrap();
            assert_eq!(a.evaluate(), single.evaluate(), "{}", agg.output_name());
        }
    }

    #[test]
    fn state_round_trip() {
        let c = int_column(&[Some(3), Some(9)]);
        for agg in [sum(col("x")), avg(col("x")), count_star()] {
            let mut acc = agg.create_accumulator();
            acc.update_column(Some(&c), 2).unwrap();
            let restored = agg.accumulator_from_state(&acc.state()).unwrap();
            assert_eq!(restored.evaluate(), acc.evaluate(), "{}", agg.output_name());
        }
    }

    #[test]
    fn scalar_and_vector_updates_agree() {
        let vals = [Some(2i64), None, Some(7), Some(-1)];
        let c = int_column(&vals);
        for agg in [sum(col("x")), min(col("x")), max(col("x")), avg(col("x")), count(col("x"))] {
            let mut vectored = agg.create_accumulator();
            vectored.update_column(Some(&c), 4).unwrap();
            let mut scalar = agg.create_accumulator();
            for v in &vals {
                scalar.update_value(&Value::from(*v)).unwrap();
            }
            assert_eq!(scalar.evaluate(), vectored.evaluate(), "{}", agg.output_name());
        }
    }

    #[test]
    fn result_types() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        assert_eq!(count_star().result_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(sum(col("x")).result_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(avg(col("x")).result_type(&schema).unwrap(), DataType::Float64);
        assert_eq!(min(col("s")).result_type(&schema).unwrap(), DataType::Utf8);
        assert!(sum(col("s")).result_type(&schema).is_err());
        assert!(avg(col("s")).result_type(&schema).is_err());
    }

    #[test]
    fn min_max_work_on_strings_and_floats() {
        let c = Column::from_values(
            DataType::Utf8,
            &[Value::str("pear"), Value::str("apple"), Value::Null],
        )
        .unwrap();
        let mut mn = min(col("s")).create_accumulator();
        mn.update_column(Some(&c), 3).unwrap();
        assert_eq!(mn.evaluate(), Value::str("apple"));
        let f = Column::from_values(
            DataType::Float64,
            &[Value::Float64(1.5), Value::Float64(-0.5)],
        )
        .unwrap();
        let mut mx = max(col("f")).create_accumulator();
        mx.update_column(Some(&f), 2).unwrap();
        assert_eq!(mx.evaluate(), Value::Float64(1.5));
    }

    #[test]
    fn merge_rejects_malformed_state() {
        let mut acc = avg(col("x")).create_accumulator();
        assert!(acc.merge(&row![1i64]).is_err());
        let mut acc = count_star().create_accumulator();
        assert!(acc.merge(&Row::empty()).is_err());
    }
}
