//! Vectorized compute kernels.
//!
//! Each kernel is a tight loop over the typed value vectors of
//! [`TypedColumn`]s, with validity handled outside the inner arithmetic
//! where possible. These loops are what stands in for Spark's generated
//! bytecode (§5.3): the evaluator dispatches *once per batch*, not once
//! per record.

use std::sync::Arc;

use ss_common::bitmap::Bitmap;
use ss_common::column::{Column, TypedColumn};
use ss_common::{DataType, Result, SsError};

use crate::expr::BinaryOp;

/// Combined validity of two columns (`None` = all valid).
fn combine_validity<T: Clone, U: Clone>(
    a: &TypedColumn<T>,
    b: &TypedColumn<U>,
) -> Option<Bitmap> {
    match (a.validity(), b.validity()) {
        (None, None) => None,
        (Some(v), None) | (None, Some(v)) => Some(v.clone()),
        (Some(va), Some(vb)) => Some(va.and(vb)),
    }
}

/// Element-wise binary kernel over raw values; `f` returning `None`
/// produces NULL (e.g. division by zero). Slots already NULL in either
/// input stay NULL.
fn binary_map<T, U, V, F>(
    a: &TypedColumn<T>,
    b: &TypedColumn<U>,
    placeholder: V,
    f: F,
) -> Result<TypedColumn<V>>
where
    T: Copy,
    U: Copy,
    V: Clone,
    F: Fn(T, U) -> Option<V>,
{
    if a.len() != b.len() {
        return Err(SsError::Internal(format!(
            "kernel length mismatch: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let validity = combine_validity(a, b);
    let av = a.values();
    let bv = b.values();
    let mut out: Vec<Option<V>> = Vec::with_capacity(a.len());
    match &validity {
        None => {
            for i in 0..av.len() {
                out.push(f(av[i], bv[i]));
            }
        }
        Some(valid) => {
            for i in 0..av.len() {
                if valid.get(i) {
                    out.push(f(av[i], bv[i]));
                } else {
                    out.push(None);
                }
            }
        }
    }
    Ok(TypedColumn::from_options(out, placeholder))
}

/// Integer arithmetic. `Divide` yields DOUBLE (Spark `/` semantics);
/// `Modulo`/`Divide` by zero yield NULL. Overflow wraps (release-build
/// semantics), matching the JVM's primitive arithmetic.
pub fn arith_i64(op: BinaryOp, a: &TypedColumn<i64>, b: &TypedColumn<i64>) -> Result<Column> {
    Ok(match op {
        BinaryOp::Plus => Column::Int64(binary_map(a, b, 0, |x, y| Some(x.wrapping_add(y)))?),
        BinaryOp::Minus => Column::Int64(binary_map(a, b, 0, |x, y| Some(x.wrapping_sub(y)))?),
        BinaryOp::Multiply => Column::Int64(binary_map(a, b, 0, |x, y| Some(x.wrapping_mul(y)))?),
        BinaryOp::Modulo => Column::Int64(binary_map(a, b, 0, |x, y| {
            (y != 0).then(|| x.wrapping_rem(y))
        })?),
        BinaryOp::Divide => Column::Float64(binary_map(a, b, 0.0, |x, y| {
            (y != 0).then(|| x as f64 / y as f64)
        })?),
        other => {
            return Err(SsError::Internal(format!(
                "arith_i64 got non-arithmetic op {other:?}"
            )))
        }
    })
}

/// Float arithmetic. Division by zero follows IEEE (inf/NaN), as Spark
/// does for doubles.
pub fn arith_f64(op: BinaryOp, a: &TypedColumn<f64>, b: &TypedColumn<f64>) -> Result<Column> {
    let f: fn(f64, f64) -> Option<f64> = match op {
        BinaryOp::Plus => |x, y| Some(x + y),
        BinaryOp::Minus => |x, y| Some(x - y),
        BinaryOp::Multiply => |x, y| Some(x * y),
        BinaryOp::Divide => |x, y| Some(x / y),
        BinaryOp::Modulo => |x, y| Some(x % y),
        other => {
            return Err(SsError::Internal(format!(
                "arith_f64 got non-arithmetic op {other:?}"
            )))
        }
    };
    Ok(Column::Float64(binary_map(a, b, 0.0, f)?))
}

/// Timestamp arithmetic: ts ± integer-microseconds stays a timestamp.
pub fn arith_timestamp(
    op: BinaryOp,
    a: &TypedColumn<i64>,
    b: &TypedColumn<i64>,
) -> Result<Column> {
    match op {
        BinaryOp::Plus => Ok(Column::Timestamp(binary_map(a, b, 0, |x, y| {
            Some(x.wrapping_add(y))
        })?)),
        BinaryOp::Minus => Ok(Column::Timestamp(binary_map(a, b, 0, |x, y| {
            Some(x.wrapping_sub(y))
        })?)),
        other => Err(SsError::Type(format!(
            "timestamp arithmetic supports only + and -, got {}",
            other.symbol()
        ))),
    }
}

macro_rules! cmp_fn {
    ($op:expr) => {{
        fn check(o: std::cmp::Ordering, op: BinaryOp) -> bool {
            use std::cmp::Ordering::*;
            match op {
                BinaryOp::Eq => o == Equal,
                BinaryOp::NotEq => o != Equal,
                BinaryOp::Lt => o == Less,
                BinaryOp::LtEq => o != Greater,
                BinaryOp::Gt => o == Greater,
                BinaryOp::GtEq => o != Less,
                _ => unreachable!("non-comparison op"),
            }
        }
        move |o| check(o, $op)
    }};
}

/// Integer/timestamp comparison.
pub fn cmp_i64(op: BinaryOp, a: &TypedColumn<i64>, b: &TypedColumn<i64>) -> Result<Column> {
    let check = cmp_fn!(op);
    Ok(Column::Boolean(binary_map(a, b, false, |x, y| {
        Some(check(x.cmp(&y)))
    })?))
}

/// Float comparison (total order, NaN == NaN — consistent with the
/// grouping semantics in `Value::total_cmp`).
pub fn cmp_f64(op: BinaryOp, a: &TypedColumn<f64>, b: &TypedColumn<f64>) -> Result<Column> {
    let check = cmp_fn!(op);
    Ok(Column::Boolean(binary_map(a, b, false, |x, y| {
        Some(check(x.total_cmp(&y)))
    })?))
}

/// Boolean comparison.
pub fn cmp_bool(op: BinaryOp, a: &TypedColumn<bool>, b: &TypedColumn<bool>) -> Result<Column> {
    let check = cmp_fn!(op);
    Ok(Column::Boolean(binary_map(a, b, false, |x, y| {
        Some(check(x.cmp(&y)))
    })?))
}

/// String comparison. Not `binary_map` (strings aren't `Copy`); same
/// validity handling, comparing by `&str`.
pub fn cmp_utf8(
    op: BinaryOp,
    a: &TypedColumn<Arc<str>>,
    b: &TypedColumn<Arc<str>>,
) -> Result<Column> {
    if a.len() != b.len() {
        return Err(SsError::Internal("cmp_utf8 length mismatch".into()));
    }
    let check = cmp_fn!(op);
    let validity = combine_validity(a, b);
    let av = a.values();
    let bv = b.values();
    let mut out = Vec::with_capacity(a.len());
    for i in 0..av.len() {
        if validity.as_ref().is_none_or(|v| v.get(i)) {
            out.push(Some(check(av[i].as_ref().cmp(bv[i].as_ref()))));
        } else {
            out.push(None);
        }
    }
    Ok(Column::Boolean(TypedColumn::from_options(out, false)))
}

/// Column-vs-scalar integer/timestamp comparison — the fast path for
/// `col <op> literal` predicates, avoiding materializing the literal
/// as a column.
pub fn cmp_i64_scalar(op: BinaryOp, a: &TypedColumn<i64>, s: i64) -> Result<Column> {
    let check = cmp_fn!(op);
    let av = a.values();
    match a.validity() {
        None => {
            let out: Vec<bool> = av.iter().map(|&x| check(x.cmp(&s))).collect();
            Ok(Column::Boolean(TypedColumn::from_values(out)))
        }
        Some(valid) => {
            let out: Vec<Option<bool>> = av
                .iter()
                .enumerate()
                .map(|(i, &x)| valid.get(i).then(|| check(x.cmp(&s))))
                .collect();
            Ok(Column::Boolean(TypedColumn::from_options(out, false)))
        }
    }
}

/// Column-vs-scalar float comparison (total order).
pub fn cmp_f64_scalar(op: BinaryOp, a: &TypedColumn<f64>, s: f64) -> Result<Column> {
    let check = cmp_fn!(op);
    let av = a.values();
    match a.validity() {
        None => {
            let out: Vec<bool> = av.iter().map(|&x| check(x.total_cmp(&s))).collect();
            Ok(Column::Boolean(TypedColumn::from_values(out)))
        }
        Some(valid) => {
            let out: Vec<Option<bool>> = av
                .iter()
                .enumerate()
                .map(|(i, &x)| valid.get(i).then(|| check(x.total_cmp(&s))))
                .collect();
            Ok(Column::Boolean(TypedColumn::from_options(out, false)))
        }
    }
}

/// Column-vs-scalar string comparison. For equality the inner loop is
/// a length check plus a memcmp — the shape a code generator would
/// emit for this predicate.
pub fn cmp_utf8_scalar(op: BinaryOp, a: &TypedColumn<Arc<str>>, s: &str) -> Result<Column> {
    let av = a.values();
    let all_valid = a.validity().is_none();
    // Specialize the dominant cases.
    let run = |f: &mut dyn FnMut(&str) -> bool| -> Column {
        if all_valid {
            let out: Vec<bool> = av.iter().map(|x| f(x.as_ref())).collect();
            Column::Boolean(TypedColumn::from_values(out))
        } else {
            let valid = a.validity().expect("checked");
            let out: Vec<Option<bool>> = av
                .iter()
                .enumerate()
                .map(|(i, x)| valid.get(i).then(|| f(x.as_ref())))
                .collect();
            Column::Boolean(TypedColumn::from_options(out, false))
        }
    };
    Ok(match op {
        BinaryOp::Eq => run(&mut |x| x == s),
        BinaryOp::NotEq => run(&mut |x| x != s),
        BinaryOp::Lt => run(&mut |x| x < s),
        BinaryOp::LtEq => run(&mut |x| x <= s),
        BinaryOp::Gt => run(&mut |x| x > s),
        BinaryOp::GtEq => run(&mut |x| x >= s),
        other => {
            return Err(SsError::Internal(format!(
                "cmp_utf8_scalar got non-comparison op {other:?}"
            )))
        }
    })
}

/// Kleene three-valued AND: `false AND NULL = false`, `true AND NULL =
/// NULL` (SQL semantics).
pub fn and_kleene(a: &TypedColumn<bool>, b: &TypedColumn<bool>) -> Result<Column> {
    if a.len() != b.len() {
        return Err(SsError::Internal("and length mismatch".into()));
    }
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let x = a.get(i).copied();
        let y = b.get(i).copied();
        out.push(match (x, y) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        });
    }
    Ok(Column::Boolean(TypedColumn::from_options(out, false)))
}

/// Kleene three-valued OR: `true OR NULL = true`.
pub fn or_kleene(a: &TypedColumn<bool>, b: &TypedColumn<bool>) -> Result<Column> {
    if a.len() != b.len() {
        return Err(SsError::Internal("or length mismatch".into()));
    }
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let x = a.get(i).copied();
        let y = b.get(i).copied();
        out.push(match (x, y) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        });
    }
    Ok(Column::Boolean(TypedColumn::from_options(out, false)))
}

/// Three-valued NOT: `NOT NULL = NULL`.
pub fn not_kernel(a: &TypedColumn<bool>) -> Column {
    let out: Vec<Option<bool>> = (0..a.len()).map(|i| a.get(i).map(|b| !b)).collect();
    Column::Boolean(TypedColumn::from_options(out, false))
}

/// `IS NULL` / `IS NOT NULL` (never NULL themselves).
pub fn is_null_kernel(c: &Column, negate: bool) -> Column {
    let out: Vec<bool> = (0..c.len()).map(|i| c.is_valid(i) == negate).collect();
    Column::Boolean(TypedColumn::from_values(out))
}

/// Cast a whole column. Fast paths for numeric/timestamp conversions;
/// falls back to per-value casts for string parsing.
pub fn cast_column(c: &Column, to: DataType) -> Result<Column> {
    if c.data_type() == to {
        return Ok(c.clone());
    }
    match (c, to) {
        (Column::Int64(a), DataType::Float64) => {
            let vals: Vec<f64> = a.values().iter().map(|&v| v as f64).collect();
            Ok(Column::Float64(with_validity(vals, a.validity())))
        }
        (Column::Float64(a), DataType::Int64) => {
            let vals: Vec<i64> = a.values().iter().map(|&v| v as i64).collect();
            Ok(Column::Int64(with_validity(vals, a.validity())))
        }
        (Column::Int64(a), DataType::Timestamp) => {
            Ok(Column::Timestamp(with_validity(a.values().to_vec(), a.validity())))
        }
        (Column::Timestamp(a), DataType::Int64) => {
            Ok(Column::Int64(with_validity(a.values().to_vec(), a.validity())))
        }
        _ => {
            // Generic slow path through Value; correct for every
            // supported pair, used for string casts.
            let mut b = Column::builder(to);
            for i in 0..c.len() {
                b.push(&c.value(i).cast_to(to)?)?;
            }
            Ok(b.finish())
        }
    }
}

fn with_validity<T: Clone>(vals: Vec<T>, validity: Option<&Bitmap>) -> TypedColumn<T> {
    match validity {
        None => TypedColumn::from_values(vals),
        Some(v) => {
            let opts: Vec<Option<T>> = vals
                .iter()
                .enumerate()
                .map(|(i, x)| v.get(i).then(|| x.clone()))
                .collect();
            // Placeholder only fills NULL slots; pick the first value or
            // default-construct via clone of an existing one is not
            // possible generically, so reuse a valid slot or the raw
            // value (slot content is ignored when invalid).
            let placeholder = vals
                .first()
                .cloned()
                .expect("with_validity on non-empty column");
            TypedColumn::from_options(opts, placeholder)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::Value;

    fn ints(v: Vec<Option<i64>>) -> TypedColumn<i64> {
        TypedColumn::from_options(v, 0)
    }

    #[test]
    fn int_arithmetic_with_nulls() {
        let a = ints(vec![Some(10), None, Some(7)]);
        let b = ints(vec![Some(3), Some(1), Some(0)]);
        let sum = arith_i64(BinaryOp::Plus, &a, &b).unwrap();
        assert_eq!(
            sum.to_values(),
            vec![Value::Int64(13), Value::Null, Value::Int64(7)]
        );
        // Division yields double; /0 and %0 yield NULL.
        let div = arith_i64(BinaryOp::Divide, &a, &b).unwrap();
        assert_eq!(div.value(0), Value::Float64(10.0 / 3.0));
        assert_eq!(div.value(2), Value::Null);
        let md = arith_i64(BinaryOp::Modulo, &a, &b).unwrap();
        assert_eq!(md.value(0), Value::Int64(1));
        assert_eq!(md.value(2), Value::Null);
    }

    #[test]
    fn float_arithmetic_ieee() {
        let a = TypedColumn::from_values(vec![1.0, -2.0]);
        let b = TypedColumn::from_values(vec![0.0, 4.0]);
        let div = arith_f64(BinaryOp::Divide, &a, &b).unwrap();
        assert_eq!(div.value(0), Value::Float64(f64::INFINITY));
        assert_eq!(div.value(1), Value::Float64(-0.5));
    }

    #[test]
    fn comparisons_propagate_nulls() {
        let a = ints(vec![Some(1), None, Some(3)]);
        let b = ints(vec![Some(2), Some(2), Some(2)]);
        let lt = cmp_i64(BinaryOp::Lt, &a, &b).unwrap();
        assert_eq!(
            lt.to_values(),
            vec![Value::Boolean(true), Value::Null, Value::Boolean(false)]
        );
        let ne = cmp_i64(BinaryOp::NotEq, &a, &b).unwrap();
        assert_eq!(ne.value(2), Value::Boolean(true));
    }

    #[test]
    fn string_comparison() {
        let a = TypedColumn::from_values(vec![Arc::from("view"), Arc::from("click")]);
        let b = TypedColumn::from_values(vec![Arc::from("view"), Arc::from("view")]);
        let eq = cmp_utf8(BinaryOp::Eq, &a, &b).unwrap();
        assert_eq!(eq.to_values(), vec![Value::Boolean(true), Value::Boolean(false)]);
        let lt = cmp_utf8(BinaryOp::Lt, &a, &b).unwrap();
        assert_eq!(lt.value(1), Value::Boolean(true)); // "click" < "view"
    }

    #[test]
    fn kleene_logic() {
        let t = Some(true);
        let f = Some(false);
        let n: Option<bool> = None;
        let a = TypedColumn::from_options(vec![t, t, t, f, f, n, n], false);
        let b = TypedColumn::from_options(vec![t, f, n, f, n, n, t], false);
        let and = and_kleene(&a, &b).unwrap();
        assert_eq!(
            and.to_values(),
            vec![
                Value::Boolean(true),
                Value::Boolean(false),
                Value::Null,
                Value::Boolean(false),
                Value::Boolean(false),
                Value::Null,
                Value::Null,
            ]
        );
        let or = or_kleene(&a, &b).unwrap();
        assert_eq!(
            or.to_values(),
            vec![
                Value::Boolean(true),
                Value::Boolean(true),
                Value::Boolean(true),
                Value::Boolean(false),
                Value::Null,
                Value::Null,
                Value::Boolean(true),
            ]
        );
    }

    #[test]
    fn not_and_is_null() {
        let a = TypedColumn::from_options(vec![Some(true), None, Some(false)], false);
        assert_eq!(
            not_kernel(&a).to_values(),
            vec![Value::Boolean(false), Value::Null, Value::Boolean(true)]
        );
        let c = Column::Boolean(a);
        assert_eq!(
            is_null_kernel(&c, false).to_values(),
            vec![Value::Boolean(false), Value::Boolean(true), Value::Boolean(false)]
        );
        assert_eq!(
            is_null_kernel(&c, true).to_values(),
            vec![Value::Boolean(true), Value::Boolean(false), Value::Boolean(true)]
        );
    }

    #[test]
    fn casts_fast_and_slow_path() {
        let c = Column::Int64(ints(vec![Some(1), None]));
        let f = cast_column(&c, DataType::Float64).unwrap();
        assert_eq!(f.to_values(), vec![Value::Float64(1.0), Value::Null]);
        let ts = cast_column(&c, DataType::Timestamp).unwrap();
        assert_eq!(ts.value(0), Value::Timestamp(1));
        let s = Column::from_values(DataType::Utf8, &[Value::str("42")]).unwrap();
        let i = cast_column(&s, DataType::Int64).unwrap();
        assert_eq!(i.value(0), Value::Int64(42));
        let bad = Column::from_values(DataType::Utf8, &[Value::str("nope")]).unwrap();
        assert!(cast_column(&bad, DataType::Int64).is_err());
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = TypedColumn::from_values(vec![1_000_000i64]);
        let d = TypedColumn::from_values(vec![500_000i64]);
        let r = arith_timestamp(BinaryOp::Plus, &t, &d).unwrap();
        assert_eq!(r.value(0), Value::Timestamp(1_500_000));
        assert!(arith_timestamp(BinaryOp::Multiply, &t, &d).is_err());
    }
}
