//! Free-function builders mirroring Spark's DataFrame DSL.
//!
//! ```
//! use ss_expr::{col, lit, window};
//! // data.where($"state" === "CA").groupBy(window($"time", "30s")) ...
//! let pred = col("state").eq(lit("CA"));
//! let w = window(col("time"), "30s").unwrap();
//! ```

use ss_common::time::parse_duration;
use ss_common::{Result, Value};

use crate::agg::{AggregateExpr, AggregateFunction};
use crate::expr::Expr;

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// A literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// A built-in function call, e.g. `func("to_int", vec![col("raw")])`.
pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
    Expr::Function {
        name: name.into(),
        args,
    }
}

/// A tumbling event-time window of the given duration, e.g.
/// `window(col("time"), "10 seconds")`.
pub fn window(time: Expr, size: &str) -> Result<Expr> {
    let size_us = parse_duration(size)?;
    Ok(Expr::Window {
        time: Box::new(time),
        size_us,
        slide_us: size_us,
    })
}

/// A sliding event-time window, e.g.
/// `window_sliding(col("time"), "1 hour", "5 minutes")` — the paper's
/// "1-hour sliding windows advancing every 5 minutes" example (§4.1).
pub fn window_sliding(time: Expr, size: &str, slide: &str) -> Result<Expr> {
    let size_us = parse_duration(size)?;
    let slide_us = parse_duration(slide)?;
    if slide_us > size_us || slide_us <= 0 {
        return Err(ss_common::SsError::Plan(format!(
            "window slide ({slide}) must be positive and <= size ({size})"
        )));
    }
    Ok(Expr::Window {
        time: Box::new(time),
        size_us,
        slide_us,
    })
}

/// `count(expr)` — counts non-NULL values.
pub fn count(e: Expr) -> AggregateExpr {
    AggregateExpr::new(AggregateFunction::Count, Some(e))
}

/// `count(*)` — counts rows.
pub fn count_star() -> AggregateExpr {
    AggregateExpr::new(AggregateFunction::Count, None)
}

/// `sum(expr)`.
pub fn sum(e: Expr) -> AggregateExpr {
    AggregateExpr::new(AggregateFunction::Sum, Some(e))
}

/// `min(expr)`.
pub fn min(e: Expr) -> AggregateExpr {
    AggregateExpr::new(AggregateFunction::Min, Some(e))
}

/// `max(expr)`.
pub fn max(e: Expr) -> AggregateExpr {
    AggregateExpr::new(AggregateFunction::Max, Some(e))
}

/// `avg(expr)`.
pub fn avg(e: Expr) -> AggregateExpr {
    AggregateExpr::new(AggregateFunction::Avg, Some(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_common::time::{minutes, secs};

    #[test]
    fn window_builders_parse_durations() {
        let w = window(col("t"), "10 seconds").unwrap();
        match w {
            Expr::Window {
                size_us, slide_us, ..
            } => {
                assert_eq!(size_us, secs(10));
                assert_eq!(slide_us, secs(10));
            }
            _ => panic!("expected window"),
        }
        let w = window_sliding(col("t"), "1 hour", "5 minutes").unwrap();
        match w {
            Expr::Window {
                size_us, slide_us, ..
            } => {
                assert_eq!(size_us, minutes(60));
                assert_eq!(slide_us, minutes(5));
            }
            _ => panic!("expected window"),
        }
    }

    #[test]
    fn sliding_larger_than_size_rejected() {
        assert!(window_sliding(col("t"), "5 seconds", "10 seconds").is_err());
        assert!(window(col("t"), "banana").is_err());
    }

    #[test]
    fn agg_builders_name_themselves() {
        assert_eq!(count_star().output_name(), "count(*)");
        assert_eq!(sum(col("x")).output_name(), "sum(x)");
        assert_eq!(avg(col("x")).alias("a").output_name(), "a");
    }
}
