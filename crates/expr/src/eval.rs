//! Expression evaluation.
//!
//! Two entry points:
//!
//! * [`evaluate`] — vectorized: expression × [`RecordBatch`] → [`Column`].
//!   Used by the batch/microbatch engines. Dispatch happens once per
//!   batch; inner loops are the typed kernels in [`crate::kernels`].
//! * [`evaluate_row`] — scalar: expression × [`Row`] → [`Value`]. Used by
//!   the continuous-processing engine's per-record pipeline (§6.3), where
//!   batching would defeat the latency goal.
//!
//! Both implement the same SQL semantics (Kleene logic, NULL
//! propagation); a property test in this module asserts they agree.

use std::sync::Arc;

use ss_common::column::TypedColumn;
use ss_common::time::window_start;
use ss_common::{Column, DataType, RecordBatch, Result, Row, Schema, SsError, Value};

use crate::expr::{BinaryOp, Expr};
use crate::kernels;

/// Evaluate `expr` against every row of `batch`, producing a column of
/// `batch.num_rows()` values.
pub fn evaluate(expr: &Expr, batch: &RecordBatch) -> Result<Column> {
    match expr {
        Expr::Column(name) => Ok(batch.column_by_name(name)?.clone()),
        Expr::Literal(v) => {
            let ty = v.data_type().unwrap_or(DataType::Utf8);
            Column::repeat(v, ty, batch.num_rows())
        }
        Expr::BinaryOp { left, op, right } => {
            // Fast path for `expr <cmp> literal`: compare against the
            // scalar directly instead of materializing a repeated
            // literal column (the shape codegen would emit, §5.3).
            if op.is_comparison() {
                if let Expr::Literal(v) = right.as_ref() {
                    if let Some(out) = scalar_compare(*op, left, v, batch)? {
                        return Ok(out);
                    }
                }
                if let Expr::Literal(v) = left.as_ref() {
                    if let Some(out) = scalar_compare(op.flip(), right, v, batch)? {
                        return Ok(out);
                    }
                }
            }
            let l = evaluate(left, batch)?;
            let r = evaluate(right, batch)?;
            evaluate_binary(*op, &l, &r)
        }
        Expr::Not(e) => {
            let c = evaluate(e, batch)?;
            Ok(kernels::not_kernel(c.as_bool()?))
        }
        Expr::IsNull(e) => Ok(kernels::is_null_kernel(&evaluate(e, batch)?, false)),
        Expr::IsNotNull(e) => Ok(kernels::is_null_kernel(&evaluate(e, batch)?, true)),
        Expr::Cast { expr, to } => kernels::cast_column(&evaluate(expr, batch)?, *to),
        Expr::Alias { expr, .. } => evaluate(expr, batch),
        Expr::Case {
            branches,
            else_expr,
        } => evaluate_case(branches, else_expr.as_deref(), batch),
        Expr::Window {
            time,
            size_us,
            slide_us,
        } => {
            if slide_us != size_us {
                return Err(SsError::Plan(
                    "sliding window() is only valid as a grouping key, \
                     where the aggregate expands rows into windows"
                        .into(),
                ));
            }
            let t = evaluate(time, batch)?;
            let tc = t.as_i64()?;
            let starts: Vec<i64> = tc
                .values()
                .iter()
                .map(|&ts| window_start(ts, *size_us, 0))
                .collect();
            let col = match tc.validity() {
                None => TypedColumn::from_values(starts),
                Some(v) => TypedColumn::from_options(
                    starts
                        .iter()
                        .enumerate()
                        .map(|(i, &s)| v.get(i).then_some(s))
                        .collect(),
                    0,
                ),
            };
            Ok(Column::Timestamp(col))
        }
        Expr::Function { name, args } => {
            let cols: Vec<Column> = args
                .iter()
                .map(|a| evaluate(a, batch))
                .collect::<Result<_>>()?;
            evaluate_builtin(name, &cols)
        }
        Expr::Udf { udf, args } => {
            let cols: Vec<Column> = args
                .iter()
                .map(|a| evaluate(a, batch))
                .collect::<Result<_>>()?;
            let out = (udf.func)(&cols)?;
            if out.len() != batch.num_rows() {
                return Err(SsError::Execution(format!(
                    "UDF `{}` returned {} rows for a {}-row batch",
                    udf.name,
                    out.len(),
                    batch.num_rows()
                )));
            }
            Ok(out)
        }
    }
}

/// Evaluate a predicate to a selection mask (NULL → false).
pub fn evaluate_to_mask(expr: &Expr, batch: &RecordBatch) -> Result<Vec<bool>> {
    evaluate(expr, batch)?.to_mask()
}

/// Column-vs-literal comparison fast path. Returns `None` (fall back
/// to the generic path) when types don't line up exactly.
fn scalar_compare(
    op: BinaryOp,
    expr: &Expr,
    lit: &Value,
    batch: &RecordBatch,
) -> Result<Option<Column>> {
    if lit.is_null() {
        // NULL comparisons are all-NULL; let the generic path handle it.
        return Ok(None);
    }
    // Bare column references borrow the batch's column directly — no
    // copy of the column data just to compare it.
    let owned;
    let col: &Column = match expr {
        Expr::Column(name) => batch.column_by_name(name)?,
        _ => {
            owned = evaluate(expr, batch)?;
            &owned
        }
    };
    Ok(match (col, lit) {
        (Column::Int64(c) | Column::Timestamp(c), Value::Int64(s) | Value::Timestamp(s)) => {
            Some(kernels::cmp_i64_scalar(op, c, *s)?)
        }
        (Column::Float64(c), Value::Float64(s)) => Some(kernels::cmp_f64_scalar(op, c, *s)?),
        (Column::Float64(c), Value::Int64(s)) => {
            Some(kernels::cmp_f64_scalar(op, c, *s as f64)?)
        }
        (Column::Utf8(c), Value::Utf8(s)) => Some(kernels::cmp_utf8_scalar(op, c, s)?),
        _ => None,
    })
}

fn evaluate_binary(op: BinaryOp, l: &Column, r: &Column) -> Result<Column> {
    if op.is_logical() {
        let (a, b) = (l.as_bool()?, r.as_bool()?);
        return match op {
            BinaryOp::And => kernels::and_kleene(a, b),
            BinaryOp::Or => kernels::or_kleene(a, b),
            _ => unreachable!(),
        };
    }
    // Coerce both sides to the common type.
    let common = l.data_type().common_type(r.data_type())?;
    let l = kernels::cast_column(l, common)?;
    let r = kernels::cast_column(r, common)?;
    if op.is_comparison() {
        match common {
            DataType::Int64 | DataType::Timestamp => {
                kernels::cmp_i64(op, l.as_i64()?, r.as_i64()?)
            }
            DataType::Float64 => kernels::cmp_f64(op, l.as_f64()?, r.as_f64()?),
            DataType::Utf8 => kernels::cmp_utf8(op, l.as_utf8()?, r.as_utf8()?),
            DataType::Boolean => kernels::cmp_bool(op, l.as_bool()?, r.as_bool()?),
        }
    } else {
        match common {
            DataType::Int64 => kernels::arith_i64(op, l.as_i64()?, r.as_i64()?),
            DataType::Float64 => kernels::arith_f64(op, l.as_f64()?, r.as_f64()?),
            DataType::Timestamp => kernels::arith_timestamp(op, l.as_i64()?, r.as_i64()?),
            other => Err(SsError::Type(format!(
                "arithmetic not supported on {other}"
            ))),
        }
    }
}

fn evaluate_case(
    branches: &[(Expr, Expr)],
    else_expr: Option<&Expr>,
    batch: &RecordBatch,
) -> Result<Column> {
    let masks: Vec<Vec<bool>> = branches
        .iter()
        .map(|(c, _)| evaluate_to_mask(c, batch))
        .collect::<Result<_>>()?;
    let values: Vec<Column> = branches
        .iter()
        .map(|(_, v)| evaluate(v, batch))
        .collect::<Result<_>>()?;
    let else_col = else_expr.map(|e| evaluate(e, batch)).transpose()?;
    // Output type: common type across branch values (and ELSE).
    let mut ty = values
        .first()
        .map(|c| c.data_type())
        .or(else_col.as_ref().map(|c| c.data_type()))
        .ok_or_else(|| SsError::Type("CASE with no branches".into()))?;
    for v in values.iter().skip(1) {
        ty = ty.common_type(v.data_type())?;
    }
    if let Some(e) = &else_col {
        ty = ty.common_type(e.data_type())?;
    }
    let mut b = Column::builder(ty);
    'rows: for i in 0..batch.num_rows() {
        for (bi, mask) in masks.iter().enumerate() {
            if mask[i] {
                b.push(&values[bi].value(i).cast_to(ty)?)?;
                continue 'rows;
            }
        }
        match &else_col {
            Some(e) => b.push(&e.value(i).cast_to(ty)?)?,
            None => b.push_null(),
        }
    }
    Ok(b.finish())
}

fn evaluate_builtin(name: &str, cols: &[Column]) -> Result<Column> {
    match name {
        "lower" | "upper" => {
            let c = cols[0].as_utf8()?;
            let out: Vec<Option<Arc<str>>> = c
                .iter()
                .map(|s| {
                    s.map(|s| {
                        let t = if name == "lower" {
                            s.to_lowercase()
                        } else {
                            s.to_uppercase()
                        };
                        Arc::from(t.as_str())
                    })
                })
                .collect();
            Ok(Column::Utf8(TypedColumn::from_options(out, Arc::from(""))))
        }
        "length" => {
            let c = cols[0].as_utf8()?;
            let out: Vec<Option<i64>> = c
                .iter()
                .map(|s| s.map(|s| s.chars().count() as i64))
                .collect();
            Ok(Column::Int64(TypedColumn::from_options(out, 0)))
        }
        "abs" => match &cols[0] {
            Column::Int64(c) => {
                let out: Vec<Option<i64>> =
                    c.iter().map(|v| v.map(|x| x.wrapping_abs())).collect();
                Ok(Column::Int64(TypedColumn::from_options(out, 0)))
            }
            Column::Float64(c) => {
                let out: Vec<Option<f64>> = c.iter().map(|v| v.map(|x| x.abs())).collect();
                Ok(Column::Float64(TypedColumn::from_options(out, 0.0)))
            }
            other => Err(SsError::Type(format!(
                "abs() requires a numeric column, got {}",
                other.data_type()
            ))),
        },
        "coalesce" => {
            let len = cols[0].len();
            let ty = cols
                .iter()
                .map(|c| c.data_type())
                .try_fold(cols[0].data_type(), |a, b| a.common_type(b))?;
            let mut b = Column::builder(ty);
            'rows: for i in 0..len {
                for c in cols {
                    if c.is_valid(i) {
                        b.push(&c.value(i).cast_to(ty)?)?;
                        continue 'rows;
                    }
                }
                b.push_null();
            }
            Ok(b.finish())
        }
        "concat" => {
            let len = cols[0].len();
            let mut out: Vec<Option<Arc<str>>> = Vec::with_capacity(len);
            'rows: for i in 0..len {
                let mut s = String::new();
                for c in cols {
                    if !c.is_valid(i) {
                        out.push(None);
                        continue 'rows;
                    }
                    s.push_str(&c.value(i).to_string());
                }
                out.push(Some(Arc::from(s.as_str())));
            }
            Ok(Column::Utf8(TypedColumn::from_options(out, Arc::from(""))))
        }
        "to_int" => {
            // Strict parse: unlike CAST (which would yield NULL), a
            // malformed string is a *per-record error* — the canonical
            // poison-record shape the quarantine machinery isolates.
            let c = cols[0].as_utf8()?;
            let out: Vec<Option<i64>> = c
                .iter()
                .map(|s| s.map(|s| parse_strict_int(s)).transpose())
                .collect::<Result<_>>()?;
            Ok(Column::Int64(TypedColumn::from_options(out, 0)))
        }
        "like" => {
            let text = cols[0].as_utf8()?;
            let pattern = cols[1].as_utf8()?;
            // The pattern is almost always one repeated literal:
            // precompile it once for the whole batch.
            let uniform: Option<Vec<char>> = match pattern.values() {
                [] => None,
                [first, rest @ ..] if pattern.validity().is_none() => rest
                    .iter()
                    .all(|p| p == first)
                    .then(|| first.chars().collect()),
                _ => None,
            };
            let out: Vec<Option<bool>> = (0..text.len())
                .map(|i| match (text.get(i), &uniform) {
                    (Some(t), Some(p)) => Some(like_chars(t, p)),
                    (Some(t), None) => pattern.get(i).map(|p| like_match(t, p)),
                    (None, _) => None,
                })
                .collect();
            Ok(Column::Boolean(TypedColumn::from_options(out, false)))
        }
        other => Err(SsError::Type(format!("unknown function `{other}`"))),
    }
}

/// Strict string → INT64 parse backing `to_int()`. The error names the
/// offending value so quarantine metadata (and failure fingerprints)
/// identify the poison record precisely.
fn parse_strict_int(s: &str) -> Result<i64> {
    s.trim().parse::<i64>().map_err(|_| {
        SsError::Type(format!("to_int(): cannot parse `{s}` as INT64"))
    })
}

/// [`evaluate`], with panics converted into [`SsError::Execution`].
///
/// Expression evaluation is the engine's main per-record attack surface
/// for poison data (UDF panics, kernel bugs on pathological values); a
/// panic here should fail the *epoch*, restartably, not kill the worker
/// thread. The stateless operators route through this wrapper.
pub fn evaluate_guarded(expr: &Expr, batch: &RecordBatch) -> Result<Column> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| evaluate(expr, batch)))
        .unwrap_or_else(|p| {
            Err(SsError::Execution(format!(
                "panic during expression eval: {}",
                ss_common::panic_message(p.as_ref())
            )))
        })
}

/// SQL `LIKE` matching: `%` matches any run (including empty), `_`
/// matches exactly one character. Case-sensitive, as in Spark SQL.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    like_chars(text, &p)
}

/// `LIKE` against a precompiled pattern. Iterative two-pointer
/// wildcard matching with backtracking to the most recent `%` —
/// O(len(text) × len(pattern)) worst case, no recursion.
fn like_chars(text: &str, pattern: &[char]) -> bool {
    let t: Vec<char> = text.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    // Position of the last `%` seen, and the text position it is
    // currently assumed to cover up to.
    let (mut star, mut star_ti) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < pattern.len() && (pattern[pi] == '_' || pattern[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < pattern.len() && pattern[pi] == '%' {
            star = pi;
            star_ti = ti;
            pi += 1;
        } else if star != usize::MAX {
            // Grow the run the last `%` absorbs and retry.
            star_ti += 1;
            ti = star_ti;
            pi = star + 1;
        } else {
            return false;
        }
    }
    pattern[pi..].iter().all(|&c| c == '%')
}

/// Scalar evaluation of `expr` against a single row with the given
/// schema. Semantics match [`evaluate`] exactly.
pub fn evaluate_row(expr: &Expr, schema: &Schema, row: &Row) -> Result<Value> {
    match expr {
        Expr::Column(name) => Ok(row.get(schema.index_of(name)?).clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::BinaryOp { left, op, right } => {
            let l = evaluate_row(left, schema, row)?;
            let r = evaluate_row(right, schema, row)?;
            scalar_binary(*op, &l, &r)
        }
        Expr::Not(e) => Ok(match evaluate_row(e, schema, row)?.as_bool()? {
            Some(b) => Value::Boolean(!b),
            None => Value::Null,
        }),
        Expr::IsNull(e) => Ok(Value::Boolean(evaluate_row(e, schema, row)?.is_null())),
        Expr::IsNotNull(e) => Ok(Value::Boolean(!evaluate_row(e, schema, row)?.is_null())),
        Expr::Cast { expr, to } => evaluate_row(expr, schema, row)?.cast_to(*to),
        Expr::Alias { expr, .. } => evaluate_row(expr, schema, row),
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                if evaluate_row(c, schema, row)?.as_bool()? == Some(true) {
                    return evaluate_row(v, schema, row);
                }
            }
            match else_expr {
                Some(e) => evaluate_row(e, schema, row),
                None => Ok(Value::Null),
            }
        }
        Expr::Window {
            time,
            size_us,
            slide_us,
        } => {
            if slide_us != size_us {
                return Err(SsError::Plan(
                    "sliding window() is only valid as a grouping key".into(),
                ));
            }
            match evaluate_row(time, schema, row)?.as_i64()? {
                Some(ts) => Ok(Value::Timestamp(window_start(ts, *size_us, 0))),
                None => Ok(Value::Null),
            }
        }
        Expr::Function { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| evaluate_row(a, schema, row))
                .collect::<Result<_>>()?;
            scalar_builtin(name, &vals)
        }
        Expr::Udf { udf, args } => {
            // Build one-row columns and reuse the vectorized UDF.
            let cols: Vec<Column> = args
                .iter()
                .map(|a| {
                    let v = evaluate_row(a, schema, row)?;
                    let ty = v.data_type().unwrap_or(DataType::Utf8);
                    Column::repeat(&v, ty, 1)
                })
                .collect::<Result<_>>()?;
            let out = (udf.func)(&cols)?;
            Ok(out.value(0))
        }
    }
}

fn scalar_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    if op.is_logical() {
        let (a, b) = (l.as_bool()?, r.as_bool()?);
        return Ok(match (op, a, b) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Boolean(false),
            (And, Some(true), Some(true)) => Value::Boolean(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Boolean(true),
            (Or, Some(false), Some(false)) => Value::Boolean(false),
            _ => Value::Null,
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.total_cmp(r);
        let b = match op {
            Eq => ord.is_eq(),
            NotEq => !ord.is_eq(),
            Lt => ord.is_lt(),
            LtEq => ord.is_le(),
            Gt => ord.is_gt(),
            GtEq => ord.is_ge(),
            _ => unreachable!(),
        };
        return Ok(Value::Boolean(b));
    }
    // Arithmetic: mirror the vectorized kernels' type rules.
    let lt = l.data_type().expect("non-null");
    let rt = r.data_type().expect("non-null");
    let common = lt.common_type(rt)?;
    match common {
        DataType::Int64 => {
            let (x, y) = (l.as_i64()?.unwrap(), r.as_i64()?.unwrap());
            Ok(match op {
                Plus => Value::Int64(x.wrapping_add(y)),
                Minus => Value::Int64(x.wrapping_sub(y)),
                Multiply => Value::Int64(x.wrapping_mul(y)),
                Modulo if y == 0 => Value::Null,
                Modulo => Value::Int64(x.wrapping_rem(y)),
                Divide if y == 0 => Value::Null,
                Divide => Value::Float64(x as f64 / y as f64),
                _ => unreachable!(),
            })
        }
        DataType::Float64 => {
            let (x, y) = (l.as_f64()?.unwrap(), r.as_f64()?.unwrap());
            Ok(Value::Float64(match op {
                Plus => x + y,
                Minus => x - y,
                Multiply => x * y,
                Divide => x / y,
                Modulo => x % y,
                _ => unreachable!(),
            }))
        }
        DataType::Timestamp => {
            let (x, y) = (l.as_i64()?.unwrap(), r.as_i64()?.unwrap());
            Ok(match op {
                Plus => Value::Timestamp(x.wrapping_add(y)),
                Minus => Value::Timestamp(x.wrapping_sub(y)),
                other => {
                    return Err(SsError::Type(format!(
                        "timestamp arithmetic supports only + and -, got {}",
                        other.symbol()
                    )))
                }
            })
        }
        other => Err(SsError::Type(format!("arithmetic not supported on {other}"))),
    }
}

fn scalar_builtin(name: &str, vals: &[Value]) -> Result<Value> {
    match name {
        "lower" | "upper" => match vals[0].as_str()? {
            Some(s) => Ok(Value::str(if name == "lower" {
                s.to_lowercase()
            } else {
                s.to_uppercase()
            })),
            None => Ok(Value::Null),
        },
        "length" => match vals[0].as_str()? {
            Some(s) => Ok(Value::Int64(s.chars().count() as i64)),
            None => Ok(Value::Null),
        },
        "abs" => Ok(match &vals[0] {
            Value::Int64(x) => Value::Int64(x.wrapping_abs()),
            Value::Float64(x) => Value::Float64(x.abs()),
            Value::Null => Value::Null,
            other => return Err(SsError::Type(format!("abs() got {other}"))),
        }),
        "coalesce" => Ok(vals
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "concat" => {
            let mut s = String::new();
            for v in vals {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                s.push_str(&v.to_string());
            }
            Ok(Value::str(s))
        }
        "like" => match (vals[0].as_str()?, vals[1].as_str()?) {
            (Some(t), Some(p)) => Ok(Value::Boolean(like_match(t, p))),
            _ => Ok(Value::Null),
        },
        "to_int" => match vals[0].as_str()? {
            Some(s) => Ok(Value::Int64(parse_strict_int(s)?)),
            None => Ok(Value::Null),
        },
        other => Err(SsError::Type(format!("unknown function `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{col, lit, window};
    use ss_common::{row, Field, Schema};

    fn batch() -> RecordBatch {
        let schema = Schema::of(vec![
            Field::new("a", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("t", DataType::Timestamp),
        ]);
        RecordBatch::from_rows(
            schema,
            &[
                row![1i64, "view", Value::Timestamp(25_000_000)],
                row![2i64, "click", Value::Timestamp(31_000_000)],
                row![Value::Null, "view", Value::Timestamp(5_000_000)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn to_int_parses_and_rejects_per_row() {
        use crate::dsl::func;
        let schema = Schema::of(vec![Field::new("s", DataType::Utf8)]);
        let good = RecordBatch::from_rows(
            schema.clone(),
            &[row![" 42 "], row![Value::Null], row!["-7"]],
        )
        .unwrap();
        let e = func("to_int", vec![col("s")]);
        let c = evaluate(&e, &good).unwrap();
        assert_eq!(c.value(0), Value::Int64(42));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int64(-7));
        // One bad row poisons the batch with a Type error naming it.
        let bad = RecordBatch::from_rows(schema.clone(), &[row!["1"], row!["oops"]]).unwrap();
        let err = evaluate(&e, &bad).unwrap_err();
        assert!(matches!(err, SsError::Type(_)), "{err:?}");
        assert!(err.to_string().contains("`oops`"), "{err}");
        // Scalar path agrees with the vectorized path.
        assert_eq!(
            evaluate_row(&e, &schema, &row!["5"]).unwrap(),
            Value::Int64(5)
        );
        assert!(evaluate_row(&e, &schema, &row!["bad"]).is_err());
        assert_eq!(
            crate::expr::builtin_return_type("to_int", &[DataType::Utf8]).unwrap(),
            DataType::Int64
        );
        assert!(crate::expr::builtin_return_type("to_int", &[DataType::Int64]).is_err());
    }

    #[test]
    fn guarded_eval_converts_panics_to_errors() {
        use crate::expr::ScalarUdf;
        let b = batch();
        // A well-behaved expression passes through untouched.
        let ok = evaluate_guarded(&col("a"), &b).unwrap();
        assert_eq!(ok.value(0), Value::Int64(1));
        // A panicking UDF becomes a restartable Execution error.
        let udf = ScalarUdf {
            name: "boom".into(),
            return_type: DataType::Int64,
            func: Arc::new(|_cols: &[Column]| -> Result<Column> { panic!("poison key") }),
        };
        let e = Expr::Udf {
            udf,
            args: vec![col("a")],
        };
        let err = evaluate_guarded(&e, &b).unwrap_err();
        assert!(matches!(err, SsError::Execution(_)), "{err:?}");
        assert!(err.to_string().contains("poison key"), "{err}");
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = evaluate(&col("a"), &b).unwrap();
        assert_eq!(c.value(0), Value::Int64(1));
        let l = evaluate(&lit(7i64), &b).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.value(2), Value::Int64(7));
    }

    #[test]
    fn predicate_mask_with_null() {
        let b = batch();
        let mask = evaluate_to_mask(&col("a").gt(lit(1i64)), &b).unwrap();
        // NULL > 1 is NULL -> filtered out.
        assert_eq!(mask, vec![false, true, false]);
    }

    #[test]
    fn string_filter_like_yahoo_benchmark() {
        let b = batch();
        let mask = evaluate_to_mask(&col("s").eq(lit("view")), &b).unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn window_buckets_timestamps() {
        let b = batch();
        let w = window(col("t"), "10 seconds").unwrap();
        let c = evaluate(&w, &b).unwrap();
        assert_eq!(c.value(0), Value::Timestamp(20_000_000));
        assert_eq!(c.value(1), Value::Timestamp(30_000_000));
        assert_eq!(c.value(2), Value::Timestamp(0));
    }

    #[test]
    fn sliding_window_in_expression_position_rejected() {
        let b = batch();
        let w = crate::dsl::window_sliding(col("t"), "10 seconds", "5 seconds").unwrap();
        assert!(evaluate(&w, &b).is_err());
    }

    #[test]
    fn mixed_type_arithmetic_coerces() {
        let b = batch();
        let c = evaluate(&col("a").add(lit(0.5f64)), &b).unwrap();
        assert_eq!(c.value(0), Value::Float64(1.5));
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn case_expression() {
        let b = batch();
        let e = Expr::Case {
            branches: vec![(col("s").eq(lit("view")), lit(1i64))],
            else_expr: Some(Box::new(lit(0i64))),
        };
        let c = evaluate(&e, &b).unwrap();
        assert_eq!(
            c.to_values(),
            vec![Value::Int64(1), Value::Int64(0), Value::Int64(1)]
        );
    }

    #[test]
    fn builtins() {
        let b = batch();
        let c = evaluate(
            &Expr::Function {
                name: "upper".into(),
                args: vec![col("s")],
            },
            &b,
        )
        .unwrap();
        assert_eq!(c.value(0), Value::str("VIEW"));
        let c = evaluate(
            &Expr::Function {
                name: "coalesce".into(),
                args: vec![col("a"), lit(99i64)],
            },
            &b,
        )
        .unwrap();
        assert_eq!(c.value(2), Value::Int64(99));
        let c = evaluate(
            &Expr::Function {
                name: "concat".into(),
                args: vec![col("s"), lit("!")],
            },
            &b,
        )
        .unwrap();
        assert_eq!(c.value(1), Value::str("click!"));
        let c = evaluate(
            &Expr::Function {
                name: "length".into(),
                args: vec![col("s")],
            },
            &b,
        )
        .unwrap();
        assert_eq!(c.value(0), Value::Int64(4));
    }

    #[test]
    fn udf_roundtrip() {
        use crate::expr::ScalarUdf;
        let b = batch();
        let udf = ScalarUdf {
            name: "double_it".into(),
            return_type: DataType::Int64,
            func: Arc::new(|cols: &[Column]| {
                let c = cols[0].as_i64()?;
                let out: Vec<Option<i64>> = c.iter().map(|v| v.map(|x| x * 2)).collect();
                Ok(Column::Int64(TypedColumn::from_options(out, 0)))
            }),
        };
        let e = Expr::Udf {
            udf,
            args: vec![col("a")],
        };
        let c = evaluate(&e, &b).unwrap();
        assert_eq!(c.value(1), Value::Int64(4));
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn like_matching() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("", "%"));
        assert!(!like_match("hello", "h"));
        assert!(!like_match("hello", "H%"));
        assert!(!like_match("hello", "h_y%"));
        // Degenerate repeated wildcards terminate.
        assert!(like_match("abc", "%%%c"));
        // Pathological many-% patterns stay fast (no exponential
        // backtracking): 20 wildcards over a 2k-char non-match.
        let long = "a".repeat(2000);
        let hostile = "%a".repeat(20) + "b";
        assert!(!like_match(&long, &hostile));
        assert!(like_match(&(long.clone() + "b"), &hostile));
        // Unicode is matched per character, not per byte.
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("héllo", "%é%"));
        let b = batch();
        let e = Expr::Function {
            name: "like".into(),
            args: vec![col("s"), lit("v%w")],
        };
        let c = evaluate(&e, &b).unwrap();
        assert_eq!(c.value(0), Value::Boolean(true));  // "view"
        assert_eq!(c.value(1), Value::Boolean(false)); // "click"
    }

    #[test]
    fn row_and_vectorized_agree() {
        let b = batch();
        let schema = b.schema().clone();
        let exprs = vec![
            col("a").add(lit(1i64)),
            col("a").gt(lit(1i64)),
            col("s").eq(lit("view")).and(col("a").is_not_null()),
            col("a").div(lit(0i64)),
            window(col("t"), "10 seconds").unwrap(),
            Expr::Function {
                name: "coalesce".into(),
                args: vec![col("a"), lit(-1i64)],
            },
            col("a").cast(DataType::Utf8),
            Expr::Function {
                name: "like".into(),
                args: vec![col("s"), lit("%ick")],
            },
        ];
        for e in exprs {
            let vec_col = evaluate(&e, &b).unwrap();
            for (i, r) in b.to_rows().iter().enumerate() {
                let scalar = evaluate_row(&e, &schema, r).unwrap();
                assert_eq!(vec_col.value(i), scalar, "expr {e} row {i}");
            }
        }
    }
}
