//! Parallel-execution determinism matrix.
//!
//! The data-parallel scheduler's contract is that epoch output is
//! **byte-identical** to serial execution — same rows, same order —
//! for every worker count and shuffle-partition count, and that
//! restarting a checkpointed query with a *different* partition count
//! transparently repartitions the sharded state. These tests run the
//! same workloads across the {1, 2, 4, 8} × partition-count matrix and
//! compare raw (unsorted) sink bytes and state sizes against the
//! serial run.

use std::sync::Arc;

use structured_streaming::prelude::*;

fn ts(seconds: i64) -> Value {
    Value::Timestamp(seconds * 1_000_000)
}

fn agg_schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

/// Deterministic input: `n` rows spread over 7 keys and an advancing
/// (but out-of-order within each wave) event-time column.
fn feed_agg(bus: &MessageBus, n: u64, start: u64) {
    for i in start..start + n {
        let key = format!("k{}", i % 7);
        // Jitter event times so every wave has out-of-order rows.
        let t = (i as i64) + [3i64, -2, 0, 5, -1][(i % 5) as usize];
        bus.append(
            "in",
            (i % 3) as u32,
            vec![row![key, i as i64, ts(t.max(0))]],
        )
        .unwrap();
    }
}

/// Run the windowed aggregation to completion at the given parallelism
/// and return the sink rows in **delivery order** plus the final state
/// size.
fn run_windowed(
    mode: OutputMode,
    parallelism: usize,
    partitions: usize,
) -> (Vec<Row>, u64) {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 3).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", agg_schema()).unwrap()))
        .unwrap()
        .with_watermark("time", "5 seconds")
        .unwrap()
        .group_by(vec![window(col("time"), "10 seconds").unwrap(), col("key")])
        .agg(vec![count_star(), sum(col("v"))]);
    let sink = MemorySink::new("out");
    let mut query = df
        .write_stream()
        .output_mode(mode)
        .sink(sink.clone())
        .parallelism(parallelism)
        .shuffle_partitions(partitions)
        .start_sync()
        .unwrap();
    let mut fed = 0u64;
    while fed < 120 {
        feed_agg(&bus, 15, fed);
        fed += 15;
        query.process_available().unwrap();
    }
    query.process_available().unwrap();
    let state = query.state_rows();
    query.stop().unwrap();
    (sink.snapshot(), state)
}

#[test]
fn windowed_aggregation_is_byte_identical_across_the_parallelism_matrix() {
    for mode in [OutputMode::Append, OutputMode::Update, OutputMode::Complete] {
        let (expected, expected_state) = run_windowed(mode, 1, 1);
        assert!(!expected.is_empty(), "{mode:?}: reference produced no rows");
        // Worker count and partition count vary independently; several
        // combinations deliberately mismatch (skewed task/shard splits).
        for (p, s) in [(2, 2), (4, 4), (8, 8), (2, 8), (4, 2), (8, 3), (3, 1)] {
            let (got, state) = run_windowed(mode, p, s);
            assert_eq!(
                got, expected,
                "{mode:?}: sink bytes diverged at parallelism={p} partitions={s}"
            );
            assert_eq!(
                state, expected_state,
                "{mode:?}: state size diverged at parallelism={p} partitions={s}"
            );
        }
    }
}

fn imp_schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("imp_ad", DataType::Int64),
        Field::new("imp_time", DataType::Timestamp),
    ])
}

fn click_schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("click_ad", DataType::Int64),
        Field::new("click_time", DataType::Timestamp),
    ])
}

/// Run a watermarked left-outer stream–stream join to completion and
/// return the sink rows in delivery order plus final state size.
fn run_join(parallelism: usize, partitions: usize) -> (Vec<Row>, u64) {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("impressions", 2).unwrap();
    bus.create_topic("clicks", 2).unwrap();
    let ctx = StreamingContext::new();
    let impressions = ctx
        .read_source(Arc::new(
            BusSource::new(bus.clone(), "impressions", imp_schema()).unwrap(),
        ))
        .unwrap()
        .with_watermark("imp_time", "10 seconds")
        .unwrap();
    let clicks = ctx
        .read_source(Arc::new(
            BusSource::new(bus.clone(), "clicks", click_schema()).unwrap(),
        ))
        .unwrap()
        .with_watermark("click_time", "10 seconds")
        .unwrap();
    let joined = impressions.join(
        &clicks,
        JoinType::LeftOuter,
        vec![(col("imp_ad"), col("click_ad"))],
    );
    let sink = MemorySink::new("out");
    let mut query = joined
        .write_stream()
        .output_mode(OutputMode::Append)
        .sink(sink.clone())
        .parallelism(parallelism)
        .shuffle_partitions(partitions)
        .start_sync()
        .unwrap();
    // Interleaved waves: some ads click (i % 3 == 0), some never do and
    // must surface NULL-extended once the watermark passes them.
    for wave in 0..8i64 {
        for i in 0..6i64 {
            let ad = wave * 6 + i;
            bus.append(
                "impressions",
                (ad % 2) as u32,
                vec![row![ad, ts(wave * 10 + i)]],
            )
            .unwrap();
            if ad % 3 == 0 {
                bus.append(
                    "clicks",
                    (ad % 2) as u32,
                    vec![row![ad, ts(wave * 10 + i + 2)]],
                )
                .unwrap();
            }
        }
        query.process_available().unwrap();
    }
    // Push both watermarks far past everything so outer rows drain.
    bus.append("impressions", 0, vec![row![9999i64, ts(500)]]).unwrap();
    bus.append("clicks", 0, vec![row![9999i64, ts(500)]]).unwrap();
    query.process_available().unwrap();
    bus.append("impressions", 0, vec![row![9998i64, ts(501)]]).unwrap();
    query.process_available().unwrap();
    let state = query.state_rows();
    query.stop().unwrap();
    (sink.snapshot(), state)
}

#[test]
fn stream_join_is_byte_identical_across_the_parallelism_matrix() {
    let (expected, expected_state) = run_join(1, 1);
    assert!(
        expected.iter().any(|r| r.get(2).is_null()),
        "reference must include NULL-extended outer rows"
    );
    for (p, s) in [(2, 2), (4, 4), (8, 8), (4, 7), (2, 3)] {
        let (got, state) = run_join(p, s);
        assert_eq!(
            got, expected,
            "join sink bytes diverged at parallelism={p} partitions={s}"
        );
        assert_eq!(
            state, expected_state,
            "join state size diverged at parallelism={p} partitions={s}"
        );
    }
}

/// Restarting from a checkpoint with a different partition count must
/// repartition the sharded state by shuffle hash: a query that lives
/// through partition counts 4 → 2 → 1 must end byte-identical to one
/// that ran serially without interruption.
#[test]
fn restart_across_partition_counts_repartitions_state() {
    let run_segmented = |counts: &[(usize, usize)]| -> Vec<Row> {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("in", 3).unwrap();
        let backend = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let waves_per_segment = 9 / counts.len() as u64;
        let mut fed = 0u64;
        for (seg, &(p, s)) in counts.iter().enumerate() {
            let ctx = StreamingContext::new();
            let df = ctx
                .read_source(Arc::new(
                    BusSource::new(bus.clone(), "in", agg_schema()).unwrap(),
                ))
                .unwrap()
                .with_watermark("time", "5 seconds")
                .unwrap()
                .group_by(vec![window(col("time"), "10 seconds").unwrap(), col("key")])
                .agg(vec![count_star(), sum(col("v"))]);
            let mut query = df
                .write_stream()
                .output_mode(OutputMode::Append)
                .sink(sink.clone())
                .checkpoint(backend.clone())
                .parallelism(p)
                .shuffle_partitions(s)
                .start_sync()
                .unwrap();
            let waves = if seg == counts.len() - 1 {
                9 - fed / 15 // last segment takes the remainder
            } else {
                waves_per_segment
            };
            for _ in 0..waves {
                feed_agg(&bus, 15, fed);
                fed += 15;
                query.process_available().unwrap();
            }
            query.process_available().unwrap();
            query.stop().unwrap();
        }
        sink.snapshot()
    };
    let uninterrupted = run_segmented(&[(1, 1)]);
    assert!(!uninterrupted.is_empty());
    assert_eq!(
        run_segmented(&[(4, 4), (2, 2), (1, 1)]),
        uninterrupted,
        "4 → 2 → 1 restart chain diverged from the serial run"
    );
    assert_eq!(
        run_segmented(&[(1, 1), (4, 6), (2, 3)]),
        uninterrupted,
        "1 → 4 → 2 restart chain diverged from the serial run"
    );
}
