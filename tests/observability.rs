//! End-to-end observability (§7.4 Monitoring): a query run over the
//! in-repo bus must expose per-operator, state-store, WAL, source and
//! sink metrics through its registry; render a valid Prometheus text
//! exposition; produce chrome://tracing-compatible span JSON; and fire
//! one `on_progress` per epoch on registered listeners.

use std::sync::Arc;
use std::sync::Mutex;

use structured_streaming::prelude::*;
use structured_streaming::ss_common::MetricValue;
use structured_streaming::ss_core::StreamingQueryListener;

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("k", DataType::Utf8),
        Field::new("v", DataType::Int64),
    ])
}

fn rows(n: u64, start: u64) -> Vec<Row> {
    (start..start + n)
        .map(|i| row![format!("k{}", i % 3), i as i64])
        .collect()
}

#[derive(Default)]
struct Collector {
    progress: Mutex<Vec<QueryProgress>>,
    terminated: Mutex<Vec<(String, Option<String>)>>,
}

impl StreamingQueryListener for Collector {
    fn on_progress(&self, p: &QueryProgress) {
        self.progress.lock().unwrap().push(p.clone());
    }
    fn on_terminated(&self, name: &str, error: Option<&str>) {
        self.terminated
            .lock()
            .unwrap()
            .push((name.to_string(), error.map(str::to_string)));
    }
}

#[test]
fn query_exposes_metrics_traces_and_listener_events() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap()
        .filter(col("v").gt_eq(lit(0i64)))
        .group_by(vec![col("k")])
        .count();
    let sink = MemorySink::new("out");
    let mut q = df
        .write_stream()
        .query_name("obs")
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .start_sync()
        .unwrap();

    let collector = Arc::new(Collector::default());
    q.add_listener(collector.clone());

    // Two epochs of data.
    bus.append("in", 0, rows(6, 0)).unwrap();
    bus.append("in", 1, rows(6, 6)).unwrap();
    q.process_available().unwrap();
    bus.append("in", 0, rows(3, 12)).unwrap();
    q.process_available().unwrap();
    assert_eq!(sink.snapshot().len(), 3);

    // One on_progress per epoch, each with a per-operator breakdown.
    let progress = collector.progress.lock().unwrap().clone();
    assert_eq!(progress.len(), 2, "one progress record per epoch");
    assert_eq!(progress[0].num_input_rows, 12);
    assert_eq!(progress[1].num_input_rows, 3);
    for p in &progress {
        assert!(
            !p.operator_durations.is_empty(),
            "per-operator durations must be populated"
        );
        // The breakdown names the scan and the aggregation.
        assert!(p.operator_durations.iter().any(|d| d.op.starts_with("scan:")));
        assert!(p.operator_durations.iter().any(|d| d.op.starts_with("agg")));
        assert!(p.batch_duration_us >= 1);
        assert!(p.input_rows_per_second.is_finite());
    }

    // The registry snapshot covers every layer: operators (exec),
    // state store, WAL, source and sink.
    let registry = q.metrics();
    let snapshot = registry.snapshot();
    let has = |name: &str| snapshot.iter().any(|s| s.name == name);
    for name in [
        "ss_operator_rows_total",
        "ss_operator_eval_us",
        "ss_epoch_duration_us",
        "ss_state_puts_total",
        "ss_state_gets_total",
        "ss_state_keys",
        "ss_wal_appends_total",
        "ss_source_rows_total",
        "ss_source_backlog_rows",
        "ss_sink_commits_total",
        "ss_sink_commit_us",
    ] {
        assert!(has(name), "registry is missing `{name}`");
    }
    // 15 input rows flowed through the scan; 3 result keys are held as
    // state; the sink committed 2 epochs.
    match registry.value("ss_source_rows_total", &[("source", "in")]) {
        Some(MetricValue::Counter(n)) => assert_eq!(n, 15),
        other => panic!("unexpected source row count: {other:?}"),
    }
    match registry.value("ss_state_keys", &[]) {
        Some(MetricValue::Gauge(n)) => assert_eq!(n, 3),
        other => panic!("unexpected state key gauge: {other:?}"),
    }
    match registry.value("ss_sink_commits_total", &[("sink", "out")]) {
        Some(MetricValue::Counter(n)) => assert_eq!(n, 2),
        other => panic!("unexpected sink commit count: {other:?}"),
    }

    // The Prometheus text exposition is well-formed.
    let text = q.render_metrics();
    assert!(text.contains("# TYPE ss_operator_rows_total counter"));
    assert!(text.contains("# TYPE ss_epoch_duration_us histogram"));
    assert!(text.contains("_bucket{"));
    assert!(text.contains("le=\"+Inf\""));
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (_, value) = line.rsplit_once(' ').expect("line has a value");
        value.parse::<f64>().unwrap_or_else(|_| panic!("bad sample line: {line}"));
    }

    // The trace log is valid chrome://tracing JSON with epoch spans.
    let json = q.trace_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let field = |e: &serde_json::Value, key: &str| -> Option<String> {
        e.get(key).and_then(|v| v.as_str()).map(str::to_string)
    };
    let phase_of = |name: &str, ph: &str| {
        events
            .iter()
            .any(|e| field(e, "name").as_deref() == Some(name) && field(e, "ph").as_deref() == Some(ph))
    };
    assert!(phase_of("epoch", "B"), "epoch begin span");
    assert!(phase_of("epoch", "E"), "epoch end span");
    assert!(phase_of("sink-commit", "B"), "sink commit span");
    assert!(
        events.iter().any(|e| field(e, "ph").as_deref() == Some("X")
            && field(e, "name").is_some_and(|n| n.starts_with("op:"))),
        "per-operator complete events"
    );

    // Stopping fires on_terminated exactly once, with no error.
    q.stop().unwrap();
    let terminated = collector.terminated.lock().unwrap().clone();
    assert_eq!(terminated, vec![("obs".to_string(), None)]);
}

/// Snapshots and renders taken while a data-parallel query is actively
/// writing metrics from four worker threads must never show torn
/// samples: counters and histogram count/sum only move forward, and
/// every rendered exposition stays well-formed.
#[test]
fn metrics_snapshot_and_render_are_consistent_under_concurrent_writers() {
    use std::collections::HashMap;

    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let ctx = StreamingContext::new();
    let wschema = Schema::of(vec![
        Field::new("k", DataType::Utf8),
        Field::new("time", DataType::Timestamp),
    ]);
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", wschema).unwrap()))
        .unwrap()
        .group_by(vec![window(col("time"), "10 seconds").unwrap(), col("k")])
        .count();
    let sink = MemorySink::new("out");
    let mut q = df
        .write_stream()
        .query_name("conc")
        .output_mode(OutputMode::Complete)
        .parallelism(4)
        .sink(sink)
        .start_sync()
        .unwrap();
    // A shared handle onto the same registry the engine writes to.
    let registry = q.metrics();

    const EPOCHS: u64 = 40;
    const ROWS_PER_EPOCH: u64 = 400;
    let driver = std::thread::spawn(move || {
        for e in 0..EPOCHS {
            let base = e * ROWS_PER_EPOCH;
            let make = |start: u64, n: u64| -> Vec<Row> {
                (start..start + n)
                    .map(|i| row![format!("k{}", i % 13), Value::Timestamp((i as i64) * 100_000)])
                    .collect()
            };
            bus.append("in", 0, make(base, ROWS_PER_EPOCH / 2)).unwrap();
            bus.append("in", 1, make(base + ROWS_PER_EPOCH / 2, ROWS_PER_EPOCH / 2))
                .unwrap();
            q.process_available().unwrap();
        }
        q
    });

    // Poll snapshots and renders while the driver runs epochs. Keyed
    // by (family, sorted labels); value is the (count, sum) floor.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut floor: HashMap<SeriesKey, (u64, u64)> = HashMap::new();
    let mut polls = 0u32;
    while !driver.is_finished() {
        let snap = registry.snapshot();
        for s in snap {
            let key = (s.name.clone(), s.labels.clone());
            let observed = match s.value {
                MetricValue::Counter(n) => (n, 0),
                MetricValue::Histogram { count, sum } => (count, sum),
                MetricValue::Gauge(_) => continue, // gauges may move both ways
            };
            let prev = floor.entry(key).or_insert((0, 0));
            assert!(
                observed.0 >= prev.0 && observed.1 >= prev.1,
                "`{}` moved backwards: {:?} -> {:?}",
                s.name,
                prev,
                observed
            );
            *prev = observed;
        }
        // Renders taken mid-write must still be line-by-line parseable.
        let text = registry.render();
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("torn sample line: {line}"));
        }
        polls += 1;
    }
    let q = driver.join().expect("driver thread");
    assert!(polls > 0, "the poller never overlapped the driver");
    // Final totals are exact: no increments were lost to races.
    match registry.value("ss_admitted_rows_total", &[]) {
        Some(MetricValue::Counter(n)) => assert_eq!(n, EPOCHS * ROWS_PER_EPOCH),
        other => panic!("unexpected admitted rows: {other:?}"),
    }
    assert_eq!(
        q.last_progress().map(|p| p.epoch),
        Some(EPOCHS),
        "all epochs ran"
    );
    q.stop().unwrap();
}
