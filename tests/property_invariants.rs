//! Property-based invariants on the core data structures, spanning
//! crates:
//!
//! * the state store's checkpoint/restore against a model map,
//! * watermark monotonicity under arbitrary observation orders,
//! * columnar kernel algebra (filter/take/concat coherence),
//! * aggregate-state mergeability for arbitrary splits — the property
//!   that makes incremental aggregation correct (§5.2).

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use ss_common::{row, Column, DataType, Row, Value};
use ss_expr::agg::Accumulator;
use ss_expr::{avg, col, count, max, min, sum};
use ss_state::{MemoryBackend, StateEntry, StateStore};

#[derive(Debug, Clone)]
enum StoreOp {
    Put(u8, i64),
    Remove(u8),
    Checkpoint,
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| StoreOp::Put(k % 16, v)),
        any::<u8>().prop_map(|k| StoreOp::Remove(k % 16)),
        Just(StoreOp::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Restoring any checkpointed epoch reproduces exactly the model
    /// map at that point, regardless of the interleaving of puts,
    /// removes, deltas and full snapshots.
    #[test]
    fn state_store_restore_matches_model(ops in prop::collection::vec(store_op(), 1..60)) {
        let mut store = StateStore::new(Arc::new(MemoryBackend::new()))
            .with_snapshot_interval(3);
        let mut model: BTreeMap<u8, i64> = BTreeMap::new();
        let mut snapshots: Vec<(u64, BTreeMap<u8, i64>)> = Vec::new();
        let mut epoch = 0u64;
        for op in &ops {
            match op {
                StoreOp::Put(k, v) => {
                    store.operator("op").put(row![*k as i64], StateEntry::new(vec![row![*v]]));
                    model.insert(*k, *v);
                }
                StoreOp::Remove(k) => {
                    store.operator("op").remove(&row![*k as i64]);
                    model.remove(k);
                }
                StoreOp::Checkpoint => {
                    epoch += 1;
                    store.checkpoint(epoch).unwrap();
                    snapshots.push((epoch, model.clone()));
                }
            }
        }
        for (e, expected) in &snapshots {
            store.restore(*e).unwrap();
            let mut got: BTreeMap<u8, i64> = BTreeMap::new();
            if let Some(op) = store.operator_ref("op") {
                for (k, entry) in op.iter() {
                    let key = k.get(0).as_i64().unwrap().unwrap() as u8;
                    let v = entry.values[0].get(0).as_i64().unwrap().unwrap();
                    got.insert(key, v);
                }
            }
            prop_assert_eq!(&got, expected, "epoch {}", e);
        }
    }

    /// The watermark never regresses, whatever order event times are
    /// observed in.
    #[test]
    fn watermark_is_monotonic(times in prop::collection::vec(any::<i32>(), 1..50)) {
        use ss_core::watermark::WatermarkTracker;
        let mut t = WatermarkTracker::new(&[("c".into(), 1000)]);
        let mut last = i64::MIN;
        for x in times {
            t.observe("c", x as i64);
            let wm = t.advance();
            prop_assert!(wm >= last, "watermark went backwards: {} -> {}", last, wm);
            last = wm;
        }
    }

    /// filter(mask) == take(indices-of-true): two routes to the same
    /// selection agree, and concat(filter(a), filter(b)) ==
    /// filter(concat(a,b)).
    #[test]
    fn column_selection_algebra(
        a in prop::collection::vec(proptest::option::of(any::<i64>()), 0..40),
        b in prop::collection::vec(proptest::option::of(any::<i64>()), 0..40),
        seed in any::<u64>(),
    ) {
        let to_col = |vals: &[Option<i64>]| {
            Column::from_values(
                DataType::Int64,
                &vals.iter().map(|v| Value::from(*v)).collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let ca = to_col(&a);
        let cb = to_col(&b);
        let mask_of = |n: usize| -> Vec<bool> {
            (0..n).map(|i| (seed >> (i % 63)) & 1 == 1).collect()
        };
        let ma = mask_of(ca.len());
        let mb = mask_of(cb.len());
        // filter == take(true positions)
        let idx: Vec<usize> = ma.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i).collect();
        prop_assert_eq!(ca.filter(&ma).to_values(), ca.take(&idx).to_values());
        // concat-filter commutes
        let whole = Column::concat(&[&ca, &cb]).unwrap();
        let mut mask_all = ma.clone();
        mask_all.extend(mb.iter().copied());
        let left = whole.filter(&mask_all).to_values();
        let right = {
            let fa = ca.filter(&ma);
            let fb = cb.filter(&mb);
            Column::concat(&[&fa, &fb]).unwrap().to_values()
        };
        prop_assert_eq!(left, right);
    }

    /// Splitting an input arbitrarily, accumulating each piece
    /// separately, and merging the partial states gives the same
    /// answer as one pass — for every aggregate function.
    #[test]
    fn aggregate_states_merge_associatively(
        values in prop::collection::vec(proptest::option::of(-1000i64..1000), 1..60),
        cut in any::<usize>(),
    ) {
        let aggs = [sum(col("x")), min(col("x")), max(col("x")), avg(col("x")), count(col("x"))];
        let cut = cut % (values.len() + 1);
        for agg in &aggs {
            let mut single = agg.create_accumulator();
            for v in &values {
                single.update_value(&Value::from(*v)).unwrap();
            }
            let mut left = agg.create_accumulator();
            for v in &values[..cut] {
                left.update_value(&Value::from(*v)).unwrap();
            }
            let mut right = agg.create_accumulator();
            for v in &values[cut..] {
                right.update_value(&Value::from(*v)).unwrap();
            }
            // Merge right into left via the serialized state (the state
            // store round trip included).
            let serialized = serde_json::to_string(&right.state()).unwrap();
            let state: Row = serde_json::from_str(&serialized).unwrap();
            left.merge(&state).unwrap();
            prop_assert_eq!(
                left.evaluate(),
                single.evaluate(),
                "{} with cut {}",
                agg.output_name(),
                cut
            );
        }
        // Count(*) merges too (no argument column).
        let star = ss_expr::count_star();
        let mut a = star.create_accumulator();
        let mut b = star.create_accumulator();
        for _ in 0..cut { a.update_value(&Value::Int64(1)).unwrap(); }
        for _ in cut..values.len() { b.update_value(&Value::Int64(1)).unwrap(); }
        a.merge(&b.state()).unwrap();
        prop_assert_eq!(a.evaluate(), Value::Int64(values.len() as i64));
        // Keep the Accumulator import honest.
        let _: &Accumulator = &a;
    }

    /// Bus offsets are dense per partition and reads are stable
    /// (replayability), under arbitrary append batching.
    #[test]
    fn bus_replayability(batches in prop::collection::vec(1usize..20, 1..20)) {
        let bus = ss_bus::MessageBus::new();
        bus.create_topic("t", 1).unwrap();
        let mut expected = 0u64;
        for (i, n) in batches.iter().enumerate() {
            let first = bus
                .append_at("t", 0, i as i64, (0..*n).map(|k| row![(i * 100 + k) as i64]))
                .unwrap();
            prop_assert_eq!(first, expected);
            expected += *n as u64;
        }
        let once = bus.read("t", 0, 0, usize::MAX).unwrap();
        let twice = bus.read("t", 0, 0, usize::MAX).unwrap();
        prop_assert_eq!(once.len() as u64, expected);
        prop_assert_eq!(&once, &twice);
        for (i, rec) in once.iter().enumerate() {
            prop_assert_eq!(rec.offset, i as u64);
        }
    }
}
