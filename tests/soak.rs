//! Soak under sustained 2× overload, on real or virtual time.
//!
//! A windowed aggregation runs behind a throttled sink while a
//! producer feeds twice whatever the query managed to admit last
//! epoch — by construction the query can never catch up. For the
//! configured duration the test samples epoch latency and state
//! memory, then fails if either diverges: latency must not trend
//! upward (admission keeps epochs constant-size) and in-memory state
//! must stay under the soft budget (spill keeps it there). The input
//! topic itself is bounded with a `DropOldest` policy, so process
//! memory as a whole is bounded too — the backlog that matters lives
//! in the (shedding) bus, not the engine.
//!
//! The scenario is clock-parameterized and runs twice:
//!
//! * `soak_overload_stays_bounded_virtual_time` — always on. The
//!   engine and the throttled sink share a seeded [`SimClock`]
//!   (`SS_SIM_SEED` picks the seed), so the sink's per-commit stall
//!   and every latency sample happen in virtual microseconds and the
//!   whole soak completes in a wall instant.
//! * `soak_overload_stays_bounded` — the original wall-clock variant,
//!   still gated on `SS_SOAK_SECS` (unset or zero skips it; CI runs
//!   it with a small value).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use structured_streaming::prelude::*;
use structured_streaming::ss_bus::{OverflowPolicy, TopicConfig};
use structured_streaming::ss_common::{ClockRef, MetricValue, Result as SsResult, SimClock};
use structured_streaming::ss_core::microbatch::{
    EpochRun, MemoryBudget, MicroBatchConfig, MicroBatchExecution,
};
use structured_streaming::ss_core::RateControllerConfig;
use structured_streaming::ss_exec::MemoryCatalog;

struct SlowSink {
    inner: Arc<MemorySink>,
    delay_us: AtomicU64,
    clock: ClockRef,
}

impl Sink for SlowSink {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> SsResult<()> {
        let d = self.delay_us.load(Ordering::SeqCst);
        if d > 0 {
            self.clock.sleep(Duration::from_micros(d));
        }
        self.inner.commit_epoch(epoch, output)
    }

    fn truncate_after(&self, epoch: u64) -> SsResult<()> {
        self.inner.truncate_after(epoch)
    }

    fn rows_written(&self) -> u64 {
        self.inner.rows_written()
    }
}

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn feed(bus: &MessageBus, n: u64, start: u64) {
    for i in start..start + n {
        bus.append(
            "in",
            0,
            vec![row![
                format!("k{}", i % 7),
                i as i64,
                Value::Timestamp(i as i64 * 250_000)
            ]],
        )
        .unwrap();
    }
}

const SOFT_LIMIT: usize = 2 * 1024;

fn median(mut xs: Vec<i64>) -> i64 {
    xs.sort_unstable();
    if xs.is_empty() {
        0
    } else {
        xs[xs.len() / 2]
    }
}

/// How long to keep the producer outrunning the consumer.
enum SoakRun {
    /// Until the wall deadline passes (the real-time soak).
    Wall(Duration),
    /// For a fixed number of non-idle epochs (the virtual-time soak —
    /// virtual clocks have no independent notion of "long enough").
    Epochs(usize),
}

/// The soak scenario proper: every timed ingredient — the engine's
/// epoch stamps and the sink's injected stall — reads `clock`, so the
/// same invariants hold whether `clock` is the system clock or a
/// seeded virtual one.
fn run_soak(clock: ClockRef, run: SoakRun) {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic_with(
        "in",
        TopicConfig {
            partitions: 1,
            capacity: Some(5_000),
            overflow: OverflowPolicy::DropOldest,
        },
    )
    .unwrap();
    let mem = MemorySink::new("out");
    let sink = Arc::new(SlowSink {
        inner: mem.clone(),
        delay_us: AtomicU64::new(2_000),
        clock: clock.clone(),
    });

    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap();
    let plan = ctx
        .table("in")
        .unwrap()
        .with_watermark("time", "30 seconds")
        .unwrap()
        .group_by(vec![
            window(col("time"), "10 seconds").unwrap(),
            col("key"),
        ])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    let config = MicroBatchConfig {
        max_records_per_trigger: Some(64),
        adaptive_batching: false,
        checkpoint_interval: 1,
        rate_controller: Some(RateControllerConfig {
            min_rate: 16.0,
            batch_interval_us: 2_000,
            ..RateControllerConfig::default()
        }),
        state_budget: MemoryBudget {
            soft_limit_bytes: Some(SOFT_LIMIT),
            hard_limit_bytes: None,
        },
        clock: clock.clone(),
        ..Default::default()
    };
    let mut eng = MicroBatchExecution::new(
        "soak",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink,
        OutputMode::Update,
        Arc::new(MemoryBackend::new()),
        config,
    )
    .unwrap();

    let deadline = match &run {
        SoakRun::Wall(d) => Some(Instant::now() + *d),
        SoakRun::Epochs(_) => None,
    };
    let target_epochs = match &run {
        SoakRun::Wall(_) => usize::MAX,
        SoakRun::Epochs(n) => *n,
    };
    let mut fed: u64 = 0;
    let mut last_admitted: u64 = 32;
    let mut durations: Vec<i64> = Vec::new();
    let mut state_bytes: Vec<u64> = Vec::new();
    while durations.len() < target_epochs
        && deadline.is_none_or(|d| Instant::now() < d)
    {
        // 2× whatever the query actually absorbed last epoch: the
        // producer outruns the consumer by construction.
        feed(&bus, (2 * last_admitted).max(32), fed);
        fed += (2 * last_admitted).max(32);
        match eng.run_epoch().unwrap() {
            EpochRun::Ran(p) => {
                last_admitted = p.admitted_rows.max(1);
                durations.push(p.batch_duration_us);
                state_bytes.push(p.state_bytes);
            }
            EpochRun::Idle => {}
        }
    }
    let epochs = durations.len();
    assert!(epochs >= 8, "soak too short to be meaningful ({epochs} epochs)");

    // Latency must not diverge: the second half of the run is no worse
    // than a small constant factor over the first half.
    let half = epochs / 2;
    let first = median(durations[..half].to_vec());
    let second = median(durations[half..].to_vec());
    assert!(
        second <= first * 5 + 10_000,
        "epoch latency diverged: median {first}us -> {second}us over {epochs} epochs"
    );

    // Memory must not diverge: every sampled epoch ends under the soft
    // state budget (spill keeps trimming), and the bounded input topic
    // can never exceed its capacity.
    let worst = state_bytes.iter().copied().max().unwrap_or(0);
    assert!(
        worst <= SOFT_LIMIT as u64,
        "state memory exceeded the soft budget: {worst}B > {SOFT_LIMIT}B"
    );
    assert!(bus.retained_records("in").unwrap() <= 5_000);

    // The overload machinery demonstrably engaged.
    match eng.metrics().value("ss_state_spills_total", &[]) {
        Some(MetricValue::Counter(n)) => assert!(n >= 1, "soak never spilled"),
        other => panic!("missing spill counter: {other:?}"),
    }
    assert!(
        eng.progress()
            .all()
            .any(|p| p.rate_limit.is_some() && p.backlog_rows > 0),
        "soak never rate-limited"
    );
    eprintln!(
        "soak ok: {epochs} epochs, median latency {first}us/{second}us, peak state {worst}B, shed {}",
        bus.shed_records("in").unwrap()
    );
}

/// Always-on soak: the whole overload run happens in virtual time, so
/// regular CI exercises the latency/memory invariants on every push
/// without spending wall-clock seconds. `SS_SIM_SEED` reseeds the
/// virtual clock for a different (still deterministic) schedule.
#[test]
fn soak_overload_stays_bounded_virtual_time() {
    let seed: u64 = std::env::var("SS_SIM_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0x50AC);
    let sim = SimClock::new(seed);
    let started = Instant::now();
    run_soak(sim.handle(), SoakRun::Epochs(64));
    let wall_us = started.elapsed().as_micros().max(1) as u64;
    let virtual_us = sim.now_us();
    eprintln!(
        "virtual soak: seed {seed}, {virtual_us}us virtual in {wall_us}us wall ({}x)",
        virtual_us / wall_us
    );
}

/// The original wall-clock soak, opt-in: unset or zero `SS_SOAK_SECS`
/// skips it (the default for the fast tier-1 suite); CI runs it with a
/// small value.
#[test]
fn soak_overload_stays_bounded() {
    let secs: u64 = match std::env::var("SS_SOAK_SECS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
    {
        Some(n) if n > 0 => n,
        _ => {
            eprintln!("soak skipped; set SS_SOAK_SECS=<seconds> to run");
            return;
        }
    };
    run_soak(
        structured_streaming::ss_common::system_clock(),
        SoakRun::Wall(Duration::from_secs(secs)),
    );
}
