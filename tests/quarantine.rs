//! Poison-record quarantine and the epoch/task watchdog, end to end.
//!
//! A stream carrying a few malformed records (a UDF panics on them —
//! the classic poison-pill) runs under `ErrorPolicy::Quarantine` while
//! seeded faults crash the process mid-epoch. The sink must converge
//! byte-for-byte to a clean run over the pre-filtered input, and the
//! shared dead-letter queue must hold each poison record exactly once,
//! however many times epochs were replayed. Separate tests pin the
//! watchdog contract: a never-returning task fails with
//! `SsError::Timeout` within twice its hard deadline, and the
//! supervisor recovers the query afterwards.

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ss_common::fault::{FaultMode, FaultRegistry, FaultTrigger};
use ss_common::{Column, ErrorPolicy, RetryPolicy, XorShift64};
use ss_core::microbatch::{failpoints, MicroBatchConfig, MicroBatchExecution};
use ss_core::query::TriggerPolicy;
use ss_exec::MemoryCatalog;
use ss_expr::expr::{Expr, ScalarUdf};
use structured_streaming::prelude::*;

const TOTAL_ROWS: u64 = 60;
const WAVE: u64 = 10;

/// Rows whose `v` satisfies this are poison: the validation UDF panics
/// on them, the way a real UDF chokes on a malformed payload.
fn is_poison(v: i64) -> bool {
    v % 17 == 13
}

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

/// A predicate that accepts every row but panics on poison values.
fn validate_expr() -> Expr {
    let udf = ScalarUdf {
        name: "validate".into(),
        return_type: DataType::Boolean,
        func: Arc::new(|cols: &[Column]| {
            let vs = match &cols[0] {
                Column::Int64(c) => c.values(),
                other => panic!("validate: unexpected column {other:?}"),
            };
            for &v in vs {
                if is_poison(v) {
                    panic!("malformed record: v={v}");
                }
            }
            Column::from_values(DataType::Boolean, &vec![Value::Boolean(true); vs.len()])
        }),
    };
    Expr::Udf {
        udf,
        args: vec![col("v")],
    }
}

/// Feed rows `[start, start+n)`; when `skip_poison` the poison rows are
/// withheld (the pre-filtered reference input).
fn feed(bus: &MessageBus, n: u64, start: u64, skip_poison: bool) {
    for i in start..start + n {
        if skip_poison && is_poison(i as i64) {
            continue;
        }
        let key = format!("k{}", i % 5);
        bus.append(
            "in",
            (i % 2) as u32,
            vec![row![key, i as i64, Value::Timestamp(i as i64 * 1_000_000)]],
        )
        .unwrap();
    }
}

fn build_engine(
    bus: Arc<MessageBus>,
    sink: Arc<MemorySink>,
    backend: Arc<MemoryBackend>,
    config: MicroBatchConfig,
) -> Result<MicroBatchExecution, SsError> {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus, "in", schema())?.with_faults(config.faults.clone()),
    ))?;
    let plan = ctx
        .table("in")
        .unwrap()
        .filter(validate_expr())
        .group_by(vec![col("key")])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    MicroBatchExecution::new(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink,
        OutputMode::Complete,
        backend,
        config,
    )
}

fn base_config(faults: FaultRegistry) -> MicroBatchConfig {
    MicroBatchConfig {
        max_records_per_trigger: Some(7),
        adaptive_batching: false,
        checkpoint_interval: 2,
        faults,
        retry: RetryPolicy::immediate(3),
        ..Default::default()
    }
}

/// The clean run: poison rows never fed, no faults, no quarantine.
fn reference() -> Vec<Row> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("ref");
    let mut eng = build_engine(
        bus.clone(),
        sink.clone(),
        Arc::new(MemoryBackend::new()),
        base_config(FaultRegistry::new()),
    )
    .unwrap();
    let mut fed = 0;
    while fed < TOTAL_ROWS {
        feed(&bus, WAVE, fed, true);
        fed += WAVE;
        eng.process_available().unwrap();
    }
    let mut rows = sink.snapshot();
    rows.sort();
    rows
}

/// Crash points for the quarantine chaos loop — all outside record
/// evaluation, so every failure here is a process crash, never a
/// poison record.
const CRASH_POOL: &[(&str, FaultMode)] = &[
    (failpoints::AFTER_OFFSET_WRITE, FaultMode::Error),
    (failpoints::AFTER_SINK_WRITE, FaultMode::Error),
    (failpoints::AFTER_SINK_WRITE, FaultMode::Panic),
    (failpoints::AFTER_COMMIT_WRITE, FaultMode::Error),
    (ss_wal::failpoints::COMMITS_APPEND, FaultMode::Error),
    (ss_state::store::failpoints::CHECKPOINT_WRITE, FaultMode::TransientError),
    (ss_bus::dlq::failpoints::DLQ_WRITE, FaultMode::TransientError),
];

/// The tentpole assertion: a poisoned stream under
/// `ErrorPolicy::Quarantine`, crashed and restarted mid-epoch, still
/// produces output byte-identical to the clean pre-filtered run — and
/// the shared DLQ ends up with each poison record exactly once.
#[test]
fn quarantine_is_deterministic_across_crash_restart() {
    std::panic::set_hook(Box::new(|_| {}));
    let expected = reference();
    assert!(!expected.is_empty());
    let poison: Vec<i64> = (0..TOTAL_ROWS as i64).filter(|&v| is_poison(v)).collect();
    assert!(poison.len() >= 3, "test input must carry several poison rows");

    for seed in [2u64, 5, 9] {
        let mut rng = XorShift64::new(seed);
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("in", 2).unwrap();
        let backend = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        // Shared across incarnations, like the sink and the checkpoint
        // backend: models a durable DLQ topic.
        let dlq = ss_bus::DeadLetterQueue::new();
        let mut fed: u64 = 0;
        let mut incarnation = 0u32;
        loop {
            incarnation += 1;
            let faults = FaultRegistry::new();
            if incarnation <= 40 {
                let (point, mode) = CRASH_POOL[rng.gen_range(0, CRASH_POOL.len() as u64) as usize];
                let skip = rng.gen_range(0, 5);
                faults.configure(point, FaultTrigger::Once { skip }, mode);
            }
            let config = MicroBatchConfig {
                error_policy: ErrorPolicy::Quarantine { max_per_epoch: 4 },
                dlq: Some(dlq.clone()),
                ..base_config(faults)
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), SsError> {
                let mut eng = build_engine(bus.clone(), sink.clone(), backend.clone(), config)?;
                while fed < TOTAL_ROWS {
                    feed(&bus, WAVE, fed, false);
                    fed += WAVE;
                    eng.process_available()?;
                }
                eng.process_available()?;
                assert!(eng.isolation_active(), "poison never engaged isolation");
                Ok(())
            }));
            if let Ok(Ok(())) = outcome {
                break;
            }
            assert!(
                incarnation < 100,
                "quarantine chaos run (seed {seed}) did not converge"
            );
        }
        let mut rows = sink.snapshot();
        rows.sort();
        assert_eq!(
            rows, expected,
            "seed {seed}: quarantined run diverged from the pre-filtered clean run"
        );
        // Exactly-once DLQ: one letter per poison row, no duplicates,
        // however many times epochs were crashed and replayed.
        let letters = dlq.snapshot();
        assert_eq!(
            letters.len(),
            poison.len(),
            "seed {seed}: DLQ letter count; letters={letters:?}"
        );
        let positions: BTreeSet<(u32, u64)> =
            letters.iter().map(|l| (l.partition, l.offset)).collect();
        assert_eq!(positions.len(), poison.len(), "seed {seed}: duplicate DLQ positions");
        for l in &letters {
            assert_eq!(l.source, "in");
            assert!(l.error.contains("malformed record"), "got: {}", l.error);
            assert_ne!(l.fingerprint, 0);
        }
        let mut quarantined_vs: Vec<i64> = letters
            .iter()
            .map(|l| {
                let json = &l.row_json;
                let tail = &json[json.find("\"v\":").expect("row_json carries v") + 4..];
                tail[..tail.find([',', '}']).unwrap()].trim().parse().unwrap()
            })
            .collect();
        quarantined_vs.sort();
        assert_eq!(quarantined_vs, poison, "seed {seed}: wrong rows quarantined");
    }
    let _ = std::panic::take_hook();
}

/// `ErrorPolicy::Drop` discards poison silently: clean output, empty
/// DLQ, but the quarantine counters still tell the operator.
#[test]
fn drop_policy_discards_poison_without_dead_letters() {
    std::panic::set_hook(Box::new(|_| {}));
    let expected = reference();
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("out");
    let config = MicroBatchConfig {
        error_policy: ErrorPolicy::Drop,
        ..base_config(FaultRegistry::new())
    };
    let mut eng = build_engine(
        bus.clone(),
        sink.clone(),
        Arc::new(MemoryBackend::new()),
        config,
    )
    .unwrap();
    let mut fed = 0;
    while fed < TOTAL_ROWS {
        feed(&bus, WAVE, fed, false);
        fed += WAVE;
        eng.process_available().unwrap();
    }
    let _ = std::panic::take_hook();
    let mut rows = sink.snapshot();
    rows.sort();
    assert_eq!(rows, expected);
    assert!(eng.dlq().is_empty(), "Drop must not write dead letters");
    let dropped: u64 = eng
        .progress()
        .all()
        .map(|p| p.quarantined_records)
        .sum();
    assert_eq!(dropped as usize, (0..TOTAL_ROWS as i64).filter(|&v| is_poison(v)).count());
    let metrics = eng.metrics().render();
    assert!(
        metrics.contains("ss_quarantined_records_total"),
        "metric missing:\n{metrics}"
    );
}

/// An epoch carrying more poison than `max_per_epoch` is a pipeline
/// bug, not bad luck: the epoch fails outright with a non-restartable
/// explanation instead of flooding the DLQ.
#[test]
fn quarantine_limit_fails_the_epoch() {
    std::panic::set_hook(Box::new(|_| {}));
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("out");
    let config = MicroBatchConfig {
        error_policy: ErrorPolicy::Quarantine { max_per_epoch: 0 },
        ..base_config(FaultRegistry::new())
    };
    let mut eng = build_engine(
        bus.clone(),
        sink.clone(),
        Arc::new(MemoryBackend::new()),
        config,
    )
    .unwrap();
    feed(&bus, 20, 0, false); // rows 0..20 include poison v=13
    let err = eng.process_available().unwrap_err();
    let _ = std::panic::take_hook();
    assert!(
        err.to_string().contains("quarantine limit exceeded"),
        "got: {err}"
    );
}

/// A task that never returns must not wedge the query: the pool's hard
/// deadline abandons the stuck worker and the epoch fails with a
/// transient `SsError::Timeout` within twice the deadline. The hang
/// releases on the error path, so the very next trigger succeeds.
#[test]
fn hung_task_times_out_within_twice_the_hard_deadline() {
    const DEADLINE: Duration = Duration::from_millis(400);
    let faults = FaultRegistry::new();
    faults.configure(
        ss_sched::failpoints::TASK_HANG,
        FaultTrigger::Once { skip: 0 },
        FaultMode::Hang,
    );
    let config = MicroBatchConfig {
        parallelism: 4,
        shuffle_partitions: 4,
        task_hard_deadline: Some(DEADLINE),
        ..base_config(faults)
    };
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("out");
    let mut eng = build_engine(
        bus.clone(),
        sink.clone(),
        Arc::new(MemoryBackend::new()),
        config,
    )
    .unwrap();
    feed(&bus, WAVE, 0, true);
    let started = Instant::now();
    let err = eng.process_available().unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(err.category(), "timeout", "got: {err}");
    assert!(err.is_transient(), "a hung task must fail restartably: {err}");
    assert!(
        elapsed < DEADLINE * 2,
        "timeout took {elapsed:?}, deadline is {DEADLINE:?}"
    );
    assert!(
        eng.metrics()
            .render()
            .contains("ss_task_deadline_exceeded_total"),
        "hard-deadline counter missing"
    );
    // The hang was a one-shot: restart (what the supervisor does)
    // re-runs WAL recovery and the in-flight epoch cleanly.
    eng.restart().unwrap();
    eng.process_available().unwrap();
    let reference = {
        let bus2 = Arc::new(MessageBus::new());
        bus2.create_topic("in", 2).unwrap();
        let sink2 = MemorySink::new("ref");
        let mut clean = build_engine(
            bus2.clone(),
            sink2.clone(),
            Arc::new(MemoryBackend::new()),
            base_config(FaultRegistry::new()),
        )
        .unwrap();
        feed(&bus2, WAVE, 0, true);
        clean.process_available().unwrap();
        let mut rows = sink2.snapshot();
        rows.sort();
        rows
    };
    let mut rows = sink.snapshot();
    rows.sort();
    assert_eq!(rows, reference);
}

/// The same hang under a supervisor: the Timeout is restartable, so
/// the supervisor restarts once and the query converges on its own.
#[test]
fn supervisor_recovers_a_query_after_a_hung_task() {
    let faults = FaultRegistry::new();
    faults.configure(
        ss_sched::failpoints::TASK_HANG,
        FaultTrigger::Once { skip: 0 },
        FaultMode::Hang,
    );
    let config = MicroBatchConfig {
        parallelism: 4,
        shuffle_partitions: 4,
        task_hard_deadline: Some(Duration::from_millis(300)),
        ..base_config(faults)
    };
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("out");
    let eng = build_engine(
        bus.clone(),
        sink.clone(),
        Arc::new(MemoryBackend::new()),
        config,
    )
    .unwrap();
    feed(&bus, WAVE, 0, true);
    let query = StreamingQuery::start_supervised(
        eng,
        TriggerPolicy::ProcessingTime(Duration::from_millis(1)),
        RestartPolicy {
            max_restarts: 3,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            healthy_epochs_to_reset: None,
        },
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if query.restarts() >= 1 && !sink.snapshot().is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(query.restarts() >= 1, "exception={:?}", query.exception());
    assert!(!sink.snapshot().is_empty());
    assert!(query.exception().is_none(), "got: {:?}", query.exception());
    query.stop().unwrap();
}

/// The epoch-level watchdog: a hang inside serial evaluation releases
/// when the epoch deadline expires, the epoch fails with Timeout, and
/// a `watchdog` event is logged. The next trigger runs clean.
#[test]
fn epoch_watchdog_fails_a_wedged_epoch() {
    const DEADLINE: Duration = Duration::from_millis(300);
    let faults = FaultRegistry::new();
    faults.configure(
        ss_exec::ops::failpoints::RECORD_EVAL,
        FaultTrigger::Once { skip: 0 },
        FaultMode::Hang,
    );
    let config = MicroBatchConfig {
        parallelism: 1,
        epoch_deadline: Some(DEADLINE),
        ..base_config(faults)
    };
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("out");
    let mut eng = build_engine(
        bus.clone(),
        sink.clone(),
        Arc::new(MemoryBackend::new()),
        config,
    )
    .unwrap();
    feed(&bus, WAVE, 0, true);
    let started = Instant::now();
    let err = eng.process_available().unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(err.category(), "timeout", "got: {err}");
    assert!(
        elapsed < DEADLINE * 2,
        "watchdog took {elapsed:?}, deadline is {DEADLINE:?}"
    );
    assert!(
        eng.events().to_jsonl().contains("watchdog"),
        "no watchdog event:\n{}",
        eng.events().to_jsonl()
    );
    eng.restart().unwrap();
    eng.process_available().unwrap();
    assert!(!sink.snapshot().is_empty());
}
