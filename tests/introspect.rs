//! The epoch profiler and the HTTP introspection server, end to end:
//! a live windowed-aggregation query must attribute ≥95% of each
//! epoch's wall time to the profiler's phase tree, and the server must
//! serve all five endpoints with well-formed bodies over plain TCP.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use structured_streaming::prelude::*;
use structured_streaming::ss_common::profile::{
    PHASE_EXECUTE, PHASE_SINK_COMMIT, PHASE_SOURCE_READ, PHASE_WAL,
};
use structured_streaming::ss_core::IntrospectServer;

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("k", DataType::Utf8),
        Field::new("time", DataType::Timestamp),
    ])
}

fn rows(n: u64, start: u64) -> Vec<Row> {
    (start..start + n)
        .map(|i| row![format!("k{}", i % 17), Value::Timestamp((i as i64) * 250_000)])
        .collect()
}

/// Minimal HTTP/1.1 GET over a raw socket; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to introspection server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    // Bodies are sent with Content-Length + Connection: close, so the
    // remainder of the stream is exactly the body.
    (status, body.to_string())
}

/// Build a windowed-aggregation query over the bus and run `epochs`
/// epochs of `per_epoch` rows each.
fn run_profiled_query(
    name: &str,
    parallelism: usize,
    epochs: usize,
    per_epoch: u64,
) -> StreamingQuery {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap()
        .group_by(vec![window(col("time"), "10 seconds").unwrap(), col("k")])
        .count();
    let sink = MemorySink::new("out");
    let mut q = df
        .write_stream()
        .query_name(name)
        .output_mode(OutputMode::Complete)
        .parallelism(parallelism)
        .sink(sink)
        .start_sync()
        .unwrap();
    let mut next = 0u64;
    for _ in 0..epochs {
        bus.append("in", 0, rows(per_epoch / 2, next)).unwrap();
        bus.append("in", 1, rows(per_epoch / 2, next + per_epoch / 2))
            .unwrap();
        next += per_epoch;
        q.process_available().unwrap();
    }
    q
}

#[test]
fn epoch_profile_attributes_wall_time_with_skew_and_shuffle() {
    let q = run_profiled_query("prof", 4, 3, 4_000);
    let profiles = q.profiles();
    assert_eq!(profiles.len(), 3, "one profile per epoch");
    for p in &profiles {
        assert!(p.total_us > 0, "epoch {} measured no wall time", p.epoch);
        // The acceptance bar: the disjoint top-level phases must account
        // for at least 95% of the measured epoch wall time.
        assert!(
            p.coverage() >= 0.95,
            "epoch {}: phase tree covers only {:.1}% of {}µs ({:?})",
            p.epoch,
            p.coverage() * 100.0,
            p.total_us,
            p.phases
        );
        for phase in [PHASE_SOURCE_READ, PHASE_EXECUTE, PHASE_SINK_COMMIT, PHASE_WAL] {
            assert!(
                p.phases.iter().any(|d| d.name == phase),
                "epoch {} is missing phase `{phase}`",
                p.epoch
            );
        }
        // Parallel execution: execute has children, tasks carry skew
        // stats, and the shuffle routed every input row somewhere.
        let children: Vec<&str> = p
            .phases
            .iter()
            .filter(|d| d.parent.as_deref() == Some(PHASE_EXECUTE))
            .map(|d| d.name.as_str())
            .collect();
        assert!(
            children.contains(&"map") && children.contains(&"reduce"),
            "epoch {}: execute children = {children:?}",
            p.epoch
        );
        let tasks = p.tasks.expect("parallel epochs have task skew stats");
        assert!(tasks.tasks > 0);
        assert!(tasks.min_us <= tasks.p50_us && tasks.p50_us <= tasks.max_us);
        let shuffle = p.shuffle.as_ref().expect("aggregate epochs shuffle");
        assert_eq!(shuffle.rows_per_partition.len(), 4);
        assert_eq!(shuffle.total_rows(), 4_000, "every input row is routed");
        assert!(shuffle.total_bytes() > 0);
        assert!(shuffle.key_skew >= 1.0);
        // Ingest stamps come from the bus, so e2e latency is measured.
        let (lat_min, lat_max) = p.e2e_latency_us.expect("bus sources carry ingest stamps");
        assert!(lat_min <= lat_max);
    }
    // The same profile rides on the progress record.
    let last = q.last_progress().expect("progress after 3 epochs");
    let attached = last.profile.as_ref().expect("progress carries the profile");
    assert_eq!(attached.epoch, profiles.last().unwrap().epoch);
    // And the registry carries the per-phase histogram.
    let text = q.render_metrics();
    assert!(text.contains("ss_phase_duration_us"), "missing phase metric");
    assert!(text.contains("phase=\"execute\""), "missing execute series");
    assert!(text.contains("ss_e2e_latency_us"), "missing e2e latency metric");
    q.stop().unwrap();
}

#[test]
fn introspection_server_serves_all_endpoints() {
    let manager = Arc::new(StreamingQueryManager::new());
    manager.add(run_profiled_query("prof", 4, 2, 1_000)).unwrap();
    let mut server = IntrospectServer::start(manager.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // /healthz
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    // /metrics: merged Prometheus exposition with a query label on
    // every sample, and every non-comment line numeric.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE ss_epoch_duration_us histogram"));
    assert!(body.contains("query=\"prof\""));
    assert!(body.contains("ss_phase_duration_us"));
    assert!(body.contains("ss_trace_dropped_total"));
    for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad sample line: {line}"));
    }

    // /queries: JSON array with the query's status and last progress.
    let (status, body) = http_get(addr, "/queries");
    assert_eq!(status, 200);
    let parsed: serde_json::Value = serde_json::from_str(&body).expect("queries JSON parses");
    let arr = parsed.as_array().expect("array of queries");
    assert_eq!(arr.len(), 1);
    let q0 = &arr[0];
    assert_eq!(q0.get("name").and_then(|v| v.as_str()), Some("prof"));
    assert_eq!(q0.get("epoch").and_then(|v| v.as_u64()), Some(2));
    let rows_in = q0
        .get("last_progress")
        .and_then(|p| p.get("num_input_rows"))
        .and_then(|v| v.as_u64())
        .expect("last progress rows");
    assert!(rows_in > 0);
    assert!(q0.get("exception").unwrap().is_null());

    // /query/<name>/profile: the retained epoch profiles.
    let (status, body) = http_get(addr, "/query/prof/profile");
    assert_eq!(status, 200);
    let parsed: serde_json::Value = serde_json::from_str(&body).expect("profile JSON parses");
    let profs = parsed.as_array().expect("array of profiles");
    assert_eq!(profs.len(), 2);
    let phases = profs[0]
        .get("phases")
        .and_then(|v| v.as_array())
        .expect("phases array");
    assert!(phases.len() >= 4);
    let coverage = profs[0]
        .get("coverage")
        .and_then(|v| v.as_f64())
        .expect("coverage");
    assert!(coverage >= 0.95, "served coverage {coverage}");
    let (status, _) = http_get(addr, "/query/ghost/profile");
    assert_eq!(status, 404);

    // /query/<name>/dlq: the dead-letter queue (empty for a healthy
    // query, but the endpoint must resolve).
    let (status, body) = http_get(addr, "/query/prof/dlq");
    assert_eq!(status, 200);
    assert!(body.is_empty(), "healthy query has no dead letters: {body}");
    let (status, _) = http_get(addr, "/query/ghost/dlq");
    assert_eq!(status, 404);

    // /trace: merged chrome://tracing JSON with process names.
    let (status, body) = http_get(addr, "/trace");
    assert_eq!(status, 200);
    let parsed: serde_json::Value = serde_json::from_str(&body).expect("trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents");
    let field = |e: &serde_json::Value, key: &str| -> Option<String> {
        e.get(key).and_then(|v| v.as_str()).map(str::to_string)
    };
    assert!(events.iter().any(|e| {
        field(e, "name").as_deref() == Some("process_name")
            && e.get("args").and_then(|a| a.get("name")).and_then(|v| v.as_str()) == Some("prof")
    }));
    assert!(events
        .iter()
        .any(|e| field(e, "name").as_deref() == Some("epoch")
            && field(e, "ph").as_deref() == Some("B")));

    // /events: JSON Lines, one parseable object per line, covering the
    // query's lifecycle so far.
    let (status, body) = http_get(addr, "/events");
    assert_eq!(status, 200);
    let mut kinds = Vec::new();
    for line in body.lines() {
        let ev: serde_json::Value = serde_json::from_str(line).expect("event line parses");
        kinds.push(
            ev.get("event")
                .and_then(|v| v.as_str())
                .expect("event kind")
                .to_string(),
        );
    }
    assert!(kinds.contains(&"start".to_string()), "kinds: {kinds:?}");
    assert!(kinds.contains(&"progress".to_string()), "kinds: {kinds:?}");

    // Unknown paths 404; stop() is idempotent and unblocks accept.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    server.stop();
    server.stop();
    manager.stop_all().unwrap();
}
