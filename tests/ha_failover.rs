//! High-availability failover: replicated checkpoints, lease-fenced
//! leadership, and warm-standby takeover.
//!
//! Three suites:
//!
//! * **Zombie-writer fencing** — a leader is "paused" between the sink
//!   write and the WAL commit (an injected error leaves the epoch
//!   half-done), a warm standby takes the lease, and the resumed
//!   zombie must see [`SsError::Fenced`] on *every* durable write —
//!   WAL, checkpoint backend and sink — while the final sink output
//!   stays byte-identical exactly-once.
//! * **Seeded failover drill** — under several chaos seeds, the leader
//!   is repeatedly killed at a random point of the epoch protocol; the
//!   warm standby must promote within a bounded number of ticks and
//!   the final sink must equal a run that never failed.
//! * **Replica durability** — with synchronous mirroring, the replica
//!   alone is enough to restart the query at the exact committed
//!   epoch; the catch-up scrubber converges a diverged replica.
//!
//! Both fencing and takeover run on the serial path by default and on
//! the data-parallel path under `SS_PARALLELISM=4` (the CI failover
//! smoke job runs both).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ss_common::{ClockRef, SimClock, XorShift64};
use ss_core::ha::{HaConfig, StandbyQuery, StandbyStatus};
use ss_core::microbatch::{failpoints, MicroBatchConfig, MicroBatchExecution};
use ss_exec::MemoryCatalog;
use ss_state::{CheckpointBackend, ReplicatedBackend, ReplicationMode};
use ss_wal::{FencedBackend, LeaseManager};
use structured_streaming::prelude::*;

const TOTAL_ROWS: u64 = 60;
const WAVE: u64 = 10;

/// Lethal fail points for the drill. Error modes only (no panics):
/// the dead incarnation must survive as an object so it can be
/// resumed as a zombie and checked for fencing.
const POOL: &[&str] = &[
    failpoints::AFTER_OFFSET_WRITE,
    failpoints::AFTER_SINK_WRITE,
    failpoints::AFTER_COMMIT_WRITE,
    ss_wal::failpoints::OFFSETS_APPEND,
    ss_wal::failpoints::COMMITS_APPEND,
    ss_state::store::failpoints::CHECKPOINT_WRITE,
];

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn feed(bus: &MessageBus, n: u64, start: u64) {
    for i in start..start + n {
        let key = format!("k{}", i % 5);
        bus.append(
            "in",
            (i % 2) as u32,
            vec![row![key, i as i64, Value::Timestamp(i as i64 * 1_000_000)]],
        )
        .unwrap();
    }
}

/// A shared fake monotonic clock (µs): lease lapse is decided by
/// advancing this, never by sleeping.
fn fake_clock() -> (SimClock, ClockRef) {
    let sim = SimClock::new(0);
    let handle = sim.handle();
    (sim, handle)
}

/// One HA participant: the engine plus the handles the tests poke —
/// its lease, its fault registry, and its fenced backend/sink for
/// direct zombie-write probes.
struct Participant {
    engine: MicroBatchExecution,
    lease: Arc<LeaseManager>,
    faults: FaultRegistry,
    fenced_backend: Arc<FencedBackend>,
    fenced_sink: Arc<ss_bus::FencedSink>,
}

/// Build a leader or warm standby over the same shared storage:
/// `FencedBackend(ReplicatedBackend(primary, replica), lease)` as the
/// engine backend, the lease itself on the raw primary, and the shared
/// sink wrapped in a [`ss_bus::FencedSink`] checking the same lease.
#[allow(clippy::too_many_arguments)]
fn build_participant(
    bus: Arc<MessageBus>,
    sink_inner: Arc<MemorySink>,
    primary: Arc<dyn CheckpointBackend>,
    replica: Arc<dyn CheckpointBackend>,
    holder: &str,
    clock: ClockRef,
    standby: bool,
) -> std::result::Result<Participant, SsError> {
    let lease = Arc::new(LeaseManager::with_clock(
        primary.clone(),
        holder,
        Duration::from_millis(100),
        Duration::from_millis(50),
        clock,
    ));
    let repl = Arc::new(ReplicatedBackend::new(
        primary,
        replica,
        ReplicationMode::Sync,
    ));
    let fenced_backend = Arc::new(FencedBackend::new(repl.clone(), lease.clone()));
    let faults = FaultRegistry::new();
    let config = MicroBatchConfig {
        max_records_per_trigger: Some(7),
        adaptive_batching: false,
        checkpoint_interval: 2,
        faults: faults.clone(),
        retry: RetryPolicy::immediate(3),
        ha: Some(HaConfig::new(lease.clone()).with_replication(repl)),
        ..Default::default()
    };
    let guard_lease = lease.clone();
    let fenced_sink = ss_bus::FencedSink::new(
        sink_inner,
        Arc::new(move |ctx: &str| guard_lease.check_fenced(ctx)),
    );

    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus, "in", schema())?.with_faults(faults.clone()),
    ))?;
    let plan = ctx
        .table("in")
        .unwrap()
        .group_by(vec![
            window(col("time"), "10 seconds").unwrap(),
            col("key"),
        ])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    let build = if standby {
        MicroBatchExecution::new_standby
    } else {
        MicroBatchExecution::new
    };
    let engine = build(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        fenced_sink.clone(),
        OutputMode::Update,
        fenced_backend.clone(),
        config,
    )?;
    Ok(Participant {
        engine,
        lease,
        faults,
        fenced_backend,
        fenced_sink,
    })
}

/// The crash-free result over the same input (no HA, no faults).
fn reference() -> Vec<Row> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("ref");
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap();
    let plan = ctx
        .table("in")
        .unwrap()
        .group_by(vec![
            window(col("time"), "10 seconds").unwrap(),
            col("key"),
        ])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    let mut eng = MicroBatchExecution::new(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink.clone(),
        OutputMode::Update,
        Arc::new(MemoryBackend::new()),
        MicroBatchConfig {
            max_records_per_trigger: Some(7),
            adaptive_batching: false,
            checkpoint_interval: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut fed = 0;
    while fed < TOTAL_ROWS {
        feed(&bus, WAVE, fed);
        fed += WAVE;
        eng.process_available().unwrap();
    }
    let mut rows = sink.snapshot();
    rows.sort();
    rows
}

#[test]
fn zombie_leader_is_fenced_on_every_durable_write_and_output_stays_exactly_once() {
    let expected = reference();
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let primary: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let replica: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let (t, clock) = fake_clock();

    let mut leader = build_participant(
        bus.clone(),
        sink.clone(),
        primary.clone(),
        replica.clone(),
        "leader-0",
        clock.clone(),
        false,
    )
    .unwrap();
    let standby = build_participant(
        bus.clone(),
        sink.clone(),
        primary.clone(),
        replica.clone(),
        "standby-0",
        clock,
        true,
    )
    .unwrap();
    let mut standby_q = StandbyQuery::new(standby.engine).unwrap();

    // Healthy epochs; the warm standby follows read-only.
    feed(&bus, 2 * WAVE, 0);
    leader.engine.process_available().unwrap();
    match standby_q.tick().unwrap() {
        StandbyStatus::Following { caught_up_to } => {
            assert_eq!(caught_up_to, leader.engine.current_epoch());
        }
        other => panic!("expected Following, got {other:?}"),
    }
    let sink_rows_before_pause = sink.snapshot().len();
    assert!(sink_rows_before_pause > 0);

    // "Pause" the leader between the sink write and the WAL commit:
    // the sink accepted the epoch's output, the commit never lands.
    leader.faults.configure(
        failpoints::AFTER_SINK_WRITE,
        FaultTrigger::Once { skip: 0 },
        FaultMode::Error,
    );
    feed(&bus, WAVE, 2 * WAVE);
    let err = leader.engine.process_available().unwrap_err();
    assert!(
        !matches!(err, SsError::Fenced(_)),
        "the injected pause must not be a fencing error: {err}"
    );

    // The lease lapses on the standby's monotonic clock; takeover is
    // bounded: one tick to observe the lapse, one promote call that
    // replays only the in-flight tail.
    t.advance(Duration::from_micros(160_000));
    match standby_q.tick().unwrap() {
        StandbyStatus::LeaderLapsed { .. } => {}
        other => panic!("expected LeaderLapsed, got {other:?}"),
    }
    let mut promoted = standby_q.promote().unwrap();
    assert_eq!(promoted.ha_role(), Some(ss_wal::HaRole::Leader));

    // The new leader finishes the input.
    let mut fed = 3 * WAVE;
    while fed < TOTAL_ROWS {
        feed(&bus, WAVE, fed);
        fed += WAVE;
    }
    promoted.process_available().unwrap();
    let mut rows = sink.snapshot();
    rows.sort();
    assert_eq!(rows, expected, "failover changed the sink output");

    // The zombie resumes. Every durable write path must reject:
    // 1. the epoch protocol itself (WAL offsets write / lease renewal);
    let zerr = leader.engine.process_available().unwrap_err();
    assert!(matches!(zerr, SsError::Fenced(_)), "got: {zerr}");
    // 2. the checkpoint backend;
    let berr = leader
        .fenced_backend
        .write_atomic("zombie-probe.json", b"{}")
        .unwrap_err();
    assert!(matches!(berr, SsError::Fenced(_)), "got: {berr}");
    // 3. the sink.
    let batch = RecordBatch::empty(schema());
    let serr = leader
        .fenced_sink
        .commit_epoch(999, &ss_bus::EpochOutput::Append(batch))
        .unwrap_err();
    assert!(matches!(serr, SsError::Fenced(_)), "got: {serr}");
    assert_eq!(leader.engine.ha_role(), Some(ss_wal::HaRole::Fenced));

    // Every rejection was counted, and the sink never moved.
    assert!(
        leader.lease.fencing_rejections() >= 3,
        "only {} rejections recorded",
        leader.lease.fencing_rejections()
    );
    let rendered = leader.engine.metrics().render();
    assert!(
        rendered.contains("ss_fencing_rejections_total"),
        "{rendered}"
    );
    let mut after = sink.snapshot();
    after.sort();
    assert_eq!(after, expected, "a zombie write reached the sink");
}

/// One seeded drill: kill the leader at random protocol points, let
/// the warm standby take over each time, and return the sorted sink
/// plus how many failovers happened.
fn drill(seed: u64, expected: &[Row]) -> u32 {
    let mut rng = XorShift64::new(seed);
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let primary: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let replica: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let (t, clock) = fake_clock();

    let mut holder = 0u32;
    let p0 = build_participant(
        bus.clone(),
        sink.clone(),
        primary.clone(),
        replica.clone(),
        &format!("leader-{holder}"),
        clock.clone(),
        false,
    )
    .unwrap();
    let mut leader_engine = p0.engine;
    let mut leader_lease = p0.lease;
    let mut leader_faults = p0.faults;
    holder += 1;
    let s0 = build_participant(
        bus.clone(),
        sink.clone(),
        primary.clone(),
        replica.clone(),
        &format!("standby-{holder}"),
        clock.clone(),
        true,
    )
    .unwrap();
    let mut standby_faults = s0.faults;
    let mut standby_q = StandbyQuery::new(s0.engine).unwrap();
    let _ = standby_q.tick(); // observe the lease before any failure

    // Arm the first fault.
    let arm = |faults: &FaultRegistry, rng: &mut XorShift64| {
        let point = POOL[rng.gen_range(0, POOL.len() as u64) as usize];
        let skip = rng.gen_range(0, 4);
        faults.configure(point, FaultTrigger::Once { skip }, FaultMode::Error);
    };
    arm(&leader_faults, &mut rng);

    let mut zombies: Vec<(MicroBatchExecution, Arc<LeaseManager>)> = Vec::new();
    let mut failovers = 0u32;
    let mut fed = 0u64;
    loop {
        if fed < TOTAL_ROWS {
            feed(&bus, WAVE, fed);
            fed += WAVE;
        }
        match leader_engine.process_available() {
            Ok(_) => {
                if fed >= TOTAL_ROWS {
                    break;
                }
            }
            Err(e) => {
                assert!(
                    !matches!(e, SsError::Fenced(_)),
                    "seed {seed}: live leader was fenced: {e}"
                );
                failovers += 1;
                assert!(failovers < 16, "seed {seed}: drill did not converge");
                // The dead leader goes silent past ttl + grace.
                t.advance(Duration::from_micros(160_000));
                // Bounded takeover: the lapse must be visible within
                // two ticks (one to refresh, one to decide).
                let mut lapsed = false;
                for _ in 0..2 {
                    if matches!(
                        standby_q.tick().unwrap(),
                        StandbyStatus::LeaderLapsed { .. }
                    ) {
                        lapsed = true;
                        break;
                    }
                }
                assert!(lapsed, "seed {seed}: lease lapse not observed in 2 ticks");
                let promoted = standby_q.promote().unwrap();
                let promoted_lease = promoted.ha().unwrap().lease.clone();
                zombies.push((
                    std::mem::replace(&mut leader_engine, promoted),
                    leader_lease,
                ));
                leader_lease = promoted_lease;
                leader_faults = standby_faults.clone();
                // Replace the consumed standby with a fresh warm one.
                holder += 1;
                let next = build_participant(
                    bus.clone(),
                    sink.clone(),
                    primary.clone(),
                    replica.clone(),
                    &format!("standby-{holder}"),
                    clock.clone(),
                    true,
                )
                .unwrap();
                standby_faults = next.faults;
                standby_q = StandbyQuery::new(next.engine).unwrap();
                let _ = standby_q.tick();
                // Keep the chaos coming for the first few rounds.
                if failovers <= 3 {
                    arm(&leader_faults, &mut rng);
                }
            }
        }
        let _ = standby_q.tick(); // warm standby keeps following
    }
    let _ = leader_lease;

    let mut rows = sink.snapshot();
    rows.sort();
    assert_eq!(rows, expected, "seed {seed} diverged from the clean run");

    // Feed a sentinel wave only the zombies will try to process, then
    // resume every zombie: each must be fenced before any durable
    // write, and the sink must not move.
    feed(&bus, WAVE, TOTAL_ROWS);
    for (z, lease) in &mut zombies {
        let err = match z.process_available() {
            Err(e) => e,
            Ok(_) => panic!("seed {seed}: zombie ran an epoch unfenced"),
        };
        assert!(matches!(err, SsError::Fenced(_)), "seed {seed}: {err}");
        assert!(lease.fencing_rejections() >= 1);
    }
    let mut after = sink.snapshot();
    after.sort();
    assert_eq!(after, expected, "seed {seed}: a zombie write reached the sink");
    failovers
}

#[test]
fn failover_drill_converges_across_seeds() {
    let expected = reference();
    assert!(!expected.is_empty());
    let mut failovers = 0;
    for seed in [7, 21, 42, 1337] {
        failovers += drill(seed, &expected);
    }
    // The pool must actually be lethal across the seed set.
    assert!(failovers >= 3, "only {failovers} failovers across 4 seeds");
}

#[test]
fn replica_alone_restarts_the_query_at_the_committed_epoch() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let primary: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let replica: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let (_, clock) = fake_clock();

    let mut leader = build_participant(
        bus.clone(),
        sink.clone(),
        primary,
        replica.clone(),
        "leader-0",
        clock,
        false,
    )
    .unwrap();
    feed(&bus, 3 * WAVE, 0);
    leader.engine.process_available().unwrap();
    let committed_epoch = leader.engine.current_epoch();
    assert!(committed_epoch >= 2);

    // The primary volume is gone. A fresh engine over the replica
    // alone recovers to the exact committed epoch and keeps going.
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap();
    let plan = ctx
        .table("in")
        .unwrap()
        .group_by(vec![
            window(col("time"), "10 seconds").unwrap(),
            col("key"),
        ])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    let mut eng2 = MicroBatchExecution::new(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink.clone(),
        OutputMode::Update,
        replica,
        MicroBatchConfig {
            max_records_per_trigger: Some(7),
            adaptive_batching: false,
            checkpoint_interval: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(eng2.current_epoch(), committed_epoch);
    feed(&bus, WAVE, 3 * WAVE);
    eng2.process_available().unwrap();
    assert!(eng2.current_epoch() > committed_epoch);
}

#[test]
fn scrubber_repairs_a_diverged_replica() {
    let primary: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let replica: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let repl = ReplicatedBackend::new(primary.clone(), replica.clone(), ReplicationMode::Sync);
    repl.write_atomic("wal/offsets/epoch-1.json", b"{\"a\":1}").unwrap();
    repl.write_atomic("state/chk-1.json", b"{\"b\":2}").unwrap();

    // Divergence: the replica loses a key, gains a stray one, and has
    // a third silently corrupted.
    replica.delete("wal/offsets/epoch-1.json").unwrap();
    replica.write_atomic("stray.json", b"junk").unwrap();
    replica.write_atomic("state/chk-1.json", b"{\"b\":999}").unwrap();

    let report = repl.scrub().unwrap();
    assert!(
        report.copied_to_replica >= 2,
        "missing/diverged keys not repaired: {report:?}"
    );
    assert!(
        report.deleted_from_replica >= 1,
        "stray key not deleted: {report:?}"
    );
    assert_eq!(
        replica.read("wal/offsets/epoch-1.json").unwrap().unwrap(),
        b"{\"a\":1}".to_vec()
    );
    assert_eq!(
        replica.read("state/chk-1.json").unwrap().unwrap(),
        b"{\"b\":2}".to_vec()
    );
    assert!(replica.read("stray.json").unwrap().is_none());
}
