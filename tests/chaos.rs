//! Randomized crash/restart chaos test (§6.1).
//!
//! A windowed aggregation runs under repeated process "crashes": each
//! incarnation arms one fail point chosen by a seeded PRNG — anywhere
//! in the epoch protocol, the WAL, the state store or the source — and
//! drives the query until the fault kills it (error or panic). The
//! next incarnation recovers from the surviving WAL, checkpoints and
//! sink. Once all input is processed, the sink must equal a run that
//! never crashed, for every seed. `SS_CHAOS_SEEDS` overrides the seed
//! set: either a count (`32` = seeds 0..32) or a comma-separated list.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ss_common::fault::{FaultMode, FaultRegistry, FaultTrigger};
use ss_common::{RetryPolicy, XorShift64};
use ss_core::microbatch::{failpoints, MicroBatchConfig, MicroBatchExecution};
use ss_exec::MemoryCatalog;
use ss_state::CheckpointBackend;
use structured_streaming::prelude::*;

const TOTAL_ROWS: u64 = 60;
const WAVE: u64 = 10;

/// Every fail point the chaos run may arm, with the failure mode to
/// inject there. Transient modes exercise the retry path (absorbed
/// without a crash); Error and Panic modes kill the incarnation.
const POOL: &[(&str, FaultMode)] = &[
    (failpoints::AFTER_OFFSET_WRITE, FaultMode::Error),
    (failpoints::AFTER_SINK_WRITE, FaultMode::Error),
    (failpoints::AFTER_COMMIT_WRITE, FaultMode::Error),
    (failpoints::AFTER_OFFSET_WRITE, FaultMode::Panic),
    (failpoints::AFTER_SINK_WRITE, FaultMode::Panic),
    (failpoints::AFTER_COMMIT_WRITE, FaultMode::Panic),
    (failpoints::SOURCE_READ, FaultMode::TransientError),
    (failpoints::SINK_COMMIT, FaultMode::TransientError),
    (failpoints::MANIFEST_WRITE, FaultMode::Error),
    (failpoints::MANIFEST_WRITE, FaultMode::TransientError),
    (ss_wal::failpoints::OFFSETS_APPEND, FaultMode::Error),
    (ss_wal::failpoints::OFFSETS_APPEND, FaultMode::TransientError),
    (ss_wal::failpoints::COMMITS_APPEND, FaultMode::Error),
    (ss_wal::failpoints::COMMITS_APPEND, FaultMode::TransientError),
    (ss_state::store::failpoints::CHECKPOINT_WRITE, FaultMode::Error),
    (ss_state::store::failpoints::CHECKPOINT_WRITE, FaultMode::TransientError),
    (ss_bus::source::failpoints::BUS_READ, FaultMode::Error),
];

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn feed(bus: &MessageBus, n: u64, start: u64) {
    for i in start..start + n {
        let key = format!("k{}", i % 5);
        bus.append(
            "in",
            (i % 2) as u32,
            vec![row![key, i as i64, Value::Timestamp(i as i64 * 1_000_000)]],
        )
        .unwrap();
    }
}

fn base_config(faults: FaultRegistry) -> MicroBatchConfig {
    MicroBatchConfig {
        max_records_per_trigger: Some(7),
        adaptive_batching: false,
        checkpoint_interval: 2,
        faults,
        retry: RetryPolicy::immediate(3),
        ..Default::default()
    }
}

fn build_engine(
    bus: Arc<MessageBus>,
    sink: Arc<MemorySink>,
    backend: Arc<MemoryBackend>,
    faults: FaultRegistry,
) -> Result<MicroBatchExecution, SsError> {
    build_engine_with(bus, sink, backend, base_config(faults))
}

fn build_engine_with(
    bus: Arc<MessageBus>,
    sink: Arc<MemorySink>,
    backend: Arc<MemoryBackend>,
    config: MicroBatchConfig,
) -> Result<MicroBatchExecution, SsError> {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus, "in", schema())?.with_faults(config.faults.clone()),
    ))?;
    let plan = ctx
        .table("in")
        .unwrap()
        .group_by(vec![
            window(col("time"), "10 seconds").unwrap(),
            col("key"),
        ])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    MicroBatchExecution::new(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink,
        OutputMode::Update,
        backend,
        config,
    )
}

/// The crash-free result over the same input.
fn reference() -> Vec<Row> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("ref");
    let mut eng = build_engine(
        bus.clone(),
        sink.clone(),
        Arc::new(MemoryBackend::new()),
        FaultRegistry::new(),
    )
    .unwrap();
    let mut fed = 0;
    while fed < TOTAL_ROWS {
        feed(&bus, WAVE, fed);
        fed += WAVE;
        eng.process_available().unwrap();
    }
    let mut rows = sink.snapshot();
    rows.sort();
    rows
}

/// One fully deterministic chaos run: crash, recover, repeat until the
/// whole input is processed, then return the sorted sink contents and
/// how many incarnations (1 = no crash ever surfaced) it took.
fn chaos_run(seed: u64) -> (Vec<Row>, u32) {
    let mut rng = XorShift64::new(seed);
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let backend = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let mut fed: u64 = 0;
    let mut incarnation = 0u32;
    loop {
        incarnation += 1;
        let faults = FaultRegistry::new();
        // After enough chaos, run clean so every seed terminates.
        if incarnation <= 40 {
            let (point, mode) = POOL[rng.gen_range(0, POOL.len() as u64) as usize];
            let skip = rng.gen_range(0, 5);
            faults.configure(point, FaultTrigger::Once { skip }, mode);
        }
        // A "process": construction (which runs recovery), feeding and
        // epoch execution can all die here — by error or by panic.
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), SsError> {
            let mut eng = build_engine(bus.clone(), sink.clone(), backend.clone(), faults.clone())?;
            while fed < TOTAL_ROWS {
                feed(&bus, WAVE, fed);
                fed += WAVE;
                eng.process_available()?;
            }
            eng.process_available()?;
            Ok(())
        }));
        if let Ok(Ok(())) = outcome {
            break; // a whole incarnation survived; all input processed
        }
        assert!(
            incarnation < 100,
            "chaos run (seed {seed}) did not converge"
        );
    }
    let mut rows = sink.snapshot();
    rows.sort();
    (rows, incarnation)
}

fn seeds_from_env() -> Vec<u64> {
    match std::env::var("SS_CHAOS_SEEDS") {
        Ok(v) => {
            let v = v.trim().to_string();
            if let Ok(n) = v.parse::<u64>() {
                (0..n).collect()
            } else {
                v.split(',').filter_map(|s| s.trim().parse().ok()).collect()
            }
        }
        Err(_) => (0..20).collect(),
    }
}

#[test]
fn randomized_crash_restart_converges_to_the_no_fault_run() {
    // Injected panics are part of the plan here; keep the log readable.
    std::panic::set_hook(Box::new(|_| {}));
    let expected = reference();
    assert!(!expected.is_empty());
    let seeds = seeds_from_env();
    let mut crashes = 0;
    for &seed in &seeds {
        let (got, incarnations) = chaos_run(seed);
        assert_eq!(got, expected, "seed {seed} diverged from the clean run");
        crashes += incarnations - 1;
    }
    let _ = std::panic::take_hook();
    // The pool must actually be lethal: across the whole seed set many
    // incarnations die mid-protocol (a quiet run means the injection
    // wiring regressed).
    assert!(
        crashes >= seeds.len() as u32,
        "only {crashes} crashes across {} seeds",
        seeds.len()
    );
}

#[test]
fn corrupting_a_committed_wal_record_is_rejected_with_a_distinct_error() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let backend = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    {
        let mut eng = build_engine(
            bus.clone(),
            sink.clone(),
            backend.clone(),
            FaultRegistry::new(),
        )
        .unwrap();
        feed(&bus, 20, 0);
        eng.process_available().unwrap();
        assert!(eng.current_epoch() >= 2);
    }
    // Smash a record inside committed history — not a torn tail, so
    // recovery must refuse to run rather than silently recompute.
    backend
        .write_atomic("wal/offsets/epoch-00000000000000000001.json", b"garbage")
        .unwrap();
    let err = match build_engine(bus, sink, backend, FaultRegistry::new()) {
        Ok(_) => panic!("corrupted committed record was accepted"),
        Err(e) => e,
    };
    assert_eq!(err.category(), "corruption", "got: {err}");
}

/// Chaos over the *lifecycle* APIs: a query is repeatedly drained with
/// `stop_graceful` and re-deployed with `restart_from_checkpoint` under
/// a semantically equivalent (but differently fingerprinted) plan,
/// while seeded faults land on the manifest write, the commit path and
/// the recovery replay. A failed drain or upgrade models a crash during
/// shutdown: the next cycle rebuilds straight from the checkpoint. The
/// sink must still converge byte-for-byte to a clean run.
#[test]
fn graceful_stop_and_upgrade_survive_injected_faults() {
    std::panic::set_hook(Box::new(|_| {}));

    // Three plan variants whose filters all pass every row (v = i ≥ 0):
    // upgrades between them are Compatible (the aggregate's signature
    // is untouched) yet change the plan fingerprint.
    let variants: &[fn(DataFrame) -> DataFrame] = &[
        |df| df.filter(col("v").gt_eq(lit(0i64))),
        |df| df.filter(col("v").gt(lit(-1i64))),
        |df| df,
    ];
    let plan_for = |bus: &Arc<MessageBus>, variant: usize| -> DataFrame {
        let ctx = StreamingContext::new();
        let df = ctx
            .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
            .unwrap();
        variants[variant](df)
            .group_by(vec![col("key")])
            .agg(vec![count_star(), sum(col("v"))])
    };
    let lifecycle_pool: &[(&str, FaultMode)] = &[
        (failpoints::MANIFEST_WRITE, FaultMode::Error),
        (failpoints::MANIFEST_WRITE, FaultMode::TransientError),
        (failpoints::AFTER_COMMIT_WRITE, FaultMode::Error),
        (failpoints::SOURCE_READ, FaultMode::TransientError),
        (ss_state::store::failpoints::CHECKPOINT_WRITE, FaultMode::TransientError),
    ];

    // Clean reference over the full input.
    let expected = {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("in", 2).unwrap();
        feed(&bus, TOTAL_ROWS, 0);
        let sink = MemorySink::new("ref");
        let mut q = plan_for(&bus, 0)
            .write_stream()
            .output_mode(OutputMode::Complete)
            .sink(sink.clone())
            .checkpoint(Arc::new(MemoryBackend::new()))
            .start_sync()
            .unwrap();
        q.process_available().unwrap();
        let mut rows = sink.snapshot();
        rows.sort();
        rows
    };

    for seed in [3u64, 11, 29] {
        let mut rng = XorShift64::new(seed);
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("in", 2).unwrap();
        let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let faults = FaultRegistry::new();
        let start_variant = |variant: usize| {
            plan_for(&bus, variant)
                .write_stream()
                .output_mode(OutputMode::Complete)
                .sink(sink.clone())
                .checkpoint(backend.clone())
                .faults(faults.clone())
                .retry(RetryPolicy::immediate(3))
                .start_sync()
        };

        let mut variant = 0usize;
        let mut query: Option<StreamingQuery> = Some(start_variant(variant).unwrap());
        let mut fed = 0u64;
        for cycle in 0..8u32 {
            faults.clear();
            // (Re)incarnate after a failed drain/upgrade of the
            // previous cycle.
            let mut q = match query.take() {
                Some(q) => q,
                None => match catch_unwind(AssertUnwindSafe(|| start_variant(variant))) {
                    Ok(Ok(q)) => q,
                    _ => continue, // recovery itself crashed; next cycle retries
                },
            };
            if fed < TOTAL_ROWS {
                feed(&bus, WAVE, fed);
                fed += WAVE;
            }
            if catch_unwind(AssertUnwindSafe(|| q.process_available())).is_err() {
                continue; // panic mid-epoch: drop the incarnation
            }
            // Arm one fault, then drain-and-upgrade: even cycles stop
            // gracefully, odd ones hot-upgrade to the next variant.
            let (point, mode) = lifecycle_pool[rng.gen_range(0, lifecycle_pool.len() as u64) as usize];
            faults.configure(point, FaultTrigger::Once { skip: 0 }, mode);
            if cycle % 2 == 0 {
                let _ = catch_unwind(AssertUnwindSafe(|| q.stop_graceful()));
                // query stays None: rebuilt next cycle from durable state
            } else {
                variant = (variant + 1) % variants.len();
                query = match catch_unwind(AssertUnwindSafe(|| {
                    q.restart_from_checkpoint(&plan_for(&bus, variant))
                })) {
                    Ok(Ok(q2)) => Some(q2),
                    _ => None,
                };
            }
        }
        // Settle: no faults, finish feeding, drain everything.
        faults.clear();
        let mut q = match query.take() {
            Some(q) => q,
            None => start_variant(variant).unwrap(),
        };
        while fed < TOTAL_ROWS {
            feed(&bus, WAVE, fed);
            fed += WAVE;
        }
        q.process_available().unwrap();
        let mut rows = sink.snapshot();
        rows.sort();
        assert_eq!(rows, expected, "seed {seed} diverged after lifecycle chaos");
        q.stop_graceful().unwrap();
    }
    let _ = std::panic::take_hook();
}

/// Worker-task chaos: the same windowed aggregation runs
/// data-parallel (4 workers, 4 shuffle partitions) while seeded faults
/// land *inside* scheduler tasks — at task start
/// (`sched.task.run`) and at the shuffle write (`sched.shuffle.write`)
/// — alongside the usual epoch-protocol crash points. Transient faults
/// must be absorbed by the task retry path without killing the epoch;
/// fatal errors and panics kill the incarnation mid-scatter (its
/// sharded in-memory state is lost with the worker results) and the
/// next incarnation must rebuild from the checkpoint. The sink must
/// converge byte-for-byte to the clean **serial** run.
#[test]
fn parallel_execution_survives_worker_faults_and_matches_serial() {
    std::panic::set_hook(Box::new(|_| {}));

    let parallel_config = |faults: FaultRegistry| MicroBatchConfig {
        parallelism: 4,
        shuffle_partitions: 4,
        ..base_config(faults)
    };
    let serial_config = |faults: FaultRegistry| MicroBatchConfig {
        parallelism: 1,
        ..base_config(faults)
    };
    let worker_pool: &[(&str, FaultMode)] = &[
        (ss_sched::failpoints::TASK_RUN, FaultMode::TransientError),
        (ss_sched::failpoints::TASK_RUN, FaultMode::Error),
        (ss_sched::failpoints::TASK_RUN, FaultMode::Panic),
        (ss_sched::failpoints::SHUFFLE_WRITE, FaultMode::TransientError),
        (ss_sched::failpoints::SHUFFLE_WRITE, FaultMode::Error),
        (failpoints::AFTER_OFFSET_WRITE, FaultMode::Panic),
        (failpoints::AFTER_COMMIT_WRITE, FaultMode::Error),
        (ss_state::store::failpoints::CHECKPOINT_WRITE, FaultMode::TransientError),
    ];

    // Clean serial reference: the parallel chaos runs must reproduce
    // these exact rows.
    let expected = {
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("in", 2).unwrap();
        let sink = MemorySink::new("ref");
        let mut eng = build_engine_with(
            bus.clone(),
            sink.clone(),
            Arc::new(MemoryBackend::new()),
            serial_config(FaultRegistry::new()),
        )
        .unwrap();
        let mut fed = 0;
        while fed < TOTAL_ROWS {
            feed(&bus, WAVE, fed);
            fed += WAVE;
            eng.process_available().unwrap();
        }
        let mut rows = sink.snapshot();
        rows.sort();
        rows
    };
    assert!(!expected.is_empty());

    let mut crashes = 0u32;
    for seed in 0..12u64 {
        let mut rng = XorShift64::new(seed);
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("in", 2).unwrap();
        let backend = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let mut fed: u64 = 0;
        let mut incarnation = 0u32;
        loop {
            incarnation += 1;
            let faults = FaultRegistry::new();
            if incarnation <= 40 {
                let (point, mode) =
                    worker_pool[rng.gen_range(0, worker_pool.len() as u64) as usize];
                let skip = rng.gen_range(0, 6);
                faults.configure(point, FaultTrigger::Once { skip }, mode);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), SsError> {
                let mut eng = build_engine_with(
                    bus.clone(),
                    sink.clone(),
                    backend.clone(),
                    parallel_config(faults.clone()),
                )?;
                while fed < TOTAL_ROWS {
                    feed(&bus, WAVE, fed);
                    fed += WAVE;
                    eng.process_available()?;
                }
                eng.process_available()?;
                Ok(())
            }));
            if let Ok(Ok(())) = outcome {
                break;
            }
            crashes += 1;
            assert!(
                incarnation < 100,
                "parallel chaos run (seed {seed}) did not converge"
            );
        }
        let mut rows = sink.snapshot();
        rows.sort();
        assert_eq!(
            rows, expected,
            "seed {seed} diverged from the clean serial run"
        );
    }
    let _ = std::panic::take_hook();
    // The worker fail points must actually fire and kill incarnations,
    // or the injection wiring has regressed.
    assert!(crashes >= 6, "only {crashes} crashes across 12 seeds");
}

/// Bursty load under active admission control, with crashes landing
/// mid-epoch while rate limits are in force. A deterministic stepping
/// clock makes every epoch look slow (hundreds of fake milliseconds),
/// so the PID controller genuinely throttles admission to a few rows
/// per epoch against 20-row bursts. Crash, recover, repeat: restarted
/// incarnations must re-admit exactly the in-flight epoch's logged
/// offsets, so the sink still converges byte-for-byte to the no-fault,
/// no-limit reference run.
#[test]
fn bursty_load_under_rate_limiting_converges_after_crashes() {
    use ss_core::microbatch::Clock;
    use ss_core::RateControllerConfig;

    const BURST: u64 = 20;

    std::panic::set_hook(Box::new(|_| {}));
    let expected = reference();
    for seed in [1u64, 7, 21, 33] {
        // One monotone stepping clock per run, shared across
        // incarnations so restarts never see time move backwards.
        let clock: Clock = ss_common::StepClock::new(0, 50_000).handle();
        let throttled = |faults: FaultRegistry| MicroBatchConfig {
            rate_controller: Some(RateControllerConfig {
                min_rate: 1.0,
                batch_interval_us: 100_000,
                ..RateControllerConfig::default()
            }),
            clock: clock.clone(),
            ..base_config(faults)
        };
        let mut rng = XorShift64::new(seed);
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("in", 2).unwrap();
        let backend = Arc::new(MemoryBackend::new());
        let sink = MemorySink::new("out");
        let mut fed: u64 = 0;
        let mut incarnation = 0u32;
        let limited = loop {
            incarnation += 1;
            let faults = FaultRegistry::new();
            if incarnation <= 30 {
                let (point, mode) = POOL[rng.gen_range(0, POOL.len() as u64) as usize];
                faults.configure(point, FaultTrigger::Once { skip: rng.gen_range(0, 5) }, mode);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<bool, SsError> {
                let mut eng = build_engine_with(
                    bus.clone(),
                    sink.clone(),
                    backend.clone(),
                    throttled(faults.clone()),
                )?;
                while fed < TOTAL_ROWS {
                    feed(&bus, BURST, fed);
                    fed += BURST;
                    eng.process_available()?;
                }
                eng.process_available()?;
                // Did admission control actually hold rows back?
                let engaged = eng
                    .progress()
                    .all()
                    .any(|p| p.rate_limit.is_some() && p.backlog_rows > 0);
                Ok(engaged)
            }));
            if let Ok(Ok(l)) = outcome {
                break l;
            }
            assert!(
                incarnation < 100,
                "bursty chaos run (seed {seed}) did not converge"
            );
        };
        let mut rows = sink.snapshot();
        rows.sort();
        assert_eq!(
            rows, expected,
            "seed {seed} diverged from the clean unthrottled run"
        );
        assert!(
            limited,
            "rate limiter never engaged under bursty load (seed {seed})"
        );
    }
    let _ = std::panic::take_hook();
}
