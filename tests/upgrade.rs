//! Safe query upgrades through the public API: graceful drain,
//! manifest-checked restarts (`restart_from_checkpoint`), state
//! migration, checkpoint retention and validated rollback.
//!
//! The matrix the issue demands:
//!
//! | edit | classification |
//! |---|---|
//! | filter predicate edit | Compatible — resume, keep state |
//! | projection add (downstream of the aggregate) | Compatible |
//! | added aggregate column | MigratableState — old columns keep history, new one starts from its empty accumulator |
//! | changed grouping keys | Incompatible — refused before any durable write |
//! | changed window size | Incompatible — refused before any durable write |

use std::sync::Arc;
use std::time::Duration;

use structured_streaming::prelude::*;
use structured_streaming::ss_state::CheckpointBackend;
use structured_streaming::ss_wal::MANIFEST_KEY;

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("k", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

/// Deterministic rows: key cycles k0/k1/k2, `v` as given, event time
/// advances one second per row.
fn rows_with(n: u64, start: u64, v: impl Fn(u64) -> i64) -> Vec<Row> {
    (start..start + n)
        .map(|i| {
            row![
                format!("k{}", i % 3),
                v(i),
                Value::Timestamp(i as i64 * 1_000_000)
            ]
        })
        .collect()
}

/// A DataFrame over `bus`'s `in` topic in a fresh context (each
/// deployment builds its own plan, as a re-deployed application would).
fn df_over(bus: &Arc<MessageBus>) -> DataFrame {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus.clone(), "in", schema()).unwrap(),
    ))
    .unwrap()
}

fn start(
    df: &DataFrame,
    sink: Arc<MemorySink>,
    backend: Arc<dyn CheckpointBackend>,
) -> StreamingQuery {
    df.write_stream()
        .query_name("upgrade")
        .output_mode(OutputMode::Complete)
        .sink(sink)
        .checkpoint(backend)
        .start_sync()
        .unwrap()
}

// ---------------------------------------------------------------------
// Accept
// ---------------------------------------------------------------------

#[test]
fn filter_edit_is_compatible_and_keeps_state() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");

    let v1 = df_over(&bus)
        .filter(col("v").gt_eq(lit(0i64)))
        .group_by(vec![col("k")])
        .count();
    let mut q = start(&v1, sink.clone(), backend.clone());
    bus.append("in", 0, rows_with(6, 0, |_| 1)).unwrap();
    q.process_available().unwrap();
    assert_eq!(
        sink.snapshot(),
        vec![row!["k0", 2i64], row!["k1", 2i64], row!["k2", 2i64]]
    );

    // Upgrade: tighten the (stateless, upstream) filter. The aggregate's
    // signature is untouched, so its state carries over.
    let v2 = df_over(&bus)
        .filter(col("v").gt_eq(lit(100i64)))
        .group_by(vec![col("k")])
        .count();
    let mut q2 = q.restart_from_checkpoint(&v2).unwrap();
    // Post-upgrade rows with v=1 are now filtered out; v=100 pass.
    bus.append("in", 0, rows_with(3, 6, |_| 1)).unwrap();
    bus.append("in", 0, rows_with(3, 9, |_| 100)).unwrap();
    q2.process_available().unwrap();
    // Pre-upgrade counts (2 each) retained, one new row each.
    assert_eq!(
        sink.snapshot(),
        vec![row!["k0", 3i64], row!["k1", 3i64], row!["k2", 3i64]]
    );
    q2.stop_graceful().unwrap();
}

#[test]
fn projection_add_downstream_of_the_aggregate_is_compatible() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");

    let v1 = df_over(&bus).group_by(vec![col("k")]).count();
    let mut q = start(&v1, sink.clone(), backend.clone());
    bus.append("in", 0, rows_with(6, 0, |i| i as i64)).unwrap();
    q.process_available().unwrap();

    // Upgrade: project a derived column downstream of the aggregate.
    // The stateful operator is unchanged; only stateless shaping moved.
    let v2 = df_over(&bus)
        .group_by(vec![col("k")])
        .count()
        .select(vec![
            col("k"),
            col("count(*)"),
            col("count(*)").mul(lit(10i64)).alias("count_x10"),
        ]);
    let sink2 = MemorySink::new("out2");
    let q2 = q.restart_from_checkpoint(&v2).unwrap();
    drop(q2); // plan accepted; re-wire the new output shape to a fresh sink
    let mut q3 = start(&v2, sink2.clone(), backend.clone());
    bus.append("in", 0, rows_with(3, 6, |i| i as i64)).unwrap();
    q3.process_available().unwrap();
    assert_eq!(
        sink2.snapshot(),
        vec![
            row!["k0", 3i64, 30i64],
            row!["k1", 3i64, 30i64],
            row!["k2", 3i64, 30i64]
        ]
    );
    q3.stop_graceful().unwrap();
}

// ---------------------------------------------------------------------
// Migrate
// ---------------------------------------------------------------------

#[test]
fn added_aggregate_column_migrates_state_and_matches_a_clean_run() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");

    // Phase 1 input: v = 0 everywhere, so the *added* column (sum v) is
    // insensitive to the history the migration cannot recover; the
    // retained column (count) must carry its history over.
    let v1 = df_over(&bus).group_by(vec![col("k")]).count();
    let mut q = start(&v1, sink.clone(), backend.clone());
    bus.append("in", 0, rows_with(6, 0, |_| 0)).unwrap();
    q.process_available().unwrap();

    let v2 = df_over(&bus)
        .group_by(vec![col("k")])
        .agg(vec![count_star(), sum(col("v"))]);
    let mut q2 = q.restart_from_checkpoint(&v2).unwrap();
    bus.append("in", 0, rows_with(6, 6, |_| 5)).unwrap();
    q2.process_available().unwrap();
    let migrated = sink.snapshot();
    q2.stop_graceful().unwrap();

    // Clean run of the new query over the same full input.
    let clean_sink = MemorySink::new("clean");
    let mut clean = start(
        &v2,
        clean_sink.clone(),
        Arc::new(MemoryBackend::new()),
    );
    clean.process_available().unwrap();
    assert_eq!(
        migrated, clean_sink.snapshot(),
        "migrated restart must be byte-identical to a from-scratch run"
    );
    // And the retained column kept its pre-upgrade history: 4 rows per
    // key in total, not just the 2 post-upgrade ones.
    assert_eq!(
        migrated,
        vec![
            row!["k0", 4i64, 10i64],
            row!["k1", 4i64, 10i64],
            row!["k2", 4i64, 10i64]
        ]
    );
    clean.stop().unwrap();
}

// ---------------------------------------------------------------------
// Reject
// ---------------------------------------------------------------------

/// Run `edit` against a checkpoint created by a group-by-k count and
/// assert it is refused with `IncompatibleUpgrade` *without touching
/// durable state* — the original query restarts cleanly afterwards.
fn assert_rejected(edit: impl Fn(&Arc<MessageBus>) -> DataFrame, expect_in_error: &str) {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");

    let v1 = df_over(&bus)
        .with_watermark("time", "1 minute")
        .unwrap()
        .group_by(vec![col("k")])
        .count();
    let mut q = start(&v1, sink.clone(), backend.clone());
    bus.append("in", 0, rows_with(6, 0, |i| i as i64)).unwrap();
    q.process_available().unwrap();
    let before = sink.snapshot();

    let v2 = edit(&bus);
    let err = match q.restart_from_checkpoint(&v2) {
        Err(e) => e,
        Ok(_) => panic!("incompatible edit must be refused"),
    };
    assert!(
        matches!(err, SsError::IncompatibleUpgrade(_)),
        "wrong error: {err}"
    );
    assert!(err.to_string().contains(expect_in_error), "got: {err}");

    // Nothing durable was modified: the *original* query still resumes
    // from the same checkpoint with its state intact.
    let mut q3 = start(&v1, sink.clone(), backend);
    bus.append("in", 0, rows_with(3, 6, |i| i as i64)).unwrap();
    q3.process_available().unwrap();
    let after = sink.snapshot();
    for (b, a) in before.iter().zip(&after) {
        let count_before = b.get(1);
        let count_after = a.get(1);
        assert_eq!(
            (count_before, count_after),
            (&Value::Int64(2), &Value::Int64(3)),
            "state history lost after a rejected upgrade"
        );
    }
}

#[test]
fn changed_grouping_keys_are_rejected() {
    assert_rejected(
        |bus| {
            df_over(bus)
                .with_watermark("time", "1 minute")
                .unwrap()
                .group_by(vec![col("k"), col("v")])
                .count()
        },
        "grouping keys",
    );
}

#[test]
fn changed_window_size_is_rejected() {
    let windowed = |bus: &Arc<MessageBus>, size: &str| {
        df_over(bus)
            .with_watermark("time", "1 minute")
            .unwrap()
            .group_by(vec![window(col("time"), size).unwrap(), col("k")])
            .count()
    };
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let v1 = windowed(&bus, "10 seconds");
    let mut q = start(&v1, sink.clone(), backend.clone());
    bus.append("in", 0, rows_with(6, 0, |i| i as i64)).unwrap();
    q.process_available().unwrap();

    let v2 = windowed(&bus, "20 seconds");
    let err = match q.restart_from_checkpoint(&v2) {
        Err(e) => e,
        Ok(_) => panic!("window-size change must be refused"),
    };
    assert!(
        matches!(err, SsError::IncompatibleUpgrade(_)),
        "wrong error: {err}"
    );
    assert!(err.to_string().contains("window"), "got: {err}");
}

// ---------------------------------------------------------------------
// Stop semantics & retention
// ---------------------------------------------------------------------

#[test]
fn stop_then_restart_never_recomputes_a_committed_epoch() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let df = df_over(&bus).group_by(vec![col("k")]).count();

    bus.append("in", 0, rows_with(9, 0, |i| i as i64)).unwrap();
    {
        let mut q = df
            .write_stream()
            .query_name("stop-restart")
            .output_mode(OutputMode::Complete)
            .trigger(Trigger::ProcessingTime(Duration::from_millis(1)))
            .sink(sink.clone())
            .checkpoint(backend.clone())
            .start()
            .unwrap();
        assert!(q.await_idle(Duration::from_secs(30)).unwrap());
        q.stop().unwrap(); // plain stop: lands on a commit boundary
    }
    let written_before = sink.rows_written();
    assert!(written_before > 0);

    // Restart over the same checkpoint: recovery replays committed
    // epochs with output *disabled*, so the sink sees nothing new.
    let mut q2 = start(&df, sink.clone(), backend);
    assert_eq!(sink.rows_written(), written_before);
    // And new data still flows.
    bus.append("in", 0, rows_with(3, 9, |i| i as i64)).unwrap();
    q2.process_available().unwrap();
    assert!(sink.rows_written() > written_before);
    assert_eq!(
        sink.snapshot(),
        vec![row!["k0", 4i64], row!["k1", 4i64], row!["k2", 4i64]]
    );
    q2.stop_graceful().unwrap();
}

#[test]
fn retention_gc_purges_and_rollback_beyond_horizon_is_a_clean_error() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let df = df_over(&bus).group_by(vec![col("k")]).count();
    let mut q = df
        .write_stream()
        .query_name("gc")
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .checkpoint(backend.clone())
        .min_epochs_to_retain(5)
        .start_sync()
        .unwrap();

    // 25 one-row epochs; full state snapshots land every 10th
    // checkpoint, so GC has generations to purge.
    for i in 0..25u64 {
        bus.append("in", 0, rows_with(1, i, |i| i as i64)).unwrap();
        q.process_available().unwrap();
    }
    assert_eq!(q.current_epoch(), 25);
    let metrics = q.render_metrics();
    let purged_line = metrics
        .lines()
        .find(|l| l.starts_with("ss_checkpoint_purged_total"))
        .expect("purge counter exported");
    let purged: f64 = purged_line.split_whitespace().last().unwrap().parse().unwrap();
    assert!(purged > 0.0, "retention GC never purged anything: {purged_line}");

    // Beyond the horizon: clean, named error; nothing truncated.
    let err = q.rollback_to(2).unwrap_err();
    assert!(
        err.to_string().contains("retention horizon"),
        "got: {err}"
    );
    assert_eq!(q.current_epoch(), 25);

    // Within the horizon: rollback + replay converges to the same
    // totals (the bus retains the full history).
    let before = sink.snapshot();
    q.rollback_to(21).unwrap();
    q.process_available().unwrap();
    assert_eq!(sink.snapshot(), before);
    q.stop_graceful().unwrap();
}

// ---------------------------------------------------------------------
// Golden v1 fixture
// ---------------------------------------------------------------------

/// Where the committed fixture lives in the repository.
fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("checkpoint_v1")
}

/// The deterministic input the fixture was generated over: two epochs
/// of three rows each.
fn fixture_bus() -> Arc<MessageBus> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    bus
}

fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dest = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dest);
        } else {
            std::fs::copy(entry.path(), &dest).unwrap();
        }
    }
}

/// Regenerate `tests/fixtures/checkpoint_v1/` after an *intentional*
/// format change: `cargo test --test upgrade regenerate -- --ignored`.
/// Commit the resulting files.
#[test]
#[ignore = "writes into the source tree; run explicitly to regenerate the fixture"]
fn regenerate_golden_fixture() {
    let dir = fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bus = fixture_bus();
    let sink = MemorySink::new("out");
    let df = df_over(&bus).group_by(vec![col("k")]).count();
    let q = df
        .write_stream()
        .query_name("golden")
        .output_mode(OutputMode::Complete)
        .sink(sink)
        .checkpoint_dir(&dir)
        .unwrap()
        .start_sync()
        .unwrap();
    let mut q = q;
    bus.append("in", 0, rows_with(3, 0, |i| i as i64)).unwrap();
    q.process_available().unwrap();
    bus.append("in", 0, rows_with(3, 3, |i| i as i64)).unwrap();
    q.process_available().unwrap();
    q.stop_graceful().unwrap(); // seals the manifest
}

#[test]
fn golden_v1_fixture_restores_with_current_code() {
    let fixture = fixture_dir();
    assert!(
        fixture.join("MANIFEST.json").exists(),
        "golden fixture missing; run the ignored `regenerate_golden_fixture` test"
    );
    // Work on a copy: restoring must not depend on mutating the
    // committed files.
    let work = std::env::temp_dir().join(format!("ss-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    copy_dir(&fixture, &work);

    // Rebuild the input the fixture was generated over, plus one new
    // epoch of data.
    let bus = fixture_bus();
    bus.append("in", 0, rows_with(6, 0, |i| i as i64)).unwrap();
    let sink = MemorySink::new("out");
    let df = df_over(&bus).group_by(vec![col("k")]).count();
    let mut q = df
        .write_stream()
        .query_name("golden")
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .checkpoint_dir(&work)
        .unwrap()
        .start_sync()
        .unwrap();
    assert_eq!(q.current_epoch(), 2, "fixture's committed epochs restored");
    bus.append("in", 0, rows_with(3, 6, |i| i as i64)).unwrap();
    q.process_available().unwrap();
    // Pre-fixture counts (2 per key) retained + 1 new row per key.
    assert_eq!(
        sink.snapshot(),
        vec![row!["k0", 3i64], row!["k1", 3i64], row!["k2", 3i64]]
    );
    q.stop_graceful().unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}

// ---------------------------------------------------------------------
// Legacy v0 layout
// ---------------------------------------------------------------------

#[test]
fn a_checkpoint_without_a_manifest_still_restores_as_v0() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let backend: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    let df = df_over(&bus).group_by(vec![col("k")]).count();
    {
        let mut q = start(&df, sink.clone(), backend.clone());
        bus.append("in", 0, rows_with(6, 0, |i| i as i64)).unwrap();
        q.process_available().unwrap();
    }
    // Strip the manifest: the directory is now exactly what a
    // pre-manifest build would have written.
    backend.delete(MANIFEST_KEY).unwrap();

    // The query resumes unchecked against v0, exactly as older builds
    // behaved (the checkpoint predates operator signatures).
    let mut q2 = start(&df, sink.clone(), backend);
    bus.append("in", 0, rows_with(3, 6, |i| i as i64)).unwrap();
    q2.process_available().unwrap();
    assert_eq!(
        sink.snapshot(),
        vec![row!["k0", 3i64], row!["k1", 3i64], row!["k2", 3i64]]
    );
    q2.stop_graceful().unwrap();
}
