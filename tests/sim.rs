//! Seeded whole-system chaos exploration on virtual time.
//!
//! Drives `structured_streaming::sim`: a combined crash/hang/fence/
//! promotion scenario over a full HA deployment (leader, warm standby,
//! replicated checkpoints, fenced sink) under a seeded [`SimClock`].
//! One `u64` seed determines the entire schedule — fault arming,
//! timer interleavings, backoff jitter — so:
//!
//! * the same seed replays a byte-identical virtual-stamped trace
//!   (asserted here, twice per run);
//! * different seeds explore genuinely different schedules (asserted);
//! * a failing seed from the sweep is a complete repro:
//!   `SS_SIM_SEED=<seed> cargo test --test sim`.
//!
//! `SS_SIM_SEEDS` widens the sweep (CI runs 64); `SS_SIM_SEED` pins a
//! single seed for replay. Wall cost stays flat as simulated time
//! grows: lease lapses, watchdog windows and backoff schedules elapse
//! on the virtual clock.

use std::panic;
use std::time::Instant;

use structured_streaming::sim::{run_chaos, run_chaos_serial};

#[test]
fn same_seed_reproduces_a_byte_identical_trace() {
    let a = run_chaos_serial(42);
    let b = run_chaos_serial(42);
    assert_eq!(
        a.trace, b.trace,
        "seed 42 must replay the exact same schedule"
    );
    assert_eq!(a.virtual_us, b.virtual_us);
    assert_eq!(a.failovers, b.failovers);
    assert!(
        a.trace.contains("fenced") || a.failovers == 0,
        "failovers must leave fenced zombies:\n{}",
        a.trace
    );
}

#[test]
fn different_seeds_explore_different_schedules() {
    let a = run_chaos_serial(7);
    let b = run_chaos_serial(1337);
    assert_ne!(
        a.trace, b.trace,
        "distinct seeds collapsed onto one schedule:\n{}",
        a.trace
    );
}

/// The sweep: N seeds through the combined scenario, every run checked
/// against the crash-free oracle, with the failing seed printed as a
/// replay recipe. Honours `SS_PARALLELISM` like the rest of the suite.
#[test]
fn seed_sweep_survives_chaos_and_stays_exactly_once() {
    let (seeds, pinned): (Vec<u64>, bool) = match std::env::var("SS_SIM_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
    {
        Some(seed) => (vec![seed], true),
        None => {
            let n: u64 = std::env::var("SS_SIM_SEEDS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(8);
            ((0..n).collect(), false)
        }
    };

    let wall = Instant::now();
    let mut virtual_total: u64 = 0;
    let mut failovers_total: u32 = 0;
    let mut zombies_total: u32 = 0;
    for &seed in &seeds {
        match panic::catch_unwind(|| run_chaos(seed)) {
            Ok(report) => {
                virtual_total += report.virtual_us;
                failovers_total += report.failovers;
                zombies_total += report.fenced_zombies;
            }
            Err(payload) => {
                eprintln!(
                    "sim sweep failed at seed {seed}; replay with:\n  \
                     SS_SIM_SEED={seed} cargo test --test sim -- --nocapture"
                );
                panic::resume_unwind(payload);
            }
        }
    }
    let wall_us = wall.elapsed().as_micros().max(1) as u64;
    eprintln!(
        "sim sweep: {} seeds, {}s simulated in {}ms wall ({}x), {} failovers, {} zombies fenced",
        seeds.len(),
        virtual_total / 1_000_000,
        wall_us / 1_000,
        virtual_total / wall_us,
        failovers_total,
        zombies_total
    );
    // The fault pool must actually bite across a sweep (a pinned
    // single-seed replay may legitimately be failure-free).
    if !pinned && seeds.len() >= 8 {
        assert!(
            failovers_total >= 1,
            "no seed produced a failover; the pool has gone inert"
        );
        assert_eq!(failovers_total, zombies_total, "every failover leaves a fenced zombie");
    }
}
