//! The multi-query engine, end to end: shared scans, fingerprint-keyed
//! state sharing, pooled fair scheduling, the SQL service over HTTP,
//! copy-on-detach, and the seeded stop-mid-stream simulation scenario.
//!
//! The oracle discipline throughout: every shared-engine query is
//! compared against an **isolated** engine running the same SQL/plan
//! over the same data — per-query sink contents must be byte-identical
//! (row-for-row, in order). `SS_PARALLELISM` applies to both sides, so
//! CI exercises the matrix at 1 and 4 workers.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use structured_streaming::prelude::*;
use structured_streaming::sql;
use structured_streaming::ss_common::XorShift64;
use structured_streaming::ss_core::{HttpExtension, IntrospectServer};
use structured_streaming::ss_state::CheckpointBackend;
use structured_streaming::ss_multi::{
    MultiQueryConfig, MultiQueryEngine, QuerySpec, SqlService,
};

fn event_schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("country", DataType::Utf8),
        Field::new("event_type", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("event_time", DataType::Timestamp),
    ])
}

/// Deterministic event feed: `n` rows appended across 2 partitions.
fn feed(bus: &MessageBus, n: u64, start: u64) {
    for i in start..start + n {
        let country = ["CA", "US", "DE", "JP"][(i % 4) as usize];
        let etype = if i % 3 == 0 { "click" } else { "view" };
        bus.append(
            "events",
            (i % 2) as u32,
            vec![row![
                country,
                etype,
                (i % 17) as i64,
                Value::Timestamp((i as i64) * 1_000_000)
            ]],
        )
        .unwrap();
    }
}

fn make_bus() -> Arc<MessageBus> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("events", 2).unwrap();
    bus
}

/// A fresh multi-query engine whose context resolves `events` over
/// `bus`. Group dispatch runs on one worker so scan-cache hit counts
/// are deterministic; *intra*-epoch parallelism still follows
/// `SS_PARALLELISM`.
fn make_engine(bus: &Arc<MessageBus>) -> Arc<MultiQueryEngine> {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus.clone(), "events", event_schema()).unwrap(),
    ))
    .unwrap();
    Arc::new(MultiQueryEngine::new(
        ctx,
        MultiQueryConfig {
            workers: 1,
            ..MultiQueryConfig::default()
        },
    ))
}

/// Run `sql_text` on an isolated single-query engine over `bus` and
/// drain it; returns its sink.
fn isolated_oracle(bus: &Arc<MessageBus>, name: &str, sql_text: &str) -> Arc<MemorySink> {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus.clone(), "events", event_schema()).unwrap(),
    ))
    .unwrap();
    let df = sql(&ctx, sql_text).unwrap();
    let sink = MemorySink::new(format!("oracle:{name}"));
    let mut q = df
        .write_stream()
        .query_name(name)
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .start_sync()
        .unwrap();
    q.process_available().unwrap();
    q.stop().unwrap();
    sink
}

/// The CI smoke scenario: 8 SQL queries over one topic, 4 structurally
/// equal (aliases and mirrored comparisons differ — canonicalization
/// must see through both), assert the sharing counters engaged and
/// every query's output is byte-identical to its isolated oracle.
#[test]
fn eight_sql_queries_share_groups_and_match_isolated_oracles() {
    // (name, sql). q1..q4 share one stateful prefix.
    let queries: Vec<(&str, &str)> = vec![
        ("q1", "SELECT country, COUNT(*) AS c FROM events WHERE event_type = 'view' GROUP BY country"),
        ("q2", "SELECT country, COUNT(*) AS total FROM events WHERE event_type = 'view' GROUP BY country"),
        ("q3", "SELECT country, COUNT(*) FROM events WHERE 'view' = event_type GROUP BY country"),
        ("q4", "SELECT country, COUNT(*) AS c FROM events WHERE event_type = 'view' GROUP BY country"),
        ("q5", "SELECT event_type, COUNT(*) FROM events GROUP BY event_type"),
        ("q6", "SELECT country, SUM(v) AS sv FROM events GROUP BY country"),
        ("q7", "SELECT country, COUNT(*) FROM events WHERE event_type = 'click' GROUP BY country"),
        ("q8", "SELECT country, MAX(v) AS mv FROM events GROUP BY country"),
    ];
    let total_rows = 4_000u64;
    let bus = make_bus();
    feed(&bus, total_rows, 0);

    let engine = make_engine(&bus);
    let service = SqlService::new(engine.clone());
    let mut sinks = Vec::new();
    for (name, q) in &queries {
        sinks.push((
            *name,
            *q,
            service
                .start_sql(name, q, "tenant-a", OutputMode::Complete)
                .unwrap(),
        ));
    }

    let stats = engine.stats();
    assert_eq!(stats.queries, 8);
    assert_eq!(stats.groups, 5, "q1..q4 must collapse into one group");
    assert_eq!(stats.attached, 3, "three queries joined an existing group");

    engine.run_until_idle(50).unwrap();

    // Shared scans: 5 groups over one topic cost ONE bus read of the
    // data; the other four reads are cache fan-outs.
    assert_eq!(engine.source_rows_read(), total_rows);
    let scan = engine.stats().scan;
    assert!(scan.hits >= 4, "expected >=4 scan-cache hits, got {scan:?}");
    // 4 of the 5 groups were served from cache; the first populated it.
    assert_eq!(scan.fanned_rows, 4 * total_rows);

    // Shared state: one state namespace for the shared group — total
    // state across 5 groups for 8 queries stays well under 8 isolated
    // copies (the q1..q4 group stores its aggregate once).
    assert!(engine.state_bytes() > 0);

    // Every query's sink must match its isolated oracle byte-for-byte.
    for (name, sql_text, sink) in &sinks {
        let oracle = isolated_oracle(&bus, name, sql_text);
        assert_eq!(
            sink.snapshot(),
            oracle.snapshot(),
            "query `{name}` diverged from its isolated oracle"
        );
    }
}

/// Append-mode suffix sharing: two queries whose stateful prefix
/// (DISTINCT) is equal but whose stateless projections differ share
/// one group; the suffix is applied at each tap, and both match their
/// isolated oracles.
#[test]
fn append_suffix_sharing_applies_projection_at_the_tap() {
    let bus = make_bus();
    feed(&bus, 500, 0);

    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus.clone(), "events", event_schema()).unwrap(),
    ))
    .unwrap();
    let base = ctx
        .table("events")
        .unwrap()
        .select(vec![col("country"), col("event_type")])
        .distinct();
    let plan_full = base.plan();
    let plan_projected = base.select(vec![col("country")]).plan();

    let engine = Arc::new(MultiQueryEngine::new(
        ctx,
        MultiQueryConfig {
            workers: 1,
            ..MultiQueryConfig::default()
        },
    ));
    let sink_full = MemorySink::new("full");
    let sink_proj = MemorySink::new("proj");
    engine
        .submit(QuerySpec {
            name: "q-full".into(),
            tenant: "t".into(),
            plan: plan_full.clone(),
            output_mode: OutputMode::Append,
            sink: sink_full.clone(),
        })
        .unwrap();
    engine
        .submit(QuerySpec {
            name: "q-proj".into(),
            tenant: "t".into(),
            plan: plan_projected.clone(),
            output_mode: OutputMode::Append,
            sink: sink_proj.clone(),
        })
        .unwrap();
    let stats = engine.stats();
    assert_eq!(
        stats.groups, 1,
        "projection above DISTINCT must peel into a tap suffix"
    );
    assert_eq!(stats.attached, 1);
    engine.run_until_idle(50).unwrap();

    // Feed more and re-run: suffixes apply per epoch, not just once.
    feed(&bus, 300, 500);
    engine.run_until_idle(50).unwrap();

    for (name, plan, sink) in [
        ("o-full", plan_full, sink_full),
        ("o-proj", plan_projected, sink_proj),
    ] {
        let ctx = StreamingContext::new();
        ctx.read_source(Arc::new(
            BusSource::new(bus.clone(), "events", event_schema()).unwrap(),
        ))
        .unwrap();
        let oracle = MemorySink::new(name);
        let mut q = ctx
            .dataframe_from_plan(plan)
            .write_stream()
            .query_name(name)
            .output_mode(OutputMode::Append)
            .sink(oracle.clone())
            .start_sync()
            .unwrap();
        // Same epoch schedule as the shared run: 500 rows, then 300.
        q.process_available().unwrap();
        q.process_available().unwrap();
        q.stop().unwrap();
        assert_eq!(sink.snapshot(), oracle.snapshot(), "{name} diverged");
    }
}

/// Stopping one member of a sharing group snapshots the group state
/// for it (copy-on-detach) and leaves the survivor bit-exact with a
/// never-shared run.
#[test]
fn copy_on_detach_preserves_survivor_output_and_state() {
    let sql_text = "SELECT country, COUNT(*) AS c FROM events GROUP BY country";
    let bus = make_bus();
    let engine = make_engine(&bus);
    let service = SqlService::new(engine.clone());
    let keep = service
        .start_sql("keep", sql_text, "t", OutputMode::Complete)
        .unwrap();
    let _stop = service
        .start_sql("stop", sql_text, "t", OutputMode::Complete)
        .unwrap();
    assert_eq!(engine.stats().groups, 1);

    feed(&bus, 400, 0);
    engine.run_until_idle(50).unwrap();

    // Stop one member mid-stream: the report carries a private copy of
    // the group's checkpoint namespace (WAL + state), so the departed
    // query could restart isolated from exactly this boundary.
    let report = engine.stop_query("stop").unwrap();
    assert_eq!(report.remaining, 1);
    let copy = report.checkpoint_copy.expect("copy-on-detach snapshot");
    assert!(
        !copy.list("").unwrap().is_empty(),
        "detach copy must contain the group's checkpoint keys"
    );
    assert_eq!(engine.stats().detach_copies, 1);

    feed(&bus, 350, 400);
    engine.run_until_idle(50).unwrap();
    assert_eq!(engine.query_names(), vec!["keep".to_string()]);

    // Never-shared oracle over the same feed schedule.
    let oracle = isolated_oracle(&bus, "oracle-keep", sql_text);
    assert_eq!(keep.snapshot(), oracle.snapshot());

    // Last member leaving dissolves the group entirely.
    let report = engine.stop_query("keep").unwrap();
    assert_eq!(report.remaining, 0);
    assert!(report.checkpoint_copy.is_none());
    assert_eq!(engine.stats().groups, 0);
}

/// Per-tenant admission budgets throttle a hungry tenant's groups:
/// an over-budget tenant's group skips ticks until refills clear its
/// debt, while an unthrottled tenant proceeds.
#[test]
fn tenant_admission_budget_defers_over_budget_groups() {
    let bus = make_bus();
    feed(&bus, 1_000, 0);
    let engine = make_engine(&bus);
    let service = SqlService::new(engine.clone());
    let throttled = service
        .start_sql(
            "throttled",
            "SELECT country, COUNT(*) FROM events GROUP BY country",
            "small-tenant",
            OutputMode::Complete,
        )
        .unwrap();
    service
        .start_sql(
            "free",
            "SELECT event_type, COUNT(*) FROM events GROUP BY event_type",
            "big-tenant",
            OutputMode::Complete,
        )
        .unwrap();
    // 100 rows/tick against a 1000-row epoch: the first epoch runs
    // (admission is post-hoc) and leaves ~9 ticks of debt.
    engine.set_tenant_budget("small-tenant", 100, 100);

    let t1 = engine.tick().unwrap();
    assert_eq!(t1.epochs, 2, "both groups run their first epoch");

    feed(&bus, 200, 1_000);
    let t2 = engine.tick().unwrap();
    // The throttled group sits out while its tenant is in debt; the
    // unthrottled one drains the new rows.
    assert_eq!(t2.skipped, 1);
    assert_eq!(t2.epochs, 1);

    // Refills eventually clear the debt and the backlog drains.
    engine.run_until_idle(50).unwrap();
    let oracle = isolated_oracle(
        &bus,
        "o",
        "SELECT country, COUNT(*) FROM events GROUP BY country",
    );
    let listed = engine
        .sessions()
        .iter()
        .any(|(q, t, ..)| q == "throttled" && t == "small-tenant");
    assert!(listed);
    // Throttling delays epochs; it never changes what they compute.
    assert_eq!(throttled.snapshot(), oracle.snapshot());
}

/// Minimal HTTP/1.1 request over a raw socket; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, body.to_string())
}

/// The SQL service over real HTTP: POST /sql starts sharing queries,
/// GET /sql/sessions lists them, GET /metrics carries query+tenant
/// labels without duplicated TYPE headers, DELETE /query/<name> stops
/// with copy-on-detach, and built-in routes still work underneath.
#[test]
fn sql_service_http_endpoints() {
    let bus = make_bus();
    feed(&bus, 600, 0);
    let engine = make_engine(&bus);
    let service = SqlService::new(engine.clone());
    let manager = Arc::new(StreamingQueryManager::new());
    let mut server = IntrospectServer::start_with(
        manager,
        "127.0.0.1:0",
        vec![service.clone() as Arc<dyn HttpExtension>],
    )
    .unwrap();
    let addr = server.local_addr();

    let q = "SELECT country, COUNT(*) AS c FROM events GROUP BY country";
    let (st, body) = http(
        addr,
        "POST",
        "/sql",
        &format!(r#"{{"name":"qa","sql":"{q}","tenant":"acme","mode":"complete"}}"#),
    );
    assert_eq!(st, 200, "{body}");
    assert!(body.contains("\"started\":\"qa\""));
    let (st, _) = http(
        addr,
        "POST",
        "/sql",
        &format!(r#"{{"name":"qb","sql":"{q}","tenant":"zeta","mode":"complete"}}"#),
    );
    assert_eq!(st, 200);

    // Duplicate names, bad JSON, bad SQL, bad mode: 400 with an error.
    let (st, body) = http(
        addr,
        "POST",
        "/sql",
        &format!(r#"{{"name":"qa","sql":"{q}"}}"#),
    );
    assert_eq!(st, 400);
    assert!(body.contains("already running"));
    let (st, _) = http(addr, "POST", "/sql", "{not json");
    assert_eq!(st, 400);
    let (st, body) = http(
        addr,
        "POST",
        "/sql",
        r#"{"name":"qz","sql":"SELECT FROM WHERE"}"#,
    );
    assert_eq!(st, 400);
    assert!(body.contains("at token"), "positioned error, got: {body}");
    let (st, _) = http(
        addr,
        "POST",
        "/sql",
        &format!(r#"{{"name":"qz","sql":"{q}","mode":"sideways"}}"#),
    );
    assert_eq!(st, 400);

    let (st, body) = http(addr, "GET", "/sql/sessions", "");
    assert_eq!(st, 200);
    assert!(body.contains("\"query\":\"qa\"") && body.contains("\"tenant\":\"acme\""));
    assert!(body.contains("\"query\":\"qb\"") && body.contains("\"tenant\":\"zeta\""));

    engine.run_until_idle(50).unwrap();

    // Merged exposition: per-query AND per-tenant labels, one TYPE
    // header per family even though both queries share one group.
    let (st, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(st, 200);
    assert!(metrics.contains("query=\"qa\""), "{metrics}");
    assert!(metrics.contains("tenant=\"acme\""));
    assert!(metrics.contains("tenant=\"zeta\""));
    let mut type_lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .collect();
    let before = type_lines.len();
    type_lines.dedup();
    assert_eq!(type_lines.len(), before, "duplicated TYPE header");
    assert!(before > 0);

    // DELETE stops one member; the survivor keeps its session.
    let (st, body) = http(addr, "DELETE", "/query/qb", "");
    assert_eq!(st, 200, "{body}");
    assert!(body.contains("\"state_copied\":true"));
    let (_, sessions) = http(addr, "GET", "/sql/sessions", "");
    assert!(!sessions.contains("\"query\":\"qb\""));
    let (st, _) = http(addr, "DELETE", "/query/nope", "");
    assert_eq!(st, 404);

    // Built-ins still answer underneath the extension...
    let (st, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(st, 200);
    assert_eq!(body, "ok\n");
    // ...and non-GET methods nothing claims get 405, not a hang.
    let (st, _) = http(addr, "POST", "/healthz", "");
    assert_eq!(st, 405);

    server.stop();
}

fn sim_seeds() -> Vec<u64> {
    let n: u64 = std::env::var("SS_SIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    if let Ok(seed) = std::env::var("SS_SIM_SEED") {
        return vec![seed.parse().expect("SS_SIM_SEED must be a u64")];
    }
    (0..n).collect()
}

/// PR 9 sim integration: a seedable scenario with two sharing queries
/// where one is stopped mid-stream. For every seed, the survivor's
/// sink must be byte-identical to a never-shared run over the same
/// feed schedule — sharing (and un-sharing) must be invisible in the
/// output.
#[test]
fn sim_seeded_stop_mid_stream_is_invisible_to_the_survivor() {
    let sql_text = "SELECT country, COUNT(*) AS c, SUM(v) AS s FROM events GROUP BY country";
    for seed in sim_seeds() {
        let mut rng = XorShift64::new(seed);
        let waves: u64 = 2 + rng.gen_range(1, 4); // 3..=5 waves
        let stop_after = 1 + rng.gen_range(0, waves - 1); // 1..waves-1
        let sizes: Vec<u64> = (0..waves).map(|_| rng.gen_range(1, 120)).collect();

        // Shared run: two identical queries; `victim` leaves after
        // `stop_after` waves with backlog still arriving.
        let bus = make_bus();
        let engine = make_engine(&bus);
        let service = SqlService::new(engine.clone());
        let survivor = service
            .start_sql("survivor", sql_text, "t1", OutputMode::Complete)
            .unwrap();
        service
            .start_sql("victim", sql_text, "t2", OutputMode::Complete)
            .unwrap();
        assert_eq!(engine.stats().groups, 1, "seed {seed}: queries must share");
        let mut next = 0u64;
        for (w, n) in sizes.iter().enumerate() {
            feed(&bus, *n, next);
            next += n;
            engine.tick().unwrap();
            if w as u64 + 1 == stop_after {
                let report = engine.stop_query("victim").unwrap();
                assert_eq!(report.remaining, 1, "seed {seed}");
                assert!(report.checkpoint_copy.is_some(), "seed {seed}");
            }
        }
        engine.run_until_idle(100).unwrap();

        // Never-shared run: one isolated engine, same wave schedule.
        let bus2 = make_bus();
        let ctx = StreamingContext::new();
        ctx.read_source(Arc::new(
            BusSource::new(bus2.clone(), "events", event_schema()).unwrap(),
        ))
        .unwrap();
        let oracle = MemorySink::new("oracle");
        let mut q = sql(&ctx, sql_text)
            .unwrap()
            .write_stream()
            .query_name("oracle")
            .output_mode(OutputMode::Complete)
            .sink(oracle.clone())
            .start_sync()
            .unwrap();
        let mut next = 0u64;
        for n in &sizes {
            feed(&bus2, *n, next);
            next += n;
            q.process_available().unwrap();
        }
        q.stop().unwrap();

        assert_eq!(
            survivor.snapshot(),
            oracle.snapshot(),
            "seed {seed}: survivor diverged from the never-shared run"
        );
    }
}
