//! Operational features through the public API (§7): query manager,
//! background triggers, durable restarts over a real filesystem
//! checkpoint directory, rollback, monitoring, and continuous mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use structured_streaming::prelude::*;

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("k", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn rows(n: u64, start: u64) -> Vec<Row> {
    (start..start + n)
        .map(|i| row![format!("k{}", i % 3), i as i64, Value::Timestamp(i as i64)])
        .collect()
}

#[test]
fn durable_restart_over_filesystem() {
    let dir = std::env::temp_dir().join(format!("ss-it-fs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let sink = MemorySink::new("out");

    let start_query = |sink: Arc<MemorySink>| {
        let ctx = StreamingContext::new();
        let df = ctx
            .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
            .unwrap()
            .group_by(vec![col("k")])
            .agg(vec![sum(col("v"))]);
        df.write_stream()
            .query_name("fs-restart")
            .output_mode(OutputMode::Complete)
            .sink(sink)
            .checkpoint_dir(&dir)
            .unwrap()
            .start_sync()
            .unwrap()
    };

    bus.append("in", 0, rows(10, 0)).unwrap();
    {
        let mut q = start_query(sink.clone());
        q.process_available().unwrap();
    } // process "dies"; JSON WAL + state snapshots remain under `dir`

    // The WAL on disk is human-readable JSON (§7.2).
    let offsets_dir = dir.join("wal").join("offsets");
    let entries: Vec<_> = std::fs::read_dir(&offsets_dir).unwrap().collect();
    assert!(!entries.is_empty());
    let text = std::fs::read_to_string(entries[0].as_ref().unwrap().path()).unwrap();
    assert!(text.contains("\"epoch\""), "WAL should be JSON: {text}");

    bus.append("in", 0, rows(5, 10)).unwrap();
    let mut q2 = start_query(sink.clone());
    assert_eq!(q2.current_epoch(), 1);
    q2.process_available().unwrap();
    // sum over k0: 0+3+6+9+12 = 30; k1: 1+4+7+10+13 = 35; k2: 2+5+8+11+14 = 40
    assert_eq!(
        sink.snapshot(),
        vec![row!["k0", 30i64], row!["k1", 35i64], row!["k2", 40i64]]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_trigger_thread_processes_automatically() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap()
        .group_by(vec![col("k")])
        .count();
    let sink = MemorySink::new("out");
    let mut q = df
        .write_stream()
        .query_name("bg")
        .output_mode(OutputMode::Complete)
        .trigger(Trigger::ProcessingTime(Duration::from_millis(5)))
        .sink(sink.clone())
        .start()
        .unwrap();
    bus.append("in", 0, rows(30, 0)).unwrap();
    assert!(q.await_idle(Duration::from_secs(30)).unwrap());
    assert_eq!(sink.snapshot().len(), 3);
    assert!(q.exception().is_none());
    q.stop().unwrap();
}

#[test]
fn query_manager_tracks_and_stops_queries() {
    let manager = StreamingQueryManager::new();
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let ctx = StreamingContext::new();
    let src = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap();
    for (i, mode) in [OutputMode::Complete, OutputMode::Update].iter().enumerate() {
        let df = src.group_by(vec![col("k")]).count();
        let q = df
            .write_stream()
            .query_name(format!("q{i}"))
            .output_mode(*mode)
            .sink(MemorySink::new(format!("s{i}")))
            .start_sync()
            .unwrap();
        manager.add(q).unwrap();
    }
    assert_eq!(manager.active(), vec!["q0", "q1"]);
    // Duplicate names rejected.
    let dup = src
        .group_by(vec![col("k")])
        .count()
        .write_stream()
        .query_name("q0")
        .output_mode(OutputMode::Complete)
        .sink(MemorySink::new("dup"))
        .start_sync()
        .unwrap();
    assert!(manager.add(dup).is_err());
    bus.append("in", 0, rows(6, 0)).unwrap();
    manager
        .with_query("q0", |q| q.process_available())
        .unwrap()
        .unwrap();
    manager.stop_query("q1").unwrap();
    assert_eq!(manager.active(), vec!["q0"]);
    manager.stop_all().unwrap();
    assert!(manager.active().is_empty());
}

#[test]
fn progress_metrics_reflect_load() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap()
        .group_by(vec![col("k")])
        .count();
    let sink = MemorySink::new("out");
    let mut q = df
        .write_stream()
        .output_mode(OutputMode::Update)
        .engine_config(ss_core::microbatch::MicroBatchConfig {
            max_records_per_trigger: Some(10),
            adaptive_batching: false, // fixed cap, so backlog is observable
            ..Default::default()
        })
        .sink(sink)
        .start_sync()
        .unwrap();
    bus.append("in", 0, rows(25, 0)).unwrap();
    q.run_epoch().unwrap();
    let p = q.last_progress().unwrap();
    assert_eq!(p.epoch, 1);
    assert_eq!(p.num_input_rows, 10);
    assert!(p.backlog_rows >= 15, "backlog visible: {}", p.backlog_rows);
    assert!(p.state_rows >= 3);
    q.process_available().unwrap();
    let all = q.recent_progress();
    assert!(all.len() >= 2);
    assert_eq!(
        all.iter().map(|p| p.num_input_rows).sum::<u64>(),
        25
    );
    q.stop().unwrap();
}

#[test]
fn rollback_via_public_handle() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap()
        .group_by(vec![col("k")])
        .count();
    let sink = MemorySink::new("out");
    let mut q = df
        .write_stream()
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .start_sync()
        .unwrap();
    bus.append("in", 0, rows(3, 0)).unwrap();
    q.process_available().unwrap();
    bus.append("in", 0, rows(3, 3)).unwrap();
    q.process_available().unwrap();
    let before = sink.snapshot();
    q.rollback_to(1).unwrap();
    assert_eq!(q.current_epoch(), 1);
    q.process_available().unwrap();
    // Recomputation converges to the same totals.
    assert_eq!(sink.snapshot(), before);
    q.stop().unwrap();
}

#[test]
fn continuous_mode_via_write_stream() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap()
        .filter(col("v").gt_eq(lit(0i64)))
        .select(vec![col("k"), col("v")]);
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = seen.clone();
    let q = df
        .write_stream()
        .trigger(Trigger::Continuous(Duration::from_millis(20)))
        .record_sink(Arc::new(move |_p, _row| {
            seen2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }))
        .start_continuous()
        .unwrap();
    for r in rows(50, 0) {
        bus.append("in", 0, vec![r]).unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while seen.load(Ordering::SeqCst) < 50 {
        assert!(std::time::Instant::now() < deadline, "continuous query stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
    let latencies = q.stop().unwrap();
    assert_eq!(latencies.len(), 50);

    // Aggregations are rejected in continuous mode (§6.3: map-like
    // jobs only, as in Spark 2.3).
    let agg = ctx.table("in").unwrap().group_by(vec![col("k")]).count();
    let result = agg
        .write_stream()
        .trigger(Trigger::Continuous(Duration::from_millis(20)))
        .record_sink(Arc::new(|_, _| Ok(())))
        .start_continuous();
    match result {
        Err(err) => assert!(err.to_string().contains("map-like"), "{err}"),
        Ok(_) => panic!("aggregation must be rejected in continuous mode"),
    }
}

#[test]
fn run_once_trigger_background() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 1).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap()
        .group_by(vec![col("k")])
        .count();
    let sink = MemorySink::new("out");
    bus.append("in", 0, rows(9, 0)).unwrap();
    let q = df
        .write_stream()
        .output_mode(OutputMode::Complete)
        .trigger(Trigger::Once)
        .sink(sink.clone())
        .start()
        .unwrap();
    // Once-triggered queries drain and stop on their own.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while sink.snapshot().len() < 3 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }
    q.stop().unwrap();
    assert_eq!(sink.snapshot().len(), 3);
}
