//! Event time, watermarks and append-mode emission (§4.3.1), through
//! the public API: the full timeline of a windowed aggregation with
//! out-of-order and late data, and stream–stream joins with
//! watermark-bounded state.

use std::sync::Arc;

use structured_streaming::prelude::*;

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("device", DataType::Utf8),
        Field::new("time", DataType::Timestamp),
    ])
}

fn ts(seconds: i64) -> Value {
    Value::Timestamp(seconds * 1_000_000)
}

fn setup(mode: OutputMode) -> (Arc<MessageBus>, StreamingQuery, Arc<MemorySink>) {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("readings", 1).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(
            BusSource::new(bus.clone(), "readings", schema()).unwrap(),
        ))
        .unwrap()
        .with_watermark("time", "5 seconds")
        .unwrap()
        .group_by(vec![window(col("time"), "10 seconds").unwrap()])
        .count();
    let sink = MemorySink::new("out");
    let query = df
        .write_stream()
        .output_mode(mode)
        .sink(sink.clone())
        .start_sync()
        .unwrap();
    (bus, query, sink)
}

#[test]
fn append_mode_full_timeline() {
    let (bus, mut query, sink) = setup(OutputMode::Append);

    // Epoch 1: out-of-order events inside [0, 10).
    bus.append("readings", 0, vec![row!["a", ts(7)], row!["a", ts(2)], row!["a", ts(9)]])
        .unwrap();
    query.process_available().unwrap();
    assert!(sink.snapshot().is_empty(), "window cannot close yet");

    // Epoch 2: an event at 14s. Watermark after this epoch: 14-5 = 9s,
    // still inside [0,10) — nothing final.
    bus.append("readings", 0, vec![row!["a", ts(14)]]).unwrap();
    query.process_available().unwrap();
    assert!(sink.snapshot().is_empty());

    // Epoch 3: an event at 16s. During this epoch the in-force
    // watermark is 9s; after it, 11s — so the *next* epoch closes
    // [0,10).
    bus.append("readings", 0, vec![row!["a", ts(16)]]).unwrap();
    query.process_available().unwrap();
    // Epoch 4 (no data needed — a trigger with an empty epoch would be
    // Idle, so send one row to drive it).
    bus.append("readings", 0, vec![row!["a", ts(17)]]).unwrap();
    query.process_available().unwrap();
    assert_eq!(
        sink.snapshot(),
        vec![row![ts(0), ts(10), 3i64]],
        "window [0,10) finalized with exactly its 3 events"
    );

    // A late event for the closed window is dropped, not re-emitted
    // (append output is immutable).
    bus.append("readings", 0, vec![row!["a", ts(1)], row!["a", ts(30)]])
        .unwrap();
    query.process_available().unwrap();
    let finalized: Vec<Row> = sink
        .snapshot()
        .into_iter()
        .filter(|r| r.get(0) == &ts(0))
        .collect();
    assert_eq!(finalized, vec![row![ts(0), ts(10), 3i64]]);

    assert_eq!(query.watermark_us(), 25 * 1_000_000);
    query.stop().unwrap();
}

#[test]
fn update_mode_emits_early_and_often() {
    let (bus, mut query, sink) = setup(OutputMode::Update);
    bus.append("readings", 0, vec![row!["a", ts(2)]]).unwrap();
    query.process_available().unwrap();
    // Update mode shows the running count before the window closes.
    assert_eq!(sink.snapshot(), vec![row![ts(0), ts(10), 1i64]]);
    bus.append("readings", 0, vec![row!["a", ts(3)]]).unwrap();
    query.process_available().unwrap();
    assert_eq!(sink.snapshot(), vec![row![ts(0), ts(10), 2i64]]);
    query.stop().unwrap();
}

#[test]
fn watermark_bounds_aggregation_state() {
    let (bus, mut query, _sink) = setup(OutputMode::Update);
    // 20 windows' worth of data, advancing.
    for s in 0..200 {
        bus.append("readings", 0, vec![row!["a", ts(s)]]).unwrap();
        if s % 25 == 0 {
            query.process_available().unwrap();
        }
    }
    query.process_available().unwrap();
    // Only windows newer than the watermark are retained (plus the
    // watermark bookkeeping entry).
    assert!(
        query.state_rows() < 6,
        "state should be bounded, got {}",
        query.state_rows()
    );
    query.stop().unwrap();
}

#[test]
fn stream_stream_join_with_watermarks_public_api() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("impressions", 1).unwrap();
    bus.create_topic("clicks", 1).unwrap();
    let imp_schema = Schema::of(vec![
        Field::new("imp_ad", DataType::Int64),
        Field::new("imp_time", DataType::Timestamp),
    ]);
    let click_schema = Schema::of(vec![
        Field::new("click_ad", DataType::Int64),
        Field::new("click_time", DataType::Timestamp),
    ]);
    let ctx = StreamingContext::new();
    let impressions = ctx
        .read_source(Arc::new(
            BusSource::new(bus.clone(), "impressions", imp_schema).unwrap(),
        ))
        .unwrap()
        .with_watermark("imp_time", "10 seconds")
        .unwrap();
    let clicks = ctx
        .read_source(Arc::new(
            BusSource::new(bus.clone(), "clicks", click_schema).unwrap(),
        ))
        .unwrap()
        .with_watermark("click_time", "10 seconds")
        .unwrap();
    // Which impressions led to clicks? Left-outer: unclicked
    // impressions surface once the watermark passes them.
    let joined = impressions.join(
        &clicks,
        JoinType::LeftOuter,
        vec![(col("imp_ad"), col("click_ad"))],
    );
    let sink = MemorySink::new("out");
    let mut query = joined
        .write_stream()
        .output_mode(OutputMode::Append)
        .sink(sink.clone())
        .start_sync()
        .unwrap();

    bus.append("impressions", 0, vec![row![1i64, ts(1)], row![2i64, ts(2)]])
        .unwrap();
    query.process_available().unwrap();
    // The click for ad 1 arrives later.
    bus.append("clicks", 0, vec![row![1i64, ts(5)]]).unwrap();
    query.process_available().unwrap();
    let matched: Vec<Row> = sink.snapshot();
    assert_eq!(matched, vec![row![1i64, ts(1), 1i64, ts(5)]]);

    // Advance both watermarks past ad 2's impression: it emits
    // NULL-extended (never clicked).
    bus.append("impressions", 0, vec![row![9i64, ts(60)]]).unwrap();
    bus.append("clicks", 0, vec![row![8i64, ts(60)]]).unwrap();
    query.process_available().unwrap();
    bus.append("impressions", 0, vec![row![9i64, ts(61)]]).unwrap();
    query.process_available().unwrap();
    assert!(
        sink.snapshot()
            .iter()
            .any(|r| r.get(0) == &Value::Int64(2) && r.get(2).is_null()),
        "unclicked impression should emit NULL-extended: {:?}",
        sink.snapshot()
    );
    query.stop().unwrap();
}

#[test]
fn sliding_windows_public_api() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("readings", 1).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(
            BusSource::new(bus.clone(), "readings", schema()).unwrap(),
        ))
        .unwrap()
        .group_by(vec![window_sliding(col("time"), "10 seconds", "5 seconds").unwrap()])
        .count();
    let sink = MemorySink::new("out");
    let mut query = df
        .write_stream()
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .start_sync()
        .unwrap();
    bus.append("readings", 0, vec![row!["a", ts(7)]]).unwrap();
    query.process_available().unwrap();
    // One event at 7s lands in windows [0,10) and [5,15).
    assert_eq!(
        sink.snapshot(),
        vec![row![ts(0), ts(10), 1i64], row![ts(5), ts(15), 1i64]]
    );
    query.stop().unwrap();
}
