//! The paper's core semantic guarantee (§4.2, prefix consistency):
//! "Structured Streaming will always produce results consistent with
//! running this query on a prefix of the data in all input sources."
//!
//! These tests run the same logical query twice over identical data:
//! once through the batch executor, once through the streaming engine
//! with the input divided into arbitrary epochs — including
//! property-tested random epoch splits — and assert the final result
//! tables are identical. If an optimizer rule, the incrementalizer or
//! the epoch protocol ever broke semantics, this is the suite that
//! catches it.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use structured_streaming::prelude::*;

fn event_schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("user", DataType::Utf8),
        Field::new("kind", DataType::Utf8),
        Field::new("amount", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn make_row(seed: u64) -> Row {
    let user = format!("u{}", seed % 7);
    let kind = if seed.is_multiple_of(3) { "view" } else { "click" };
    row![
        user,
        kind,
        (seed % 100) as i64,
        Value::Timestamp((seed % 50) as i64 * 1_000_000)
    ]
}

/// Run `build` on a fresh context twice: batch over all rows at once,
/// and streaming with the rows split into the given epochs. Returns
/// `(batch_rows, streaming_rows)` as canonical sorted sets.
fn run_both(
    rows: &[Row],
    epochs: &[usize],
    mode: OutputMode,
    build: impl Fn(&StreamingContext, DataFrame) -> DataFrame,
) -> (Vec<Row>, Vec<Row>) {
    // Streaming run: feed epoch by epoch.
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("events", 2).unwrap();
    let ctx = StreamingContext::new();
    let df = ctx
        .read_source(Arc::new(
            BusSource::new(bus.clone(), "events", event_schema()).unwrap(),
        ))
        .unwrap();
    let query_df = build(&ctx, df);
    let sink = MemorySink::new("out");
    let mut query = query_df
        .write_stream()
        .output_mode(mode)
        .sink(sink.clone())
        .start_sync()
        .unwrap();
    let mut offset = 0usize;
    for (i, &n) in epochs.iter().enumerate() {
        let end = (offset + n).min(rows.len());
        for (j, r) in rows[offset..end].iter().enumerate() {
            bus.append("events", ((i + j) % 2) as u32, vec![r.clone()])
                .unwrap();
        }
        offset = end;
        query.process_available().unwrap();
    }
    // Anything left over goes in one final epoch.
    for r in &rows[offset..] {
        bus.append("events", 0, vec![r.clone()]).unwrap();
    }
    query.process_available().unwrap();
    let mut streaming: Vec<Row> = sink.snapshot();
    streaming.sort();

    // Batch run over the identical full input.
    let batch_ctx = StreamingContext::new();
    let table = RecordBatch::from_rows(event_schema(), rows).unwrap();
    let bdf = batch_ctx.read_table("events", vec![table]).unwrap();
    let batch_df = build(&batch_ctx, bdf);
    let mut batch: Vec<Row> = batch_df.collect().unwrap().to_rows();
    batch.sort();

    (batch, streaming)
}

fn splits(total: usize, cuts: &[usize]) -> Vec<usize> {
    // Turn arbitrary cut points into epoch sizes covering `total`.
    let mut points: BTreeSet<usize> = cuts.iter().map(|c| c % (total + 1)).collect();
    points.insert(total);
    let mut sizes = Vec::new();
    let mut prev = 0;
    for p in points {
        if p > prev {
            sizes.push(p - prev);
            prev = p;
        }
    }
    sizes
}

#[test]
fn filter_project_prefix_consistent() {
    let rows: Vec<Row> = (0..200).map(make_row).collect();
    let (batch, streaming) = run_both(
        &rows,
        &[1, 50, 3, 100, 46],
        OutputMode::Append,
        |_, df| {
            df.filter(col("kind").eq(lit("view")))
                .select(vec![col("user"), col("amount").mul(lit(2i64)).alias("a2")])
        },
    );
    assert_eq!(batch, streaming);
    assert!(!batch.is_empty());
}

#[test]
fn grouped_aggregation_prefix_consistent() {
    let rows: Vec<Row> = (0..300).map(make_row).collect();
    let (batch, streaming) = run_both(
        &rows,
        &[7, 90, 1, 1, 200, 1],
        OutputMode::Complete,
        |_, df| {
            df.group_by(vec![col("user")])
                .agg(vec![count_star(), sum(col("amount")), avg(col("amount"))])
        },
    );
    assert_eq!(batch, streaming);
    assert_eq!(batch.len(), 7);
}

#[test]
fn windowed_aggregation_prefix_consistent() {
    let rows: Vec<Row> = (0..250).map(make_row).collect();
    let (batch, streaming) = run_both(
        &rows,
        &[100, 100, 50],
        OutputMode::Complete,
        |_, df| {
            df.group_by(vec![
                window(col("time"), "10 seconds").unwrap(),
                col("kind"),
            ])
            .count()
        },
    );
    assert_eq!(batch, streaming);
}

#[test]
fn stream_static_join_prefix_consistent() {
    let rows: Vec<Row> = (0..150).map(make_row).collect();
    let lookup = RecordBatch::from_rows(
        Schema::of(vec![
            Field::new("u", DataType::Utf8),
            Field::new("region", DataType::Utf8),
        ]),
        &(0..7)
            .map(|i| row![format!("u{i}"), if i % 2 == 0 { "west" } else { "east" }])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let (batch, streaming) = run_both(
        &rows,
        &[10, 75, 65],
        OutputMode::Complete,
        move |ctx, df| {
            let users = ctx
                .read_table("regions", vec![lookup.clone()])
                .unwrap();
            df.join(&users, JoinType::Inner, vec![(col("user"), col("u"))])
                .group_by(vec![col("region")])
                .agg(vec![sum(col("amount"))])
        },
    );
    assert_eq!(batch, streaming);
    assert_eq!(batch.len(), 2);
}

#[test]
fn distinct_prefix_consistent() {
    let rows: Vec<Row> = (0..120).map(make_row).collect();
    let (batch, streaming) = run_both(
        &rows,
        &[3, 3, 3, 111],
        OutputMode::Append,
        |_, df| df.select(vec![col("user"), col("kind")]).distinct(),
    );
    assert_eq!(batch, streaming);
}

#[test]
fn sql_queries_prefix_consistent() {
    let rows: Vec<Row> = (0..200).map(make_row).collect();
    // Streaming via SQL.
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("events", 1).unwrap();
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(
        BusSource::new(bus.clone(), "events", event_schema()).unwrap(),
    ))
    .unwrap();
    let df = sql(
        &ctx,
        "SELECT user, COUNT(*) AS n, SUM(amount) AS total FROM events \
         WHERE kind = 'view' GROUP BY user",
    )
    .unwrap();
    let sink = MemorySink::new("out");
    let mut query = df
        .write_stream()
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .start_sync()
        .unwrap();
    for chunk in rows.chunks(33) {
        bus.append("events", 0, chunk.iter().cloned()).unwrap();
        query.process_available().unwrap();
    }
    let mut streaming = sink.snapshot();
    streaming.sort();
    // Batch via the same SQL text.
    let bctx = StreamingContext::new();
    bctx.read_table(
        "events",
        vec![RecordBatch::from_rows(event_schema(), &rows).unwrap()],
    )
    .unwrap();
    let mut batch = sql(
        &bctx,
        "SELECT user, COUNT(*) AS n, SUM(amount) AS total FROM events \
         WHERE kind = 'view' GROUP BY user",
    )
    .unwrap()
    .collect()
    .unwrap()
    .to_rows();
    batch.sort();
    assert_eq!(batch, streaming);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random data, random epoch boundaries: grouped aggregation over a
    /// stream equals the batch result over the same prefix — for every
    /// prefix the splits define.
    #[test]
    fn prop_aggregation_any_split(
        seeds in prop::collection::vec(any::<u64>(), 1..120),
        cuts in prop::collection::vec(any::<usize>(), 0..6),
    ) {
        let rows: Vec<Row> = seeds.iter().map(|&s| make_row(s)).collect();
        let epochs = splits(rows.len(), &cuts);
        let (batch, streaming) = run_both(
            &rows,
            &epochs,
            OutputMode::Complete,
            |_, df| {
                df.group_by(vec![col("user"), col("kind")])
                    .agg(vec![count_star(), sum(col("amount")), min(col("amount")), max(col("amount"))])
            },
        );
        prop_assert_eq!(batch, streaming);
    }

    /// Update-mode incremental output, accumulated through an upserting
    /// sink, converges to the batch result regardless of splits.
    #[test]
    fn prop_update_mode_converges(
        seeds in prop::collection::vec(any::<u64>(), 1..100),
        cuts in prop::collection::vec(any::<usize>(), 0..5),
    ) {
        let rows: Vec<Row> = seeds.iter().map(|&s| make_row(s)).collect();
        let epochs = splits(rows.len(), &cuts);
        let (batch, streaming) = run_both(
            &rows,
            &epochs,
            OutputMode::Update,
            |_, df| df.group_by(vec![col("user")]).agg(vec![sum(col("amount"))]),
        );
        prop_assert_eq!(batch, streaming);
    }
}
