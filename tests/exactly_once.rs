//! Exactly-once output under crashes (§6.1).
//!
//! The epoch protocol's claim: "if the streaming application fails,
//! only one epoch may be partially written", and recovery re-runs it
//! against an idempotent sink, so the final output equals a
//! crash-free run. These tests crash the engine at every protocol
//! step — after the offset-log write, after the sink write, after the
//! commit-log write — for several query shapes, then restart on the
//! same durable state and compare against a reference run that never
//! crashed.

use std::collections::HashMap;
use std::sync::Arc;

use ss_common::fault::{FaultMode, FaultTrigger};
use ss_core::microbatch::{failpoints, EpochRun, MicroBatchConfig, MicroBatchExecution};
use ss_exec::MemoryCatalog;
use structured_streaming::prelude::*;

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn feed(bus: &MessageBus, n: u64, start: u64) {
    for i in start..start + n {
        let key = format!("k{}", i % 5);
        bus.append(
            "in",
            (i % 2) as u32,
            vec![row![key, i as i64, Value::Timestamp(i as i64 * 1_000_000)]],
        )
        .unwrap();
    }
}

fn count_plan(ctx: &StreamingContext) -> Arc<ss_plan::LogicalPlan> {
    ctx.table("in")
        .unwrap()
        .group_by(vec![col("key")])
        .agg(vec![count_star(), sum(col("v"))])
        .plan()
}

fn try_engine(
    bus: Arc<MessageBus>,
    sink: Arc<MemorySink>,
    backend: Arc<MemoryBackend>,
    mode: OutputMode,
    failure: Option<&str>,
) -> Result<MicroBatchExecution, SsError> {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(BusSource::new(bus, "in", schema()).unwrap()))
        .unwrap();
    let plan = count_plan(&ctx);
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    let config = MicroBatchConfig {
        max_records_per_trigger: Some(10),
        adaptive_batching: false,
        ..Default::default()
    };
    if let Some(point) = failure {
        // Fire on every hit, matching the always-on injection the old
        // hard-coded failure points had.
        config
            .faults
            .configure(point, FaultTrigger::EveryNth { n: 1 }, FaultMode::Error);
    }
    MicroBatchExecution::new(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink,
        mode,
        backend,
        config,
    )
}

fn engine(
    bus: Arc<MessageBus>,
    sink: Arc<MemorySink>,
    backend: Arc<MemoryBackend>,
    mode: OutputMode,
    failure: Option<&str>,
) -> MicroBatchExecution {
    try_engine(bus, sink, backend, mode, failure).unwrap()
}

/// Reference: a crash-free run over the same input shape.
fn reference(mode: OutputMode) -> Vec<Row> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    feed(&bus, 40, 0);
    let sink = MemorySink::new("ref");
    let mut eng = engine(bus.clone(), sink.clone(), Arc::new(MemoryBackend::new()), mode, None);
    eng.process_available().unwrap();
    feed(&bus, 25, 40);
    eng.process_available().unwrap();
    sink.snapshot()
}

fn crash_and_recover(mode: OutputMode, failure: &str) -> Vec<Row> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let backend = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    feed(&bus, 40, 0);
    {
        // Run some clean epochs first, then hit the injected failure.
        let mut eng = engine(bus.clone(), sink.clone(), backend.clone(), mode, Some(failure));
        let err = loop {
            match eng.run_epoch() {
                Ok(EpochRun::Ran(_)) => continue,
                Ok(EpochRun::Idle) => panic!("failure injection never fired"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("injected failure"), "{err}");
    } // crash: engine dropped; WAL/state/sink survive
    feed(&bus, 25, 40);
    let mut eng = engine(bus.clone(), sink.clone(), backend, mode, None);
    eng.process_available().unwrap();
    sink.snapshot()
}

#[test]
fn crash_after_offset_write_complete_mode() {
    // Only the FIRST epoch can fail AfterOffsetWrite (injection fires
    // every epoch), so the whole stream processes after recovery.
    for mode in [OutputMode::Complete, OutputMode::Update] {
        let got = crash_and_recover(mode, failpoints::AFTER_OFFSET_WRITE);
        assert_eq!(got, reference(mode), "{mode}");
    }
}

#[test]
fn crash_after_sink_write_is_not_duplicated() {
    for mode in [OutputMode::Complete, OutputMode::Update] {
        let got = crash_and_recover(mode, failpoints::AFTER_SINK_WRITE);
        assert_eq!(got, reference(mode), "{mode}");
    }
}

#[test]
fn crash_after_commit_write_before_checkpoint() {
    for mode in [OutputMode::Complete, OutputMode::Update] {
        let got = crash_and_recover(mode, failpoints::AFTER_COMMIT_WRITE);
        assert_eq!(got, reference(mode), "{mode}");
    }
}

#[test]
fn repeated_crashes_still_converge() {
    // Crash at a different point on each incarnation.
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let backend = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    feed(&bus, 40, 0);
    for failure in [
        failpoints::AFTER_OFFSET_WRITE,
        failpoints::AFTER_SINK_WRITE,
        failpoints::AFTER_COMMIT_WRITE,
    ] {
        // The injection may already fire while *recovering* the epoch
        // the previous incarnation left in flight — a crash during
        // recovery, which the next incarnation must also absorb.
        let Ok(mut eng) = try_engine(
            bus.clone(),
            sink.clone(),
            backend.clone(),
            OutputMode::Update,
            Some(failure),
        ) else {
            continue;
        };
        let _ = loop {
            match eng.run_epoch() {
                Ok(EpochRun::Ran(_)) => continue,
                Ok(EpochRun::Idle) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
    }
    feed(&bus, 25, 40);
    let mut eng = engine(bus.clone(), sink.clone(), backend, OutputMode::Update, None);
    eng.process_available().unwrap();
    assert_eq!(sink.snapshot(), reference(OutputMode::Update));
}

#[test]
fn recovery_with_sparse_checkpoints_replays_from_wal() {
    // checkpoint_interval = 4: most epochs have no state snapshot, so
    // recovery must restore an older snapshot and re-execute committed
    // epochs from the replayable source (§6.1 step 4).
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let backend = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");
    feed(&bus, 40, 0);
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(BusSource::new(bus.clone(), "in", schema()).unwrap()))
        .unwrap();
    let plan = count_plan(&ctx);
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    let config = MicroBatchConfig {
        max_records_per_trigger: Some(7),
        adaptive_batching: false,
        checkpoint_interval: 4,
        ..Default::default()
    };
    {
        let mut eng = MicroBatchExecution::new(
            "q",
            &plan,
            sources.clone(),
            Arc::new(MemoryCatalog::new()),
            sink.clone(),
            OutputMode::Update,
            backend.clone(),
            config.clone(),
        )
        .unwrap();
        eng.process_available().unwrap();
        assert!(eng.current_epoch() >= 5);
    } // crash
    feed(&bus, 25, 40);
    let mut eng = MicroBatchExecution::new(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink.clone(),
        OutputMode::Update,
        backend,
        config,
    )
    .unwrap();
    eng.process_available().unwrap();
    assert_eq!(sink.snapshot(), reference(OutputMode::Update));
}
