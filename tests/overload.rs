//! End-to-end overload robustness: admission control, bounded topics
//! and memory-pressure spill working together against a sink that
//! cannot keep up.
//!
//! The acceptance bar: under a throttled sink, epoch latency and
//! state memory stay bounded while the PID admission controller and
//! the state-store spill path visibly engage (metrics prove it); once
//! the throttle is removed the backlog drains and the result is
//! identical to an unthrottled run of the same input.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use structured_streaming::prelude::*;
use structured_streaming::ss_bus::{OverflowPolicy, TopicConfig};
use structured_streaming::ss_common::{MetricValue, Result as SsResult};
use structured_streaming::ss_core::microbatch::{
    EpochRun, MemoryBudget, MicroBatchConfig, MicroBatchExecution,
};
use structured_streaming::ss_core::RateControllerConfig;
use structured_streaming::ss_exec::MemoryCatalog;

/// A sink wrapper with a settable per-commit delay — a stand-in for a
/// slow external system (rate-limited API, overloaded database).
struct ThrottledSink {
    inner: Arc<MemorySink>,
    delay_us: AtomicU64,
}

impl ThrottledSink {
    fn new(inner: Arc<MemorySink>, delay_us: u64) -> Arc<ThrottledSink> {
        Arc::new(ThrottledSink {
            inner,
            delay_us: AtomicU64::new(delay_us),
        })
    }

    fn set_delay_us(&self, us: u64) {
        self.delay_us.store(us, Ordering::SeqCst);
    }
}

impl Sink for ThrottledSink {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn commit_epoch(&self, epoch: u64, output: &EpochOutput) -> SsResult<()> {
        let d = self.delay_us.load(Ordering::SeqCst);
        if d > 0 {
            thread::sleep(Duration::from_micros(d));
        }
        self.inner.commit_epoch(epoch, output)
    }

    fn truncate_after(&self, epoch: u64) -> SsResult<()> {
        self.inner.truncate_after(epoch)
    }

    fn rows_written(&self) -> u64 {
        self.inner.rows_written()
    }
}

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn feed(bus: &MessageBus, topic: &str, n: u64, start: u64) {
    let partitions = bus.num_partitions(topic).unwrap() as u64;
    for i in start..start + n {
        bus.append(
            topic,
            (i % partitions) as u32,
            vec![row![
                format!("k{}", i % 5),
                i as i64,
                Value::Timestamp(i as i64 * 1_000_000)
            ]],
        )
        .unwrap();
    }
}

fn build_engine(
    bus: Arc<MessageBus>,
    sink: Arc<dyn Sink>,
    config: MicroBatchConfig,
) -> MicroBatchExecution {
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(BusSource::new(bus, "in", schema()).unwrap()))
        .unwrap();
    let plan = ctx
        .table("in")
        .unwrap()
        .group_by(vec![
            window(col("time"), "10 seconds").unwrap(),
            col("key"),
        ])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    MicroBatchExecution::new(
        "overload",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink,
        OutputMode::Update,
        Arc::new(MemoryBackend::new()),
        config,
    )
    .unwrap()
}

const TOTAL_ROWS: u64 = 300;

/// The same input through an unthrottled, unlimited engine.
fn reference() -> Vec<Row> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    feed(&bus, "in", TOTAL_ROWS, 0);
    let sink = MemorySink::new("ref");
    let mut eng = build_engine(bus, sink.clone(), MicroBatchConfig::default());
    eng.process_available().unwrap();
    let mut rows = sink.snapshot();
    rows.sort();
    rows
}

#[test]
fn overloaded_query_stays_bounded_then_drains_to_parity() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    // The whole input arrives at once: a backlog no single epoch may
    // swallow.
    feed(&bus, "in", TOTAL_ROWS, 0);

    let mem = MemorySink::new("out");
    // 3ms per commit versus a 2ms trigger interval: the sink can never
    // keep up, whatever the admission rate.
    let sink = ThrottledSink::new(mem.clone(), 3_000);
    let config = MicroBatchConfig {
        max_records_per_trigger: Some(10),
        adaptive_batching: false,
        checkpoint_interval: 1,
        rate_controller: Some(RateControllerConfig {
            min_rate: 1.0,
            batch_interval_us: 2_000,
            ..RateControllerConfig::default()
        }),
        state_budget: MemoryBudget {
            soft_limit_bytes: Some(512),
            hard_limit_bytes: None,
        },
        ..Default::default()
    };
    let mut eng = build_engine(bus.clone(), sink.clone(), config);

    // Phase 1: overloaded. Run a fixed number of epochs; the system
    // must fall behind gracefully, not explode.
    for _ in 0..15 {
        match eng.run_epoch().unwrap() {
            EpochRun::Ran(_) => {}
            EpochRun::Idle => break,
        }
    }
    let records: Vec<QueryProgress> = eng.progress().all().cloned().collect();
    assert!(!records.is_empty());
    // Admission held: no epoch ever exceeded the hard cap, so epoch
    // latency is bounded by (cap × per-row cost + sink delay), not by
    // the backlog size.
    assert!(records.iter().all(|p| p.admitted_rows <= 10));
    assert!(records.iter().all(|p| p.batch_duration_us < 1_000_000));
    // The PID controller engaged: a rate limit was in force while rows
    // were visibly held back.
    assert!(
        records
            .iter()
            .any(|p| p.rate_limit.is_some() && p.backlog_rows > 0),
        "rate limiter never engaged"
    );
    // Epochs overran the 2ms interval, and the progress records say so.
    assert!(records.iter().any(|p| p.scheduling_delay_us > 0));
    // Memory pressure engaged: state spilled to the checkpoint backend
    // and in-memory state stayed under the soft limit after each spill.
    match eng.metrics().value("ss_state_spills_total", &[]) {
        Some(MetricValue::Counter(n)) => assert!(n >= 1, "no spills recorded"),
        other => panic!("missing spill counter: {other:?}"),
    }
    assert!(
        records.iter().any(|p| p.spilled_bytes > 0),
        "progress never surfaced spilled bytes"
    );
    let last = records.last().unwrap();
    assert!(
        last.state_bytes <= 512,
        "state memory {}B exceeds the soft limit after spill",
        last.state_bytes
    );
    assert!(last.backlog_rows > 0, "test never actually fell behind");
    assert!(eng.metrics().render().contains("ss_admission_rate_limit"));

    // Phase 2: the throttle lifts; the backlog must drain completely.
    sink.set_delay_us(0);
    eng.process_available().unwrap();
    assert_eq!(eng.progress().total_input_rows(), TOTAL_ROWS);

    // And the result is exactly what an unthrottled run produces.
    let mut rows = mem.snapshot();
    rows.sort();
    assert_eq!(rows, reference());
}

#[test]
fn bounded_topic_blocks_producer_and_backpressure_resolves() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic_with(
        "in",
        TopicConfig {
            partitions: 1,
            capacity: Some(8),
            overflow: OverflowPolicy::Block {
                timeout_us: 5_000_000,
            },
        },
    )
    .unwrap();
    let sink = MemorySink::new("out");
    let mut eng = build_engine(bus.clone(), sink.clone(), MicroBatchConfig::default());

    // A producer that wants to push far more than the topic holds; it
    // only finishes if the consumer side keeps freeing space.
    let producer = {
        let bus = bus.clone();
        thread::spawn(move || feed(&bus, "in", 100, 0))
    };

    let mut drained = 0u64;
    for _ in 0..2_000 {
        eng.run_epoch().unwrap();
        drained = eng.progress().total_input_rows();
        // Retention never exceeds the configured bound.
        assert!(bus.retained_records("in").unwrap() <= 8);
        // Completing the cycle: truncate consumed offsets so the
        // blocked producer can make progress.
        if let Some(offsets) = eng.positions().get("in").cloned() {
            for (p, off) in offsets {
                bus.truncate_before("in", p, off).unwrap();
            }
        }
        if drained == 100 {
            break;
        }
        thread::sleep(Duration::from_micros(200));
    }
    producer.join().expect("producer died: backpressure deadlock");
    eng.process_available().unwrap();
    assert_eq!(eng.progress().total_input_rows(), 100);
    assert_eq!(drained, 100);
    // Exactly-once held end to end: per-key counts sum to the input.
    let total: i64 = sink
        .snapshot()
        .iter()
        .map(|r| match r.values()[3] {
            Value::Int64(n) => n,
            ref v => panic!("unexpected count column: {v:?}"),
        })
        .sum();
    assert_eq!(total, 100);
}

#[test]
fn drop_oldest_topic_sheds_and_the_query_reports_it() {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic_with(
        "in",
        TopicConfig {
            partitions: 1,
            capacity: Some(10),
            overflow: OverflowPolicy::DropOldest,
        },
    )
    .unwrap();
    // 50 rows into a 10-slot topic: 40 shed before any consumer shows
    // up — deliberate load shedding, not silent loss.
    feed(&bus, "in", 50, 0);
    assert_eq!(bus.shed_records("in").unwrap(), 40);

    let sink = MemorySink::new("out");
    let mut eng = build_engine(bus, sink.clone(), MicroBatchConfig::default());
    eng.process_available().unwrap();

    // Only the survivors were processed, and the progress record
    // carries the shed count so the loss is observable.
    assert_eq!(eng.progress().total_input_rows(), 10);
    let last = eng.progress().last().unwrap();
    assert_eq!(last.shed_records, 40);
}
