//! Vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with parking_lot's poison-free
//! API: `lock()`, `read()` and `write()` return guards directly rather
//! than `LockResult`s. A poisoned lock means a panic already unwound a
//! critical section on another thread; like parking_lot, we carry on
//! with the data as-is (the panic itself is the reported failure).
//!
//! The real crate's adaptive spinning is irrelevant to correctness;
//! contended paths here simply pay the std parking cost.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// A guard releasing the [`Mutex`] on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn ignore_poison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.inner.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// A shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// An exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.inner.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.inner.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: later lockers proceed, no Err.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
