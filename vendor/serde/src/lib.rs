//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the subset of serde it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, serialized to and from
//! JSON via the in-tree `serde_json`. Instead of the real crate's
//! visitor-based zero-copy architecture, this model round-trips
//! through a small JSON-shaped [`Content`] tree: `Serialize` lowers a
//! value into `Content`, `Deserialize` rebuilds it. That is exactly
//! the fidelity the engine needs (checkpoint files, WAL records and
//! wire rows are all JSON) at a tiny fraction of the surface area.
//!
//! Compatibility notes:
//! * Externally-tagged enum representation, like real serde: unit
//!   variants as `"Name"`, payload variants as `{"Name": ...}`.
//! * Newtype structs and newtype variants are transparent.
//! * Map keys serialize as JSON strings; integer keys round-trip by
//!   parsing the key string back (matches serde_json's behavior for
//!   `BTreeMap<u32, _>` et al.).
//! * `Arc<T>`/`Rc<T>` serialize through their contents (the real
//!   crate's `rc` feature).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model values lower into.
///
/// Mirrors JSON, with integers kept exact (`I64`/`U64`) rather than
/// coerced to floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key/value pairs in insertion order. Keys are stringified when
    /// printed as JSON.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// A short name for error messages ("expected a sequence, got a map").
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::I64(_) | Content::U64(_) => "an integer",
            Content::F64(_) => "a float",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        }
    }
}

/// Deserialization failure: what was expected vs. what the data held.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into the [`Content`] data model.
pub trait Serialize {
    fn ser(&self) -> Content;
}

/// Rebuild `Self` from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn deser(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code (public, hidden from docs).
// ---------------------------------------------------------------------------

const NULL: Content = Content::Null;

/// Look up a struct field by name; absent fields read as `Null` so
/// `Option` fields added later deserialize as `None`.
#[doc(hidden)]
pub fn map_get<'a>(content: &'a Content, key: &str) -> Result<&'a Content, DeError> {
    match content {
        Content::Map(entries) => Ok(entries
            .iter()
            .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
            .map(|(_, v)| v)
            .unwrap_or(&NULL)),
        other => Err(DeError(format!(
            "expected a map with field `{key}`, got {}",
            other.kind()
        ))),
    }
}

/// Expect a sequence of exactly `len` items (tuple structs/variants).
#[doc(hidden)]
pub fn seq_items(content: &Content, len: usize) -> Result<&[Content], DeError> {
    match content {
        Content::Seq(items) if items.len() == len => Ok(items),
        Content::Seq(items) => Err(DeError(format!(
            "expected a sequence of {len} items, got {}",
            items.len()
        ))),
        other => Err(DeError(format!(
            "expected a sequence, got {}",
            other.kind()
        ))),
    }
}

/// The single `{"Variant": payload}` entry of an externally-tagged enum.
#[doc(hidden)]
pub fn variant_of(content: &Content) -> Result<(&str, &Content), DeError> {
    match content {
        Content::Str(name) => Ok((name.as_str(), &NULL)),
        Content::Map(entries) if entries.len() == 1 => match &entries[0] {
            (Content::Str(name), payload) => Ok((name.as_str(), payload)),
            _ => Err(DeError("enum variant tag must be a string".into())),
        },
        other => Err(DeError(format!(
            "expected an enum (string or single-entry map), got {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn ser(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deser(content: &Content) -> Result<bool, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected a boolean, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deser(content: &Content) -> Result<$t, DeError> {
                let v: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError(format!("{v} overflows i64")))?,
                    // Map keys arrive as strings; parse them back.
                    Content::Str(s) => s
                        .parse()
                        .map_err(|_| DeError(format!("`{s}` is not an integer")))?,
                    other => {
                        return Err(DeError(format!(
                            "expected an integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deser(content: &Content) -> Result<$t, DeError> {
                let v: u64 = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError(format!("{v} is negative")))?,
                    Content::Str(s) => s
                        .parse()
                        .map_err(|_| DeError(format!("`{s}` is not an unsigned integer")))?,
                    other => {
                        return Err(DeError(format!(
                            "expected an unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn ser(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deser(content: &Content) -> Result<f64, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            // JSON cannot represent NaN/Inf; serde_json writes null.
            Content::Null => Ok(f64::NAN),
            other => Err(DeError(format!("expected a number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn ser(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deser(content: &Content) -> Result<f32, DeError> {
        f64::deser(content).map(|v| v as f32)
    }
}

impl Serialize for str {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn ser(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deser(content: &Content) -> Result<String, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected a string, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deser(content: &Content) -> Result<char, DeError> {
        let s = String::deser(content)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected a single character, got `{s}`"))),
        }
    }
}

impl Serialize for () {
    fn ser(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deser(_: &Content) -> Result<(), DeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Content {
        match self {
            Some(v) => v.ser(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deser(content: &Content) -> Result<Option<T>, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deser(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deser(content: &Content) -> Result<Vec<T>, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deser).collect(),
            other => Err(DeError(format!(
                "expected a sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser(&self) -> Content {
                Content::Seq(vec![$(self.$n.ser()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deser(content: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = seq_items(content, LEN)?;
                Ok(($($t::deser(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.ser(), v.ser())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deser(content: &Content) -> Result<BTreeMap<K, V>, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deser(k)?, V::deser(v)?)))
                .collect(),
            other => Err(DeError(format!("expected a map, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn ser(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.ser(), v.ser())).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deser(content: &Content) -> Result<HashMap<K, V, S>, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deser(k)?, V::deser(v)?)))
                .collect(),
            other => Err(DeError(format!("expected a map, got {}", other.kind()))),
        }
    }
}

// The real crate gates these behind the `rc` feature; always on here.

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deser(content: &Content) -> Result<Arc<T>, DeError> {
        T::deser(content).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn deser(content: &Content) -> Result<Arc<str>, DeError> {
        match content {
            Content::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(DeError(format!("expected a string, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn deser(content: &Content) -> Result<Rc<T>, DeError> {
        T::deser(content).map(Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deser(content: &Content) -> Result<Box<T>, DeError> {
        T::deser(content).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_round_trip_via_string_keys() {
        // Map keys come back as strings; integer types re-parse them.
        assert_eq!(u32::deser(&Content::Str("17".into())).unwrap(), 17);
        assert_eq!(i64::deser(&Content::Str("-3".into())).unwrap(), -3);
        assert!(u32::deser(&Content::Str("x".into())).is_err());
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<i64>::deser(&Content::Null).unwrap(), None);
        assert_eq!(Option::<i64>::deser(&Content::I64(5)).unwrap(), Some(5));
        assert_eq!(None::<i64>.ser(), Content::Null);
    }

    #[test]
    fn btreemap_int_keys() {
        let mut m: BTreeMap<u32, u64> = BTreeMap::new();
        m.insert(2, 20);
        m.insert(1, 10);
        let c = m.ser();
        let back = BTreeMap::<u32, u64>::deser(&c).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_struct_field_reads_as_null() {
        let map = Content::Map(vec![(Content::Str("a".into()), Content::I64(1))]);
        assert_eq!(map_get(&map, "a").unwrap(), &Content::I64(1));
        assert_eq!(map_get(&map, "b").unwrap(), &Content::Null);
        assert!(map_get(&Content::I64(0), "a").is_err());
    }
}
