//! Vendored stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `any::<T>()`, `Just`, integer-range strategies,
//! `prop::collection::vec`, `proptest::option::of`, `prop_map` and
//! `ProptestConfig::with_cases` — over a deterministic SplitMix64
//! generator. Two deliberate simplifications versus the real crate:
//!
//! * **No shrinking.** A failing case reports the case number; rerun
//!   with the same build to reproduce (generation is seeded per case,
//!   so failures are stable across runs).
//! * **No persistence files.** Every run executes the same cases.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` — everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Per-case rng: the same (seed, case) always generates the same
    /// inputs, so failures reproduce without persistence files.
    pub fn for_case(case: u32) -> TestRng {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15_u64 ^ ((case as u64) << 1),
        }
    }

    /// SplitMix64 step.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`: fail
/// the current case without panicking mid-generation (the surrounding
/// `proptest!` expansion turns the `Err` into a panic with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional context format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional context format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  both: {:?}", ::std::format!($($fmt)+), __l
            ));
        }
    }};
}

/// Weighted-choice union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)*
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, __msg);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, n in 1usize..20) {
            prop_assert!((-50..50).contains(&x), "x out of range: {}", x);
            prop_assert!((1..20).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                Just(-1i64),
                (any::<u8>(), any::<u8>()).prop_map(|(a, b)| (a as i64) + (b as i64)),
            ],
            opt in prop::option::of(any::<u32>()),
        ) {
            prop_assert!(x == -1 || (0..=510).contains(&x));
            let _ = opt;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(crate::arbitrary::any::<u64>(), 1..10);
        let a = s.generate(&mut crate::TestRng::for_case(3));
        let b = s.generate(&mut crate::TestRng::for_case(3));
        assert_eq!(a, b);
    }
}
