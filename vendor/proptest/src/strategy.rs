//! The `Strategy` trait and combinators.

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// `generate` takes `&self` so strategies stay object-safe (the
/// `prop_oneof!` union boxes its arms); combinators that consume
/// `self` are `where Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Equal-weight choice between strategies of one value type
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Union<T> {
        Union { arms: Vec::new() }
    }

    pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Union<T> {
        self.arms.push(Box::new(strategy));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// Integer range strategies: `-1000i64..1000` is itself a strategy.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// Tuple strategies generate element-wise.
macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}
