//! `any::<T>()`: full-range generation for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`, e.g. `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly uniform in [-1e6, 1e6): plenty for numeric
        // property tests without NaN/Inf edge cases by default.
        (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 2e6
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated strings debuggable.
        (b' ' + (rng.below(95)) as u8) as char
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(16) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}
