//! Run configuration (`ProptestConfig`).

/// How many generated cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate runs 256; 64 keeps the suite quick while still
        // exploring a useful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}
