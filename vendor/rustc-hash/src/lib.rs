//! Vendored stand-in for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of the external crates it uses (see
//! `vendor/README.md`). This module reimplements the Fx hash — the
//! multiply-and-rotate word hasher used by rustc — with the same public
//! names (`FxHashMap`, `FxHashSet`, `FxHasher`, `FxBuildHasher`) so the
//! engine's hot hash paths keep their cheap, DoS-irrelevant hashing.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Builds [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: one multiply and a rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i64> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(x.as_bytes());
            hasher.finish()
        };
        assert_eq!(h("epoch"), h("epoch"));
        assert_ne!(h("epoch"), h("epochs"));
    }
}
