//! Vendored stand-in for `serde_derive`.
//!
//! Generates impls of the in-tree `serde`'s simplified `Serialize` /
//! `Deserialize` traits (see `vendor/serde`). Written against
//! `proc_macro` alone: the item is parsed by walking its token trees,
//! and the impl is emitted as source text and re-parsed — no `syn` or
//! `quote`, which this offline build environment cannot fetch.
//!
//! Supported shapes (everything the workspace derives on):
//! * named-field structs, tuple/newtype structs, unit structs
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, like real serde)
//! * type generics (`TypedColumn<T>`) — each parameter is bounded by
//!   the derived trait via a `where` clause
//!
//! Not supported (panics with a clear message): `#[serde(...)]`
//! attributes, where-clauses on the item, lifetime or const generics.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// A minimal model of the deriving item
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Generic parameter list verbatim, e.g. `< T : Clone , U >` ("" if none).
    generics_decl: String,
    /// Just the parameter names, e.g. ["T", "U"].
    params: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    /// Field count; 1 is a transparent newtype.
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

impl Item {
    /// `Foo < T , U >` — the type as written in an impl header.
    fn self_ty(&self) -> String {
        if self.params.is_empty() {
            self.name.clone()
        } else {
            format!("{} < {} >", self.name, self.params.join(" , "))
        }
    }

    /// `impl < T : Clone > Trait for Foo < T > where T : Trait` header.
    fn impl_header(&self, trait_path: &str) -> String {
        let mut h = format!("impl {} {} for {}", self.generics_decl, trait_path, self.self_ty());
        if !self.params.is_empty() {
            let bounds: Vec<String> = self
                .params
                .iter()
                .map(|p| format!("{p} : {trait_path}"))
                .collect();
            let _ = write!(h, " where {}", bounds.join(" , "));
        }
        h
    }
}

// ---------------------------------------------------------------------------
// Token-walking parser
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

/// Skip `#[...]` attributes (including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        i += 2; // '#' then the bracketed group
    }
    i
}

/// Skip `pub` / `pub(crate)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("derive(Serialize/Deserialize): expected `struct` or `enum`, got `{}`", tokens[i]);
    };
    i += 1;
    let name = tokens[i].to_string();
    i += 1;

    let mut generics_decl = String::new();
    let mut params = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        let start = i;
        let mut depth = 0i32;
        let mut expecting_name = true;
        loop {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                t if is_punct(t, ',') && depth == 1 => expecting_name = true,
                t if is_punct(t, '\'') => {
                    panic!("derive on `{name}`: lifetime generics are not supported by the vendored serde_derive")
                }
                TokenTree::Ident(id) if depth == 1 && expecting_name => {
                    let id = id.to_string();
                    if id == "const" {
                        panic!("derive on `{name}`: const generics are not supported by the vendored serde_derive");
                    }
                    params.push(id);
                    expecting_name = false;
                }
                _ => {}
            }
            i += 1;
        }
        generics_decl = tokens[start..i]
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
    }

    // Body: the next brace group (named struct / enum), paren group
    // (tuple struct), or `;` (unit struct).
    if let Some(tok) = tokens.get(i) {
        match tok {
            t if is_ident(t, "where") => {
                panic!("derive on `{name}`: where-clauses are not supported by the vendored serde_derive")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let kind = if is_enum {
                    Kind::Enum(parse_variants(&g.stream(), &name))
                } else {
                    Kind::NamedStruct(parse_named_fields(&g.stream()))
                };
                return Item { name, generics_decl, params, kind };
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                let n = count_tuple_fields(&g.stream());
                return Item { name, generics_decl, params, kind: Kind::TupleStruct(n) };
            }
            t if is_punct(t, ';') && !is_enum => {
                return Item { name, generics_decl, params, kind: Kind::UnitStruct };
            }
            other => panic!("derive on `{name}`: unexpected token `{other}` before the item body"),
        }
    }
    panic!("derive on `{name}`: no item body found");
}

/// Field names of a `{ a: T, pub b: U }` body.
fn parse_named_fields(stream: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        fields.push(tokens[i].to_string());
        i += 2; // name, ':'
        // Skip the type: to the next comma outside angle brackets.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a `(T, U)` tuple body.
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    let mut last_was_comma = false;
    for t in &tokens {
        last_was_comma = false;
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            n += 1;
            last_was_comma = true;
        }
    }
    if last_was_comma {
        n -= 1; // trailing comma
    }
    n
}

fn parse_variants(stream: &TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive on `{enum_name}`: expected a variant name, got `{other}`"),
        };
        i += 1;
        let fields = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    VariantFields::Tuple(count_tuple_fields(&g.stream()))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    VariantFields::Named(parse_named_fields(&g.stream()))
                }
                _ => VariantFields::Unit,
            }
        } else {
            VariantFields::Unit
        };
        if i < tokens.len() && is_punct(&tokens[i], '=') {
            panic!("derive on `{enum_name}`: explicit discriminants are not supported by the vendored serde_derive");
        }
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

const C: &str = "::serde::Content";

fn str_content(s: &str) -> String {
    format!("{C} :: Str (::std::string::String::from({s:?}))")
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::ser(&self.{f}))", str_content(f)))
                .collect();
            let _ = write!(body, "{C} :: Map (::std::vec![{}])", entries.join(" , "));
        }
        Kind::TupleStruct(1) => {
            body.push_str("::serde::Serialize::ser(&self.0)");
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::ser(&self.{k})"))
                .collect();
            let _ = write!(body, "{C} :: Seq (::std::vec![{}])", items.join(" , "));
        }
        Kind::UnitStruct => body.push_str(&format!("{C} :: Null")),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = str_content(&v.name);
                let path = format!("{} :: {}", item.name, v.name);
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(arms, "{path} => {tag} ,");
                    }
                    VariantFields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{path}(__f0) => {C} :: Map (::std::vec![({tag}, ::serde::Serialize::ser(__f0))]) ,"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::ser({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{path}({}) => {C} :: Map (::std::vec![({tag}, {C} :: Seq (::std::vec![{}]))]) ,",
                            binds.join(" , "),
                            items.join(" , ")
                        );
                    }
                    VariantFields::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| format!("({}, ::serde::Serialize::ser({f}))", str_content(f)))
                            .collect();
                        let _ = write!(
                            arms,
                            "{path} {{ {} }} => {C} :: Map (::std::vec![({tag}, {C} :: Map (::std::vec![{}]))]) ,",
                            fields.join(" , "),
                            entries.join(" , ")
                        );
                    }
                }
            }
            let _ = write!(body, "match self {{ {arms} }}");
        }
    }
    format!(
        "{header} {{ fn ser(&self) -> {C} {{ {body} }} }}",
        header = item.impl_header("::serde::Serialize"),
    )
}

fn gen_deserialize(item: &Item) -> String {
    let ok = "::std::result::Result::Ok";
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f} : ::serde::Deserialize::deser(::serde::map_get(__c, {f:?})?)?")
                })
                .collect();
            let _ = write!(body, "{ok}({} {{ {} }})", item.name, inits.join(" , "));
        }
        Kind::TupleStruct(1) => {
            let _ = write!(body, "{ok}({}(::serde::Deserialize::deser(__c)?))", item.name);
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deser(&__items[{k}])?"))
                .collect();
            let _ = write!(
                body,
                "let __items = ::serde::seq_items(__c, {n})? ; {ok}({}({}))",
                item.name,
                items.join(" , ")
            );
        }
        Kind::UnitStruct => {
            let _ = write!(body, "{ok}({})", item.name);
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let path = format!("{} :: {}", item.name, v.name);
                let tag = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(arms, "{tag:?} => {ok}({path}) ,");
                    }
                    VariantFields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{tag:?} => {ok}({path}(::serde::Deserialize::deser(__payload)?)) ,"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deser(&__items[{k}])?"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{tag:?} => {{ let __items = ::serde::seq_items(__payload, {n})? ; {ok}({path}({})) }} ,",
                            items.join(" , ")
                        );
                    }
                    VariantFields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f} : ::serde::Deserialize::deser(::serde::map_get(__payload, {f:?})?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{tag:?} => {ok}({path} {{ {} }}) ,",
                            inits.join(" , ")
                        );
                    }
                }
            }
            let _ = write!(
                body,
                "let (__tag, __payload) = ::serde::variant_of(__c)? ; \
                 match __tag {{ {arms} __other => ::std::result::Result::Err(\
                 ::serde::DeError::new(::std::format!(\
                 \"unknown variant `{{}}` of {}\", __other))) }}",
                item.name
            );
        }
    }
    format!(
        "{header} {{ fn deser(__c: &{C}) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        header = item.impl_header("::serde::Deserialize"),
    )
}
