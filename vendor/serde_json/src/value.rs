//! The dynamic `Value`/`Number` API.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, DeError};

use crate::Result;

/// Object representation. The real crate uses an order-preserving map;
/// the connectors only ever `get` by key, so a `BTreeMap` suffices.
pub type Map<K, V> = BTreeMap<K, V>;

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Index into an object by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Displays as compact JSON, like the real crate.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        crate::print::compact(&serde::Serialize::ser(self), &mut out).map_err(|_| fmt::Error)?;
        f.write_str(&out)
    }
}

/// A JSON number: integer-exact where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::I64(v) => Some(*v),
            Number::U64(v) => i64::try_from(*v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::I64(v) => u64::try_from(*v).ok(),
            Number::U64(v) => Some(*v),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::I64(v) => Some(*v as f64),
            Number::U64(v) => Some(*v as f64),
            Number::F64(v) => Some(*v),
        }
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F64(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        let _ = crate::print::compact(&self.to_content(), &mut out);
        f.write_str(&out)
    }
}

impl Number {
    fn to_content(self) -> Content {
        match self {
            Number::I64(v) => Content::I64(v),
            Number::U64(v) => Content::U64(v),
            Number::F64(v) => Content::F64(v),
        }
    }
}

pub(crate) fn from_content(c: Content) -> Result<Value> {
    Ok(match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::I64(v) => Value::Number(Number::I64(v)),
        Content::U64(v) => Value::Number(Number::U64(v)),
        Content::F64(v) => {
            if v.is_finite() {
                Value::Number(Number::F64(v))
            } else {
                Value::Null
            }
        }
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(
            items
                .into_iter()
                .map(from_content)
                .collect::<Result<Vec<_>>>()?,
        ),
        Content::Map(entries) => Value::Object(crate::map_from_entries(entries)?),
    })
}

impl serde::Serialize for Value {
    fn ser(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => n.to_content(),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(serde::Serialize::ser).collect()),
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (Content::Str(k.clone()), serde::Serialize::ser(v)))
                    .collect(),
            ),
        }
    }
}

impl serde::Deserialize for Value {
    fn deser(content: &Content) -> std::result::Result<Value, DeError> {
        from_content(content.clone()).map_err(|e| DeError::new(e.to_string()))
    }
}
