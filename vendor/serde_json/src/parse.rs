//! Recursive-descent JSON parser producing `serde::Content`.

use serde::Content;

use crate::{Error, Result};

pub fn parse(text: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run up to the next quote or escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped on
                // ASCII delimiters, so this slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require the paired \uXXXX.
                    if !(self.eat_keyword("\\u")) {
                        return Err(self.err("unpaired surrogate in \\u escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate in \\u escape"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code)
                } else {
                    char::from_u32(hi)
                };
                out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}
