//! Vendored stand-in for the `serde_json` crate.
//!
//! Serializes through the vendored serde's [`Content`] model (see
//! `vendor/serde`): `to_string`/`to_vec_pretty` lower a value and
//! print it, `from_str`/`from_slice` parse into `Content` and rebuild.
//! The dynamic [`Value`]/[`Number`] API covers what the connectors use
//! (`as_object`, `get`, `as_i64`, `as_f64`, `Display`).
//!
//! Format compatibility kept from the real crate:
//! * pretty output is 2-space indented with `"key": value` (the WAL
//!   and checkpoint tests assert on that shape),
//! * non-string map keys are printed quoted (`{"3": ...}`),
//! * `\uXXXX` escapes (including surrogate pairs) parse correctly,
//!   and control characters are escaped on output.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, DeError, Deserialize, Serialize};

mod parse;
mod print;
mod value;

pub use value::{Map, Number, Value};

/// Parse or data-shape failure; wraps a message like the real crate's
/// line/column error (positions are byte offsets here).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print::compact(&value.ser(), &mut out)?;
    Ok(out)
}

/// Serialize `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print::pretty(&value.ser(), &mut out, 0)?;
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let content = parse::parse(text)?;
    Ok(T::deser(&content)?)
}

/// Deserialize a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| Error::msg(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(text)
}

/// Convert any serializable value into a dynamic [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    value::from_content(value.ser())
}

pub(crate) fn map_from_entries(entries: Vec<(Content, Content)>) -> Result<Map<String, Value>> {
    let mut map = BTreeMap::new();
    for (k, v) in entries {
        let key = match k {
            Content::Str(s) => s,
            Content::I64(v) => v.to_string(),
            Content::U64(v) => v.to_string(),
            other => {
                return Err(Error::msg(format!(
                    "JSON object keys must be strings, got {}",
                    other.kind()
                )))
            }
        };
        map.insert(key, value::from_content(v)?);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\nc").unwrap(), "\"a\\\"b\\nc\"");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
    }

    #[test]
    fn round_trip_collections() {
        let v = vec![1i64, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>(&text).unwrap(), v);

        let mut m: BTreeMap<u32, u64> = BTreeMap::new();
        m.insert(3, 30);
        m.insert(1, 10);
        let text = to_string(&m).unwrap();
        assert_eq!(text, "{\"1\":10,\"3\":30}");
        assert_eq!(from_str::<BTreeMap<u32, u64>>(&text).unwrap(), m);
    }

    #[test]
    fn pretty_format_matches_serde_json() {
        let mut m: BTreeMap<String, i64> = BTreeMap::new();
        m.insert("epoch".into(), 7);
        let text = String::from_utf8(to_vec_pretty(&m).unwrap()).unwrap();
        assert!(text.contains("\"epoch\": 7"), "pretty output was: {text}");
        assert!(text.starts_with("{\n  "));
        let empty: Vec<i64> = vec![];
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<i64>("not json").is_err());
        assert!(from_str::<i64>("[1,").is_err());
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<Vec<i64>>("[1 2]").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        // Surrogate pair: U+1F600.
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }

    #[test]
    fn dynamic_value_api() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, null], "c": 2.5, "s": "x"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("a").unwrap().as_i64(), Some(1));
        assert!(matches!(obj.get("s"), Some(Value::String(s)) if s == "x"));
        match obj.get("c").unwrap() {
            Value::Number(n) => {
                assert_eq!(n.as_f64(), Some(2.5));
                assert_eq!(n.as_i64(), None);
            }
            other => panic!("expected a number, got {other}"),
        }
        // Display is compact JSON.
        assert_eq!(from_str::<Value>(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_print_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        // Whole floats keep a trailing .0 so they re-parse as floats.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
