//! Compact and pretty (2-space) JSON printers over `serde::Content`.

use std::fmt::Write;

use serde::Content;

use crate::{Error, Result};

pub fn compact(c: &Content, out: &mut String) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => push_float(*v, out),
        Content::Str(s) => push_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_key(k, out)?;
                out.push(':');
                compact(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

pub fn pretty(c: &Content, out: &mut String, indent: usize) -> Result<()> {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
            Ok(())
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                push_key(k, out)?;
                out.push_str(": ");
                pretty(v, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
            Ok(())
        }
        other => compact(other, out),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Map keys print as JSON strings; integer keys are quoted, matching
/// serde_json's behavior for maps with integer keys.
fn push_key(k: &Content, out: &mut String) -> Result<()> {
    match k {
        Content::Str(s) => {
            push_escaped(s, out);
            Ok(())
        }
        Content::I64(v) => {
            let _ = write!(out, "\"{v}\"");
            Ok(())
        }
        Content::U64(v) => {
            let _ = write!(out, "\"{v}\"");
            Ok(())
        }
        other => Err(Error::msg(format!(
            "JSON object keys must be strings, got {}",
            other.kind()
        ))),
    }
}

/// JSON has no NaN/Infinity; serde_json prints them as null. Finite
/// whole floats keep a `.0` so they round-trip as floats.
fn push_float(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
