//! Vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's microbenches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `throughput`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `black_box` — over a simple calibrated wall-clock loop instead of
//! the real crate's statistical machinery. Results print as
//! `group/function: median-ish mean per iter (+ throughput)`; there
//! are no HTML reports, warm-up phases or outlier analysis.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a setup value is shared across `iter_batched` runs. The stub
/// regenerates the input per iteration for every size.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of related benchmark functions.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.mean;
        let mut line = format!(
            "{}/{}: {:>12}/iter",
            self.name,
            id,
            format_duration(mean)
        );
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.3e} elem/s)", per_sec(n)));
                }
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                    line.push_str(&format!("  ({:.3e} B/s)", per_sec(n)));
                }
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

/// Runs the measured closure and records a mean iteration time.
pub struct Bencher {
    mean: Duration,
}

/// Target per-measurement wall time; short enough that a full bench
/// binary stays in seconds, long enough to average out jitter.
const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it costs >= ~1% of TARGET.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET / 100 || batch >= 1 << 30 {
                break elapsed / (batch as u32).max(1);
            }
            batch *= 8;
        };
        // Measure: as many iterations as fit in TARGET.
        let iters = (TARGET.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / (iters as u32).max(1);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Time the routine only, regenerating the input outside the
        // measured region. Fixed iteration budget: setup may be much
        // more expensive than the routine, so stay modest.
        let iters = {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let one = start.elapsed();
            (TARGET.as_nanos() / one.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / (iters as u32).max(1);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// `criterion_group!(name, fn_a, fn_b, ...)`: a callable running each
/// benchmark function against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group_a, group_b)`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 10],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
