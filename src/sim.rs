//! Deterministic whole-system simulation: seeded chaos exploration on
//! virtual time.
//!
//! One `u64` seed fully determines a chaos schedule over a complete
//! HA deployment — a lease-fenced leader, a warm standby, replicated
//! checkpoint backends and a fenced sink — running under a
//! [`SimClock`]. The seed drives three streams:
//!
//! * **fault arming** — which failpoint, which mode (fatal error,
//!   transient error, hang) and how many passes to skip before firing;
//! * **virtual-clock waiter ordering** — same-instant timers release
//!   in a seed-drawn order, so backoffs, lease lapses and watchdog
//!   firings interleave reproducibly;
//! * **retry jitter** — the engine's decorrelated-jitter backoff is
//!   seeded from the scenario seed.
//!
//! Every observable step lands in a virtual-time-stamped trace. The
//! same seed replays the same trace byte for byte (serial execution;
//! data-parallel runs keep the same *outcomes* but may shift poll
//! timestamps), so a failing seed printed by the sweep in
//! `tests/sim.rs` is a complete reproduction recipe:
//! `SS_SIM_SEED=<seed> cargo test --test sim`.
//!
//! Wall-clock cost is decoupled from simulated time: lease lapses
//! (160ms), watchdog windows (seconds) and backoff schedules all
//! elapse by advancing the virtual clock, so a seed exploring minutes
//! of failure schedule runs in milliseconds.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use crate::prelude::*;
use ss_common::{SimClock, XorShift64};
use ss_core::ha::{HaConfig, StandbyQuery, StandbyStatus};
use ss_core::microbatch::{failpoints, MicroBatchConfig, MicroBatchExecution};
use ss_exec::MemoryCatalog;
use ss_state::CheckpointBackend;

const TOTAL_ROWS: u64 = 60;
const WAVE: u64 = 10;

/// Fatal failpoints: an epoch dying here kills the leader and forces
/// a standby takeover.
const LETHAL: &[&str] = &[
    failpoints::AFTER_OFFSET_WRITE,
    failpoints::AFTER_SINK_WRITE,
    failpoints::AFTER_COMMIT_WRITE,
    ss_wal::failpoints::OFFSETS_APPEND,
    ss_wal::failpoints::COMMITS_APPEND,
    ss_state::store::failpoints::CHECKPOINT_WRITE,
];

/// Recoverable failpoints: transient errors retry under seeded
/// backoff; hangs stall until the epoch watchdog releases them.
const RECOVERABLE: &[&str] = &[failpoints::SOURCE_READ, failpoints::SINK_COMMIT];

/// What one seeded chaos run did, plus the full virtual-stamped trace.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Virtual-time-stamped event log; byte-identical across runs of
    /// the same seed (serial execution).
    pub trace: String,
    /// Final virtual clock reading: how much simulated time the
    /// schedule covered.
    pub virtual_us: u64,
    /// Committed epochs on the final leader.
    pub epochs: u64,
    /// Leader deaths survived by standby takeover.
    pub failovers: u32,
    /// Dead incarnations whose durable writes were all fenced.
    pub fenced_zombies: u32,
}

struct Trace {
    clock: SimClock,
    out: String,
}

impl Trace {
    fn rec(&mut self, msg: &str) {
        let _ = writeln!(self.out, "[{:>10}us] {msg}", self.clock.now_us());
    }
}

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("key", DataType::Utf8),
        Field::new("v", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

fn feed(bus: &MessageBus, n: u64, start: u64) {
    for i in start..start + n {
        let key = format!("k{}", i % 5);
        bus.append(
            "in",
            (i % 2) as u32,
            vec![row![key, i as i64, Value::Timestamp(i as i64 * 1_000_000)]],
        )
        .unwrap();
    }
}

fn plan_and_sources(
    bus: Arc<MessageBus>,
    faults: Option<FaultRegistry>,
) -> (Arc<ss_plan::LogicalPlan>, HashMap<String, Arc<dyn Source>>) {
    let ctx = StreamingContext::new();
    let source = BusSource::new(bus, "in", schema()).unwrap();
    let source = match faults {
        Some(f) => source.with_faults(f),
        None => source,
    };
    ctx.read_source(Arc::new(source)).unwrap();
    let plan = ctx
        .table("in")
        .unwrap()
        .group_by(vec![
            window(col("time"), "10 seconds").unwrap(),
            col("key"),
        ])
        .agg(vec![count_star(), sum(col("v"))])
        .plan();
    let mut sources: HashMap<String, Arc<dyn Source>> = HashMap::new();
    for (name, s) in ctx.sources_snapshot() {
        sources.insert(name, s);
    }
    (plan, sources)
}

/// The crash-free result over the same input: no HA, no faults, no
/// virtual clock — the exactly-once oracle every chaos run must match.
fn reference() -> Vec<Row> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let sink = MemorySink::new("ref");
    let (plan, sources) = plan_and_sources(bus.clone(), None);
    let mut eng = MicroBatchExecution::new(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        sink.clone(),
        OutputMode::Update,
        Arc::new(MemoryBackend::new()),
        MicroBatchConfig {
            max_records_per_trigger: Some(7),
            adaptive_batching: false,
            checkpoint_interval: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut fed = 0;
    while fed < TOTAL_ROWS {
        feed(&bus, WAVE, fed);
        fed += WAVE;
        eng.process_available().unwrap();
    }
    let mut rows = sink.snapshot();
    rows.sort();
    rows
}

struct Participant {
    engine: MicroBatchExecution,
    lease: Arc<LeaseManager>,
    faults: FaultRegistry,
}

#[allow(clippy::too_many_arguments)]
fn build_participant(
    bus: Arc<MessageBus>,
    sink_inner: Arc<MemorySink>,
    primary: Arc<dyn CheckpointBackend>,
    replica: Arc<dyn CheckpointBackend>,
    holder: &str,
    sim: &SimClock,
    seed: u64,
    parallelism: Option<usize>,
    standby: bool,
) -> Participant {
    let lease = Arc::new(LeaseManager::with_clock(
        primary.clone(),
        holder,
        Duration::from_millis(100),
        Duration::from_millis(50),
        sim.handle(),
    ));
    let repl = Arc::new(ReplicatedBackend::new(
        primary,
        replica,
        ReplicationMode::Sync,
    ));
    let fenced_backend = Arc::new(FencedBackend::new(repl.clone(), lease.clone()));
    let faults = FaultRegistry::new();
    let config = MicroBatchConfig {
        max_records_per_trigger: Some(7),
        adaptive_batching: false,
        checkpoint_interval: 2,
        faults: faults.clone(),
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(80),
            budget: Duration::from_secs(30),
            seed,
        },
        // A wedged (hung) epoch releases after 2 virtual seconds.
        epoch_deadline: Some(Duration::from_secs(2)),
        clock: sim.handle(),
        parallelism: parallelism
            .unwrap_or_else(|| MicroBatchConfig::default().parallelism),
        ha: Some(HaConfig::new(lease.clone()).with_replication(repl)),
        ..Default::default()
    };
    let guard_lease = lease.clone();
    let fenced_sink = ss_bus::FencedSink::new(
        sink_inner,
        Arc::new(move |ctx: &str| guard_lease.check_fenced(ctx)),
    );
    let (plan, sources) = plan_and_sources(bus, Some(faults.clone()));
    let build = if standby {
        MicroBatchExecution::new_standby
    } else {
        MicroBatchExecution::new
    };
    let engine = build(
        "q",
        &plan,
        sources,
        Arc::new(MemoryCatalog::new()),
        fenced_sink,
        OutputMode::Update,
        fenced_backend,
        config,
    )
    .unwrap();
    Participant {
        engine,
        lease,
        faults,
    }
}

/// Run the combined crash/hang/fence/promotion scenario for one seed,
/// honouring `SS_PARALLELISM` for the engines' execution mode.
pub fn run_chaos(seed: u64) -> SimReport {
    run(seed, None)
}

/// Same scenario pinned to serial epoch execution: with a single
/// driver thread every virtual timestamp is a pure function of the
/// seed, so two runs produce byte-identical traces.
pub fn run_chaos_serial(seed: u64) -> SimReport {
    run(seed, Some(1))
}

fn run(seed: u64, parallelism: Option<usize>) -> SimReport {
    let expected = reference();
    assert!(!expected.is_empty(), "empty oracle run");

    let sim = SimClock::new(seed);
    let mut rng = XorShift64::new(seed ^ 0x5EED_CAFE);
    let mut trace = Trace {
        clock: sim.clone(),
        out: String::new(),
    };
    trace.rec(&format!("chaos run: seed {seed}"));

    let bus = Arc::new(MessageBus::new());
    bus.create_topic("in", 2).unwrap();
    let primary: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let replica: Arc<dyn CheckpointBackend> = Arc::new(MemoryBackend::new());
    let sink = MemorySink::new("out");

    let mut holder = 0u32;
    let p0 = build_participant(
        bus.clone(),
        sink.clone(),
        primary.clone(),
        replica.clone(),
        &format!("leader-{holder}"),
        &sim,
        seed,
        parallelism,
        false,
    );
    let mut leader_engine = p0.engine;
    let mut leader_lease = p0.lease;
    let mut leader_faults = p0.faults;
    holder += 1;
    let s0 = build_participant(
        bus.clone(),
        sink.clone(),
        primary.clone(),
        replica.clone(),
        &format!("standby-{holder}"),
        &sim,
        seed,
        parallelism,
        true,
    );
    let mut standby_faults = s0.faults;
    let mut standby_q = StandbyQuery::new(s0.engine).unwrap();
    let _ = standby_q.tick(); // observe the lease before any failure

    // Arm a seeded fault: lethal errors force failovers, transient
    // errors exercise seeded backoff, hangs exercise the watchdog.
    let arm = |faults: &FaultRegistry, rng: &mut XorShift64, trace: &mut Trace| {
        let (point, mode, label) = match rng.gen_range(0, 4) {
            0 => {
                let p = RECOVERABLE[rng.gen_range(0, RECOVERABLE.len() as u64) as usize];
                (p, FaultMode::TransientError, "transient")
            }
            1 => {
                let p = RECOVERABLE[rng.gen_range(0, RECOVERABLE.len() as u64) as usize];
                (p, FaultMode::Hang, "hang")
            }
            _ => {
                let p = LETHAL[rng.gen_range(0, LETHAL.len() as u64) as usize];
                (p, FaultMode::Error, "lethal")
            }
        };
        let skip = rng.gen_range(0, 4);
        faults.configure(point, FaultTrigger::Once { skip }, mode);
        trace.rec(&format!("armed {label} fault at {point}, skip {skip}"));
    };
    arm(&leader_faults, &mut rng, &mut trace);

    let mut zombies: Vec<(MicroBatchExecution, Arc<LeaseManager>, FaultRegistry)> = Vec::new();
    let mut failovers = 0u32;
    let mut fed = 0u64;
    loop {
        // One trigger interval of quiet virtual time between rounds:
        // hours of schedule cost nothing on the wall clock.
        sim.advance(Duration::from_secs(1));
        if fed < TOTAL_ROWS {
            feed(&bus, WAVE, fed);
            fed += WAVE;
            trace.rec(&format!("fed {WAVE} rows ({fed}/{TOTAL_ROWS})"));
        }
        match leader_engine.process_available() {
            Ok(_) => {
                trace.rec(&format!(
                    "leader committed through epoch {}, sink rows {}",
                    leader_engine.current_epoch(),
                    sink.snapshot().len()
                ));
                if fed >= TOTAL_ROWS {
                    break;
                }
            }
            Err(e) => {
                assert!(
                    !matches!(e, SsError::Fenced(_)),
                    "seed {seed}: live leader was fenced: {e}"
                );
                trace.rec(&format!("leader died: {e}"));
                failovers += 1;
                assert!(failovers < 16, "seed {seed}: drill did not converge");
                // The standby observes the dead leader's final lease
                // write, then the leader goes silent past ttl + grace.
                let _ = standby_q.tick();
                sim.advance(Duration::from_micros(160_000));
                trace.rec("advanced 160000us past lease ttl+grace");
                let mut lapsed = false;
                for _ in 0..2 {
                    if let StandbyStatus::LeaderLapsed { .. } = standby_q.tick().unwrap() {
                        lapsed = true;
                        break;
                    }
                }
                assert!(lapsed, "seed {seed}: lease lapse not observed in 2 ticks");
                trace.rec("standby observed the lease lapse");
                let promoted = standby_q.promote().unwrap();
                let promoted_lease = promoted.ha().unwrap().lease.clone();
                trace.rec(&format!(
                    "standby-{holder} promoted at epoch {}",
                    promoted.current_epoch()
                ));
                zombies.push((
                    std::mem::replace(&mut leader_engine, promoted),
                    leader_lease,
                    leader_faults.clone(),
                ));
                leader_lease = promoted_lease;
                leader_faults = standby_faults.clone();
                holder += 1;
                let next = build_participant(
                    bus.clone(),
                    sink.clone(),
                    primary.clone(),
                    replica.clone(),
                    &format!("standby-{holder}"),
                    &sim,
                    seed,
                    parallelism,
                    true,
                );
                standby_faults = next.faults;
                standby_q = StandbyQuery::new(next.engine).unwrap();
                let _ = standby_q.tick();
            }
        }
        // Keep the chaos coming until the drill has proven a few
        // takeovers, then let the run drain.
        if failovers < 3 {
            arm(&leader_faults, &mut rng, &mut trace);
        }
        let _ = standby_q.tick(); // warm standby keeps following
    }
    let _ = leader_lease;

    let mut rows = sink.snapshot();
    rows.sort();
    assert_eq!(
        rows, expected,
        "seed {seed}: chaos run diverged from the clean run"
    );
    trace.rec(&format!("exactly-once holds: {} sink rows", rows.len()));

    // Feed a sentinel wave only the zombies will try to process, then
    // resume each dead incarnation: every durable write must fence.
    feed(&bus, WAVE, TOTAL_ROWS);
    let mut fenced_zombies = 0u32;
    for (z, lease, faults) in &mut zombies {
        // Residual armed-but-unfired faults are the dead leader's
        // baggage; the probe is about fencing, not more chaos.
        faults.clear();
        let err = match z.process_available() {
            Err(e) => e,
            Ok(_) => panic!("seed {seed}: zombie ran an epoch unfenced"),
        };
        match &err {
            SsError::Fenced(_) => {
                assert!(lease.fencing_rejections() >= 1);
            }
            // A zombie whose lease was already marked fenced skips the
            // renewal check and runs into the WAL's prefix-consistency
            // guard instead: divergent offsets content is rejected
            // before any durable write. Equally safe; record which
            // defense fired.
            SsError::Execution(m) if m.contains("already has different content") => {}
            other => panic!("seed {seed}: zombie died unsafely: {other}"),
        }
        fenced_zombies += 1;
        trace.rec(&format!("zombie {} stopped: {err}", lease.holder()));
    }
    let mut after = sink.snapshot();
    after.sort();
    assert_eq!(
        after, expected,
        "seed {seed}: a zombie write reached the sink"
    );

    let virtual_us = sim.now_us();
    trace.rec(&format!(
        "done: {failovers} failovers, {fenced_zombies} zombies fenced, {virtual_us}us simulated"
    ));
    SimReport {
        seed,
        virtual_us,
        epochs: leader_engine.current_epoch(),
        failovers,
        fenced_zombies,
        trace: trace.out,
    }
}
