//! # structured-streaming
//!
//! A from-scratch Rust reproduction of **"Structured Streaming: A
//! Declarative API for Real-Time Applications in Apache Spark"**
//! (SIGMOD 2018): a streaming engine that automatically
//! **incrementalizes a static relational query** (DataFrame or SQL) and
//! executes it with exactly-once semantics over replayable sources and
//! idempotent sinks — including every substrate the paper's system
//! depends on (relational engine, message bus, write-ahead log, state
//! store, cluster scheduler) and the baselines its evaluation compares
//! against.
//!
//! ## Quickstart (the paper's §4.1 example)
//!
//! ```
//! use std::sync::Arc;
//! use structured_streaming::prelude::*;
//!
//! // A Kafka-like topic of click events.
//! let bus = Arc::new(MessageBus::new());
//! bus.create_topic("clicks", 4).unwrap();
//! let schema = Schema::of(vec![
//!     Field::new("country", DataType::Utf8),
//!     Field::new("time", DataType::Timestamp),
//! ]);
//!
//! // counts = data.groupBy($"country").count()
//! let ctx = StreamingContext::new();
//! let data = ctx
//!     .read_source(Arc::new(BusSource::new(bus.clone(), "clicks", schema).unwrap()))
//!     .unwrap();
//! let counts = data.group_by(vec![col("country")]).count();
//!
//! // counts.writeStream.outputMode("complete").start(...)
//! let sink = MemorySink::new("counts");
//! let mut query = counts
//!     .write_stream()
//!     .output_mode(OutputMode::Complete)
//!     .sink(sink.clone())
//!     .start_sync()
//!     .unwrap();
//!
//! bus.append("clicks", 0, vec![row!["CA", Value::Timestamp(0)]]).unwrap();
//! query.process_available().unwrap();
//! assert_eq!(sink.snapshot(), vec![row!["CA", 1i64]]);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`ss_common`] | types, rows, columnar batches, schemas, time |
//! | [`ss_expr`] | expressions, vectorized kernels, aggregates |
//! | [`ss_plan`] | logical plans, analyzer (§5.1), optimizer (§5.3) |
//! | [`ss_exec`] | vectorized physical operators + batch executor |
//! | [`ss_state`] | versioned state store with durable checkpoints (§6.1) |
//! | [`ss_wal`] | JSON write-ahead log: offsets + commits (§6.1, §7.2) |
//! | [`ss_bus`] | replayable message bus, sources, idempotent sinks (§3) |
//! | [`ss_core`] | the engine: incrementalizer, watermarks, microbatch + continuous execution (§4–§7) |
//! | [`ss_cluster`] | discrete-event cluster simulator (§6.2, Figure 6b) |
//! | [`ss_baselines`] | Flink-like / Kafka-Streams-like comparison systems (§9.1) |
//! | [`ss_sql`] | SQL front end |
//! | [`ss_multi`] | multi-query engine: shared scans, fingerprint-keyed state sharing, pooled scheduling, SQL service |

pub use ss_baselines;
pub use ss_bus;
pub use ss_cluster;
pub use ss_common;
pub use ss_core;
pub use ss_exec;
pub use ss_expr;
pub use ss_multi;
pub use ss_plan;
pub use ss_sql;
pub use ss_state;
pub use ss_wal;

pub mod sim;

use ss_common::Result;
use ss_core::{DataFrame, StreamingContext};

/// Run a SQL query against a context's registered sources and tables,
/// returning a DataFrame (streaming iff it scans a streaming source) —
/// the "users can write SQL directly" half of §4.1.
pub fn sql(ctx: &StreamingContext, query: &str) -> Result<DataFrame> {
    struct CtxResolver<'a>(&'a StreamingContext);
    impl ss_sql::TableResolver for CtxResolver<'_> {
        fn resolve(&self, name: &str) -> Result<(ss_common::SchemaRef, bool)> {
            self.0
                .catalog_entries()
                .into_iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, schema, streaming)| (schema, streaming))
                .ok_or_else(|| {
                    ss_common::SsError::Plan(format!("unknown table `{name}`"))
                })
        }
    }
    let plan = ss_sql::parse_query(query, &CtxResolver(ctx))?;
    Ok(ctx.dataframe_from_plan(plan))
}

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::sql;
    pub use ss_bus::{
        BusSink, BusSource, CallbackSink, EpochOutput, FileSink, FileSource, GeneratorSource,
        MemorySink, MessageBus, OverflowPolicy, Sink, Source, TopicConfig,
    };
    pub use ss_common::{
        row, DataType, ErrorPolicy, FaultMode, FaultRegistry, FaultTrigger, Field, RecordBatch,
        RetryPolicy, Row, Schema, SchemaRef, SsError, Value,
    };
    pub use ss_core::prelude::*;
    pub use ss_plan::stateful::StateTimeout;
    pub use ss_plan::SortKey;
    pub use ss_state::{FsBackend, MemoryBackend, ReplicatedBackend, ReplicationMode};
    pub use ss_wal::{FencedBackend, HaRole, LeaseManager};
}

#[cfg(test)]
mod tests {
    use super::*;
    use prelude::*;
    use std::sync::Arc;

    #[test]
    fn sql_and_dataframe_agree() {
        let ctx = StreamingContext::new();
        let batch = RecordBatch::from_rows(
            Schema::of(vec![
                Field::new("k", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ]),
            &[row!["a", 1i64], row!["b", 2i64], row!["a", 3i64]],
        )
        .unwrap();
        ctx.read_table("t", vec![batch]).unwrap();
        let df = sql(&ctx, "SELECT k, SUM(v) AS total FROM t GROUP BY k ORDER BY k").unwrap();
        assert!(!df.is_streaming());
        let out = df.collect().unwrap();
        assert_eq!(out.to_rows(), vec![row!["a", 4i64], row!["b", 2i64]]);
    }

    #[test]
    fn sql_over_streams_is_streaming() {
        let ctx = StreamingContext::new();
        let bus = Arc::new(MessageBus::new());
        bus.create_topic("t", 1).unwrap();
        let schema = Schema::of(vec![Field::new("x", DataType::Int64)]);
        ctx.read_source(Arc::new(BusSource::new(bus, "t", schema).unwrap()))
            .unwrap();
        let df = sql(&ctx, "SELECT x FROM t WHERE x > 0").unwrap();
        assert!(df.is_streaming());
        assert!(sql(&ctx, "SELECT * FROM missing").is_err());
    }
}
